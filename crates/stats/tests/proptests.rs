//! Property-based tests for the statistics substrate, on the
//! first-party [`afa_sim::check`] harness.

use afa_sim::check::run_cases;
use afa_stats::{LatencyHistogram, NinesPoint, OnlineStats, ProfileSummary};

/// Percentile queries are monotone in the percentile.
#[test]
fn percentiles_monotone() {
    run_cases("percentiles_monotone", 128, |g| {
        let values = g.vec_u64(1, 500, 1, 10_000_000);
        let mut h = LatencyHistogram::new();
        for v in &values {
            h.record(*v);
        }
        let mut last = 0u64;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 99.99, 100.0] {
            let v = h.value_at_percentile(p);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    });
}

/// Reported percentile values stay within [min, max].
#[test]
fn percentiles_bounded() {
    run_cases("percentiles_bounded", 128, |g| {
        let values = g.vec_u64(1, 200, 1, u64::MAX / 4);
        let p = g.f64_in(0.0, 100.0);
        let mut h = LatencyHistogram::new();
        for v in &values {
            h.record(*v);
        }
        let v = h.value_at_percentile(p);
        assert!(v >= h.min());
        assert!(v <= h.max());
    });
}

/// The histogram's relative recording error is bounded by the
/// sub-bucket resolution (1/128).
#[test]
fn relative_error_bounded() {
    run_cases("relative_error_bounded", 256, |g| {
        let v = g.u64_in(1, 1_000_000_000_000);
        let mut h = LatencyHistogram::new();
        h.record(v);
        let reported = h.value_at_percentile(50.0);
        assert!(reported >= v);
        let err = (reported - v) as f64 / v as f64;
        assert!(err <= 1.0 / 128.0 + 1e-9, "err {err} for {v}");
    });
}

/// Merging two histograms equals recording the concatenation.
#[test]
fn merge_equals_concat() {
    run_cases("merge_equals_concat", 128, |g| {
        let a = g.vec_u64(0, 200, 1, 1_000_000);
        let b = g.vec_u64(0, 200, 1, 1_000_000);
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hc = LatencyHistogram::new();
        for v in &a {
            ha.record(*v);
            hc.record(*v);
        }
        for v in &b {
            hb.record(*v);
            hc.record(*v);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), hc.count());
        assert_eq!(ha.min(), hc.min());
        assert_eq!(ha.max(), hc.max());
        assert!((ha.mean() - hc.mean()).abs() < 1e-6);
        for p in [50.0, 90.0, 99.0, 100.0] {
            assert_eq!(ha.value_at_percentile(p), hc.value_at_percentile(p));
        }
    });
}

/// Histogram mean/std agree with Welford within float tolerance.
#[test]
fn histogram_moments_match_welford() {
    run_cases("histogram_moments_match_welford", 128, |g| {
        let values = g.vec_u64(1, 300, 1, 100_000_000);
        let mut h = LatencyHistogram::new();
        let mut w = OnlineStats::new();
        for v in &values {
            h.record(*v);
            w.push(*v as f64);
        }
        assert!((h.mean() - w.mean()).abs() / w.mean().max(1.0) < 1e-9);
        assert!((h.std_dev() - w.population_std_dev()).abs() < w.mean() * 1e-6 + 1e-6);
    });
}

/// Welford merge equals single-pass.
#[test]
fn welford_merge_associative() {
    run_cases("welford_merge_associative", 128, |g| {
        let a = g.vec_of(0, 100, |g| g.f64_in(-1e6, 1e6));
        let b = g.vec_of(0, 100, |g| g.f64_in(-1e6, 1e6));
        let whole: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        if whole.count() > 0 {
            assert!((left.mean() - whole.mean()).abs() < 1e-6);
            assert!((left.population_variance() - whole.population_variance()).abs() < 1e-3);
        }
    });
}

/// Profiles extracted from any histogram are monotone across the
/// percentile points (the average may sit anywhere).
#[test]
fn profile_monotone() {
    run_cases("profile_monotone", 128, |g| {
        let values = g.vec_u64(1, 400, 1, 50_000_000);
        let mut h = LatencyHistogram::new();
        for v in &values {
            h.record(*v);
        }
        let p = h.profile();
        let pts = [
            NinesPoint::Nines2,
            NinesPoint::Nines3,
            NinesPoint::Nines4,
            NinesPoint::Nines5,
            NinesPoint::Nines6,
            NinesPoint::Max,
        ];
        for w in pts.windows(2) {
            assert!(p.get(w[0]) <= p.get(w[1]));
        }
    });
}

/// Summary std is zero iff all devices identical, and mean is the
/// cross-device average.
#[test]
fn summary_mean_correct() {
    run_cases("summary_mean_correct", 128, |g| {
        let bases = g.vec_u64(1, 64, 1_000, 1_000_000);
        let profiles: Vec<_> = bases
            .iter()
            .map(|&b| afa_stats::LatencyProfile::from_values([b; 7], 100))
            .collect();
        let s = ProfileSummary::from_profiles(&profiles);
        let m = s.get(NinesPoint::Max);
        let expect = bases.iter().map(|&b| b as f64 / 1_000.0).sum::<f64>() / bases.len() as f64;
        assert!((m.mean_us - expect).abs() < 1e-6);
        assert_eq!(m.devices, bases.len() as u64);
    });
}
