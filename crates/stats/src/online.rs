//! Welford streaming mean/variance.

/// Streaming mean, variance, min and max over `f64` samples using
/// Welford's numerically stable update, with support for merging
/// (Chan's parallel variance formula).
///
/// # Example
///
/// ```
/// use afa_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by `n`), or 0.0 if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Sample variance (divide by `n - 1`), or 0.0 for fewer than two
    /// samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample, or 0.0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_zeros() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = OnlineStats::from_iter([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_moments() {
        let s = OnlineStats::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.population_variance(), 4.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0 + 50.0).collect();
        let whole = OnlineStats::from_iter(data.iter().copied());
        let mut left = OnlineStats::from_iter(data[..337].iter().copied());
        let right = OnlineStats::from_iter(data[337..].iter().copied());
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-6);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::from_iter([1.0, 2.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut b = OnlineStats::new();
        b.merge(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn extend_and_collect() {
        let mut s: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        s.extend([4.0, 5.0]);
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn variance_never_negative() {
        // Catastrophic-cancellation stress: large offset, tiny spread.
        let s = OnlineStats::from_iter((0..10_000).map(|i| 1e12 + (i % 2) as f64));
        assert!(s.population_variance() >= 0.0);
    }
}
