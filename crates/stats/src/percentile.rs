//! The paper's fixed metric set: average, 2-nines … 6-nines, max.

use crate::histogram::LatencyHistogram;

/// One point on the paper's latency-distribution x-axis.
///
/// The paper plots average completion latency, the 99 % ("2-nines")
/// through 99.9999 % ("6-nines") percentiles, and the 100th (maximum)
/// latency for each SSD (§III-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NinesPoint {
    /// Arithmetic mean of completion latency.
    Average,
    /// 99 % percentile.
    Nines2,
    /// 99.9 % percentile.
    Nines3,
    /// 99.99 % percentile.
    Nines4,
    /// 99.999 % percentile.
    Nines5,
    /// 99.9999 % percentile.
    Nines6,
    /// 100th percentile (worst observed sample).
    Max,
}

impl NinesPoint {
    /// All points in plot order (left to right on the paper's x-axis).
    pub const ALL: [NinesPoint; 7] = [
        NinesPoint::Average,
        NinesPoint::Nines2,
        NinesPoint::Nines3,
        NinesPoint::Nines4,
        NinesPoint::Nines5,
        NinesPoint::Nines6,
        NinesPoint::Max,
    ];

    /// The percentile this point corresponds to, or `None` for the
    /// average.
    pub fn percentile(self) -> Option<f64> {
        match self {
            NinesPoint::Average => None,
            NinesPoint::Nines2 => Some(99.0),
            NinesPoint::Nines3 => Some(99.9),
            NinesPoint::Nines4 => Some(99.99),
            NinesPoint::Nines5 => Some(99.999),
            NinesPoint::Nines6 => Some(99.9999),
            NinesPoint::Max => Some(100.0),
        }
    }

    /// Minimum sample count for the percentile to be directly
    /// resolvable (one sample beyond the percentile).
    pub fn min_samples(self) -> u64 {
        match self {
            NinesPoint::Average | NinesPoint::Max => 1,
            NinesPoint::Nines2 => 100,
            NinesPoint::Nines3 => 1_000,
            NinesPoint::Nines4 => 10_000,
            NinesPoint::Nines5 => 100_000,
            NinesPoint::Nines6 => 1_000_000,
        }
    }

    /// A stable machine-friendly key for JSON/CSV artifacts ("avg",
    /// "p99", …, "max").
    pub fn key(self) -> &'static str {
        match self {
            NinesPoint::Average => "avg",
            NinesPoint::Nines2 => "p99",
            NinesPoint::Nines3 => "p99.9",
            NinesPoint::Nines4 => "p99.99",
            NinesPoint::Nines5 => "p99.999",
            NinesPoint::Nines6 => "p99.9999",
            NinesPoint::Max => "max",
        }
    }

    /// A short, stable label matching the paper's axis ("avg",
    /// "99%", …, "max").
    pub fn label(self) -> &'static str {
        match self {
            NinesPoint::Average => "avg",
            NinesPoint::Nines2 => "99%",
            NinesPoint::Nines3 => "99.9%",
            NinesPoint::Nines4 => "99.99%",
            NinesPoint::Nines5 => "99.999%",
            NinesPoint::Nines6 => "99.9999%",
            NinesPoint::Max => "max",
        }
    }
}

impl std::fmt::Display for NinesPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One device's latency profile: the value (in nanoseconds) at each
/// [`NinesPoint`], plus the sample count it was computed from.
///
/// # Example
///
/// ```
/// use afa_stats::{LatencyHistogram, NinesPoint};
///
/// let mut h = LatencyHistogram::new();
/// for v in 1..=100_000u64 {
///     h.record(25_000 + v % 7_000);
/// }
/// let p = h.profile();
/// assert!(p.get(NinesPoint::Average) >= 25_000);
/// assert!(p.get(NinesPoint::Nines5) <= p.get(NinesPoint::Max));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyProfile {
    values_ns: [u64; 7],
    samples: u64,
}

impl LatencyProfile {
    /// Extracts a profile from a histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        let mut values_ns = [0u64; 7];
        for (i, point) in NinesPoint::ALL.iter().enumerate() {
            values_ns[i] = match point.percentile() {
                None => h.mean().round() as u64,
                Some(p) => h.value_at_percentile(p),
            };
        }
        LatencyProfile {
            values_ns,
            samples: h.count(),
        }
    }

    /// Builds a profile directly from per-point values (nanoseconds),
    /// in [`NinesPoint::ALL`] order.
    pub fn from_values(values_ns: [u64; 7], samples: u64) -> Self {
        LatencyProfile { values_ns, samples }
    }

    /// The value at `point`, in nanoseconds.
    pub fn get(&self, point: NinesPoint) -> u64 {
        let idx = NinesPoint::ALL
            .iter()
            .position(|&p| p == point)
            .expect("known point");
        self.values_ns[idx]
    }

    /// The value at `point`, in microseconds.
    pub fn get_micros(&self, point: NinesPoint) -> f64 {
        self.get(point) as f64 / 1_000.0
    }

    /// Number of samples the profile was computed from.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Whether `point` is directly resolvable from this many samples
    /// (e.g. 6-nines needs ≥ 10⁶ samples).
    pub fn resolves(&self, point: NinesPoint) -> bool {
        self.samples >= point.min_samples()
    }

    /// Iterates `(point, value_ns)` pairs in plot order.
    pub fn iter(&self) -> impl Iterator<Item = (NinesPoint, u64)> + '_ {
        NinesPoint::ALL
            .iter()
            .zip(self.values_ns.iter())
            .map(|(&p, &v)| (p, v))
    }

    /// Renders the profile as a JSON object: the sample count plus one
    /// nanosecond value per metric keyed by [`NinesPoint::key`].
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut ns = Json::Obj(Vec::with_capacity(7));
        for (point, value) in self.iter() {
            ns.push(point.key(), Json::u64(value));
        }
        Json::obj([("samples", Json::u64(self.samples)), ("ns", ns)])
    }

    /// Renders the profile as a single CSV row of microsecond values
    /// (columns in [`NinesPoint::ALL`] order).
    pub fn to_csv_row(&self) -> String {
        self.values_ns
            .iter()
            .map(|&v| format!("{:.1}", v as f64 / 1_000.0))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_histogram(n: u64) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for v in 1..=n {
            h.record(v * 100);
        }
        h
    }

    #[test]
    fn points_are_monotone_for_any_distribution() {
        let h = ramp_histogram(100_000);
        let p = h.profile();
        let ordered: Vec<u64> = NinesPoint::ALL[1..].iter().map(|&pt| p.get(pt)).collect();
        for w in ordered.windows(2) {
            assert!(w[0] <= w[1], "percentiles must be monotone: {ordered:?}");
        }
    }

    #[test]
    fn labels_match_paper_axis() {
        let labels: Vec<&str> = NinesPoint::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec!["avg", "99%", "99.9%", "99.99%", "99.999%", "99.9999%", "max"]
        );
    }

    #[test]
    fn resolvability_thresholds() {
        let p = ramp_histogram(1_000).profile();
        assert!(p.resolves(NinesPoint::Nines2));
        assert!(p.resolves(NinesPoint::Nines3));
        assert!(!p.resolves(NinesPoint::Nines4));
        assert!(p.resolves(NinesPoint::Max));
    }

    #[test]
    fn average_is_mean() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(30);
        let p = h.profile();
        assert_eq!(p.get(NinesPoint::Average), 20);
    }

    #[test]
    fn max_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(123_456_789);
        h.record(25_000);
        assert_eq!(h.profile().get(NinesPoint::Max), 123_456_789);
    }

    #[test]
    fn csv_row_has_seven_columns() {
        let p = ramp_histogram(100).profile();
        assert_eq!(p.to_csv_row().split(',').count(), 7);
    }

    #[test]
    fn from_values_roundtrips() {
        let vals = [1, 2, 3, 4, 5, 6, 7];
        let p = LatencyProfile::from_values(vals, 42);
        assert_eq!(p.samples(), 42);
        for (i, (pt, v)) in p.iter().enumerate() {
            assert_eq!(pt, NinesPoint::ALL[i]);
            assert_eq!(v, vals[i]);
        }
    }

    #[test]
    fn json_carries_samples_and_all_points() {
        let p = LatencyProfile::from_values([1, 2, 3, 4, 5, 6, 7], 99);
        let doc = p.to_json();
        assert_eq!(doc.get("samples"), Some(&crate::json::Json::u64(99)));
        let ns = doc.get("ns").expect("ns object");
        for (i, point) in NinesPoint::ALL.iter().enumerate() {
            assert_eq!(
                ns.get(point.key()),
                Some(&crate::json::Json::u64(i as u64 + 1))
            );
        }
    }

    #[test]
    fn get_micros_scales() {
        let p = LatencyProfile::from_values([25_000; 7], 1);
        assert_eq!(p.get_micros(NinesPoint::Average), 25.0);
    }
}
