//! Time-windowed series: metrics over wall-clock windows.
//!
//! fio's `log_avg_msec` reports per-window averages (IOPS, latency)
//! over time; the same view makes the Fig. 10 spikes visible in the
//! time domain (a window containing a SMART stall shows a latency
//! bump and an IOPS dip).

use afa_sim::{SimDuration, SimTime};

/// One completed window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowPoint {
    /// Window start time.
    pub start: SimTime,
    /// Samples recorded in the window.
    pub count: u64,
    /// Mean recorded value in the window (0.0 if empty).
    pub mean: f64,
    /// Largest recorded value in the window (0 if empty).
    pub max: u64,
}

/// Accumulates `(time, value)` samples into fixed-width windows.
///
/// Samples must arrive in non-decreasing time order (simulation
/// order); each elapsed window is sealed into a [`WindowPoint`].
///
/// # Example
///
/// ```
/// use afa_sim::{SimDuration, SimTime};
/// use afa_stats::windowed::WindowedSeries;
///
/// let mut series = WindowedSeries::new(SimDuration::millis(100));
/// series.record(SimTime::from_nanos(1_000), 30_000);
/// series.record(SimTime::ZERO + SimDuration::millis(150), 31_000);
/// let points = series.finish();
/// assert_eq!(points.len(), 2);
/// assert_eq!(points[0].count, 1);
/// assert_eq!(points[0].max, 30_000);
/// ```
#[derive(Clone, Debug)]
pub struct WindowedSeries {
    width: SimDuration,
    points: Vec<WindowPoint>,
    current_start: SimTime,
    sum: f64,
    count: u64,
    max: u64,
}

impl WindowedSeries {
    /// Creates a series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if the width is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "window width must be positive");
        WindowedSeries {
            width,
            points: Vec::new(),
            current_start: SimTime::ZERO,
            sum: 0.0,
            count: 0,
            max: 0,
        }
    }

    fn seal(&mut self) {
        self.points.push(WindowPoint {
            start: self.current_start,
            count: self.count,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum / self.count as f64
            },
            max: self.max,
        });
        self.current_start += self.width;
        self.sum = 0.0;
        self.count = 0;
        self.max = 0;
    }

    /// Records a sample at time `t` (must be ≥ all prior samples).
    pub fn record(&mut self, t: SimTime, value: u64) {
        while t >= self.current_start + self.width {
            self.seal();
        }
        self.sum += value as f64;
        self.count += 1;
        self.max = self.max.max(value);
    }

    /// Seals the trailing window and returns all points.
    pub fn finish(mut self) -> Vec<WindowPoint> {
        if self.count > 0 {
            self.seal();
        }
        self.points
    }

    /// Points sealed so far (excludes the in-progress window).
    pub fn points(&self) -> &[WindowPoint] {
        &self.points
    }

    /// Renders as CSV: `start_ms,count,mean,max`.
    pub fn to_csv(points: &[WindowPoint]) -> String {
        let mut out = String::from("start_ms,count,mean,max\n");
        for p in points {
            out.push_str(&format!(
                "{:.1},{},{:.1},{}\n",
                p.start.as_secs_f64() * 1e3,
                p.count,
                p.mean,
                p.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::millis(n)
    }

    #[test]
    fn windows_partition_time() {
        let mut s = WindowedSeries::new(SimDuration::millis(10));
        for ms in [1u64, 5, 9, 12, 25] {
            s.record(t_ms(ms), ms);
        }
        let points = s.finish();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].count, 3);
        assert_eq!(points[1].count, 1);
        assert_eq!(points[2].count, 1);
        assert_eq!(points[0].max, 9);
        assert!((points[0].mean - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_gaps_produce_empty_windows() {
        let mut s = WindowedSeries::new(SimDuration::millis(10));
        s.record(t_ms(2), 1);
        s.record(t_ms(35), 2);
        let points = s.finish();
        assert_eq!(points.len(), 4);
        assert_eq!(points[1].count, 0);
        assert_eq!(points[1].mean, 0.0);
        assert_eq!(points[2].count, 0);
        assert_eq!(points[3].count, 1);
    }

    #[test]
    fn csv_rendering() {
        let mut s = WindowedSeries::new(SimDuration::millis(10));
        s.record(t_ms(0), 100);
        let csv = WindowedSeries::to_csv(&s.finish());
        assert!(csv.starts_with("start_ms,count,mean,max"));
        assert!(csv.contains("0.0,1,100.0,100"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = WindowedSeries::new(SimDuration::ZERO);
    }

    #[test]
    fn smart_stall_shows_as_window_bump() {
        // Synthetic: steady 30 µs latencies, one 600 µs stall at 55 ms.
        let mut s = WindowedSeries::new(SimDuration::millis(10));
        let mut t = SimTime::ZERO;
        while t < t_ms(100) {
            let v = if t >= t_ms(55) && t < t_ms(56) {
                600_000
            } else {
                30_000
            };
            s.record(t, v);
            t += SimDuration::micros(33);
        }
        let points = s.finish();
        let spike_window = &points[5];
        let quiet_window = &points[2];
        assert!(spike_window.max >= 600_000);
        assert!(quiet_window.max < 40_000);
        assert!(spike_window.mean > quiet_window.mean);
    }
}
