//! Per-array quantile-sketch rollups for the fleet layer.
//!
//! A fleet run serves one request stream across N arrays; the
//! interesting decomposition is *per array* (did the kill victim's
//! survivors absorb the tail?) plus the *merged* fleet-wide view. A
//! [`SketchRollup`] keeps one [`QuantileSketch`] per array index and
//! produces the merged sketch on demand, counting the merges it
//! performs so the run manifest can account for rollup work the same
//! way the tenant-serving path counts its sketch merges.

use crate::QuantileSketch;

/// One latency sketch per array plus an on-demand fleet-wide merge.
///
/// # Example
///
/// ```
/// use afa_stats::SketchRollup;
///
/// let mut r = SketchRollup::new(3);
/// r.record(0, 100_000);
/// r.record(2, 900_000);
/// let (merged, merges) = r.merged();
/// assert_eq!(merged.count(), 2);
/// assert_eq!(merges, 3);
/// ```
#[derive(Clone, Debug)]
pub struct SketchRollup {
    per_array: Vec<QuantileSketch>,
}

impl SketchRollup {
    /// Creates a rollup over `arrays` empty sketches.
    pub fn new(arrays: usize) -> Self {
        SketchRollup {
            per_array: (0..arrays).map(|_| QuantileSketch::new()).collect(),
        }
    }

    /// Number of arrays tracked.
    pub fn len(&self) -> usize {
        self.per_array.len()
    }

    /// Whether the rollup tracks no arrays at all.
    pub fn is_empty(&self) -> bool {
        self.per_array.is_empty()
    }

    /// Records one latency sample (nanoseconds) against `array`.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range — the fleet topology is fixed
    /// at construction, so an unknown index is a routing bug.
    pub fn record(&mut self, array: usize, latency_ns: u64) {
        self.per_array[array].record(latency_ns);
    }

    /// The per-array sketch for `array`.
    pub fn array(&self, array: usize) -> &QuantileSketch {
        &self.per_array[array]
    }

    /// Merges every per-array sketch into one fleet-wide sketch and
    /// returns it with the number of merges performed (one per array,
    /// empty or not — merge cost is size-independent by design).
    pub fn merged(&self) -> (QuantileSketch, u64) {
        let mut out = QuantileSketch::new();
        let mut merges = 0u64;
        for sketch in &self.per_array {
            out.merge(sketch);
            merges += 1;
        }
        (out, merges)
    }

    /// Total samples recorded across all arrays.
    pub fn total_count(&self) -> u64 {
        self.per_array.iter().map(|s| s.count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_route_to_the_right_array() {
        let mut r = SketchRollup::new(4);
        for v in 1..=100u64 {
            r.record(1, v * 1_000);
        }
        r.record(3, 5_000_000);
        assert_eq!(r.array(0).count(), 0);
        assert_eq!(r.array(1).count(), 100);
        assert_eq!(r.array(3).count(), 1);
        assert_eq!(r.total_count(), 101);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }

    #[test]
    fn merged_equals_recording_into_one_sketch() {
        let mut r = SketchRollup::new(3);
        let mut direct = QuantileSketch::new();
        for v in 1..=300u64 {
            r.record((v % 3) as usize, v * 10_000);
            direct.record(v * 10_000);
        }
        let (merged, merges) = r.merged();
        assert_eq!(merges, 3);
        assert_eq!(merged.count(), direct.count());
        for p in [50.0, 99.0, 99.9] {
            assert_eq!(
                merged.value_at_percentile(p),
                direct.value_at_percentile(p),
                "p{p} differs between rollup-merge and direct recording"
            );
        }
    }

    #[test]
    fn empty_rollup_merges_to_empty() {
        let r = SketchRollup::new(0);
        let (merged, merges) = r.merged();
        assert_eq!(merged.count(), 0);
        assert_eq!(merges, 0);
        assert!(r.is_empty());
    }
}
