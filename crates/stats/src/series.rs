//! Per-sample latency logs for scatter plots.
//!
//! Fig. 10 of the paper scatter-plots every latency sample of 32 SSDs
//! against its sample index, revealing periodic SMART-induced spikes.
//! [`LatencyLog`] captures `(sample_index, latency)` pairs with an
//! optional decimation filter that always keeps spike samples (points
//! above a threshold) while thinning the dense baseline — the same
//! trick one uses to plot millions of points.

/// One logged completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogPoint {
    /// Zero-based completion index within the owning job.
    pub index: u64,
    /// Completion latency in nanoseconds.
    pub latency_ns: u64,
}

/// A per-sample latency log with optional baseline decimation.
///
/// # Example
///
/// ```
/// use afa_stats::series::LatencyLog;
///
/// // Keep every 10th baseline sample but every sample above 100 µs.
/// let mut log = LatencyLog::with_decimation(10, 100_000);
/// for i in 0..100u64 {
///     log.push(30_000);
/// }
/// log.push(500_000); // a spike
/// assert!(log.points().iter().any(|p| p.latency_ns == 500_000));
/// assert!(log.points().len() < 102);
/// assert_eq!(log.samples_seen(), 101);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LatencyLog {
    points: Vec<LogPoint>,
    seen: u64,
    keep_every: u64,
    spike_threshold_ns: u64,
}

impl LatencyLog {
    /// Creates a log that keeps every sample.
    pub fn new() -> Self {
        LatencyLog {
            points: Vec::new(),
            seen: 0,
            keep_every: 1,
            spike_threshold_ns: u64::MAX,
        }
    }

    /// Creates a log that keeps one of every `keep_every` baseline
    /// samples but *all* samples at or above `spike_threshold_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `keep_every` is zero.
    pub fn with_decimation(keep_every: u64, spike_threshold_ns: u64) -> Self {
        assert!(keep_every > 0, "keep_every must be positive");
        LatencyLog {
            points: Vec::new(),
            seen: 0,
            keep_every,
            spike_threshold_ns,
        }
    }

    /// Records one completion latency.
    pub fn push(&mut self, latency_ns: u64) {
        let index = self.seen;
        self.seen += 1;
        if latency_ns >= self.spike_threshold_ns || index.is_multiple_of(self.keep_every) {
            self.points.push(LogPoint { index, latency_ns });
        }
    }

    /// The retained points, in completion order.
    pub fn points(&self) -> &[LogPoint] {
        &self.points
    }

    /// Total samples pushed (kept or not).
    pub fn samples_seen(&self) -> u64 {
        self.seen
    }

    /// Indices of retained points above `threshold_ns` — the spike
    /// positions used to measure housekeeping periodicity.
    pub fn spike_indices(&self, threshold_ns: u64) -> Vec<u64> {
        self.points
            .iter()
            .filter(|p| p.latency_ns > threshold_ns)
            .map(|p| p.index)
            .collect()
    }

    /// Renders as CSV (`index,latency_us` rows) for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.points.len() * 16);
        out.push_str("index,latency_us\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.1}\n",
                p.index,
                p.latency_ns as f64 / 1_000.0
            ));
        }
        out
    }
}

/// Estimates the dominant gap (in samples) between consecutive spike
/// indices — used to verify the periodicity of SMART spikes in the
/// Fig. 10 reproduction. Returns `None` with fewer than two spikes.
pub fn median_spike_gap(spike_indices: &[u64]) -> Option<u64> {
    if spike_indices.len() < 2 {
        return None;
    }
    let mut gaps: Vec<u64> = spike_indices.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_unstable();
    Some(gaps[gaps.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_by_default() {
        let mut log = LatencyLog::new();
        for i in 0..50 {
            log.push(i);
        }
        assert_eq!(log.points().len(), 50);
        assert_eq!(log.samples_seen(), 50);
        assert_eq!(log.points()[10].index, 10);
    }

    #[test]
    fn decimation_thins_baseline_but_keeps_spikes() {
        let mut log = LatencyLog::with_decimation(100, 1_000);
        for _ in 0..1_000 {
            log.push(30);
        }
        log.push(5_000);
        let kept = log.points().len();
        assert!(kept <= 12, "kept {kept}");
        assert!(log.points().iter().any(|p| p.latency_ns == 5_000));
    }

    #[test]
    fn spike_indices_filters_by_threshold() {
        let mut log = LatencyLog::new();
        log.push(10);
        log.push(900);
        log.push(10);
        log.push(901);
        assert_eq!(log.spike_indices(100), vec![1, 3]);
    }

    #[test]
    fn median_gap_of_periodic_spikes() {
        let spikes = vec![100, 1_100, 2_100, 3_100];
        assert_eq!(median_spike_gap(&spikes), Some(1_000));
        assert_eq!(median_spike_gap(&[5]), None);
        assert_eq!(median_spike_gap(&[]), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut log = LatencyLog::new();
        log.push(1_500);
        let csv = log.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("index,latency_us"));
        assert_eq!(lines.next(), Some("0,1.5"));
    }

    #[test]
    #[should_panic(expected = "keep_every")]
    fn zero_decimation_panics() {
        let _ = LatencyLog::with_decimation(0, 100);
    }
}
