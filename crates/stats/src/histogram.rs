//! HDR-style log-linear latency histogram.
//!
//! Values (nanoseconds) are bucketed with a bounded *relative* error:
//! within each power-of-two "bucket level" there are a fixed number of
//! equal-width sub-buckets, so the recording error is at most
//! `1 / sub_bucket_count` of the value. With 256 sub-buckets the error
//! is under 0.4 % — far below the run-to-run noise of the systems being
//! modeled — while `record` remains a couple of shifts and an add.

const SUB_BUCKET_BITS: u32 = 8;
const SUB_BUCKET_COUNT: u64 = 1 << SUB_BUCKET_BITS; // 256
const SUB_BUCKET_HALF: u64 = SUB_BUCKET_COUNT / 2;
/// Number of power-of-two levels; covers values up to ~2^(8+62) ns,
/// i.e. effectively unbounded for latency purposes.
const LEVELS: usize = 48;
const BUCKETS: usize = SUB_BUCKET_COUNT as usize + LEVELS * SUB_BUCKET_HALF as usize;

/// A latency histogram with bounded relative error (< 0.4 %), exact
/// count/min/max/mean/variance, percentile queries, and lossless merge.
///
/// Units are whatever the caller records — nanoseconds throughout this
/// workspace.
///
/// # Example
///
/// ```
/// use afa_stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// h.record(25_000);
/// h.record(30_000);
/// h.record(5_000_000);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), 5_000_000);
/// assert!(h.value_at_percentile(50.0) <= 30_100);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: f64,
    sum_sq: f64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Index of the bucket holding `value`.
    ///
    /// Branchless on the hot path: OR-ing in `SUB_BUCKET_COUNT - 1`
    /// pins the most-significant bit of small values at
    /// `SUB_BUCKET_BITS - 1`, so the level computes to 0 and the index
    /// collapses to the value itself — one shift/add formula covers
    /// both the exact (< 256) and log-linear regimes, and the only
    /// remaining branch is the never-taken saturation guard.
    #[inline]
    fn index_for(value: u64) -> usize {
        let msb = 63 - (value | (SUB_BUCKET_COUNT - 1)).leading_zeros();
        let level = (msb + 1 - SUB_BUCKET_BITS) as usize;
        if level > LEVELS {
            // Values beyond the covered range saturate into the last
            // bucket; exact max tracking keeps p100 correct regardless.
            return BUCKETS - 1;
        }
        let idx = level * SUB_BUCKET_HALF as usize + (value >> level) as usize;
        debug_assert!(idx < BUCKETS);
        idx
    }

    /// Highest value representable by bucket `index` (the reported
    /// value for samples in that bucket).
    fn value_for(index: usize) -> u64 {
        if index < SUB_BUCKET_COUNT as usize {
            return index as u64;
        }
        let rest = index - SUB_BUCKET_COUNT as usize;
        let level = rest / SUB_BUCKET_HALF as usize + 1;
        let sub = rest % SUB_BUCKET_HALF as usize;
        let base = (SUB_BUCKET_HALF + sub as u64) << level;
        // Upper edge of the bucket.
        base + (1 << level) - 1
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_for(value)] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let v = value as f64;
        self.sum += v;
        self.sum_sq += v * v;
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index_for(value)] += n;
        self.total += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let v = value as f64;
        self.sum += v * n as f64;
        self.sum_sq += v * v * n as f64;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// The exact largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The exact population standard deviation, or 0.0 if empty.
    pub fn std_dev(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var = (self.sum_sq / self.total as f64 - mean * mean).max(0.0);
        var.sqrt()
    }

    /// The smallest recorded value `v` such that at least
    /// `percentile`% of samples are ≤ `v` (within the histogram's
    /// relative error). `percentile` is clamped to `[0, 100]`.
    ///
    /// Returns the exact maximum for `percentile == 100`, and 0 for an
    /// empty histogram.
    pub fn value_at_percentile(&self, percentile: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = percentile.clamp(0.0, 100.0);
        if p >= 100.0 {
            return self.max;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_for(i).min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Fraction of samples at or below `value` (within relative error).
    pub fn fraction_at_or_below(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = Self::index_for(value);
        let seen: u64 = self.counts[..=idx].iter().sum();
        seen as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Extracts the paper's metric set (average, 2-nines … 6-nines,
    /// max) as a [`LatencyProfile`](crate::LatencyProfile).
    pub fn profile(&self) -> crate::LatencyProfile {
        crate::LatencyProfile::from_histogram(self)
    }

    /// Iterates over non-empty buckets as `(upper_edge_value, count)`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (Self::value_for(i), c))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.std_dev(), 0.0);
        assert_eq!(h.value_at_percentile(99.0), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKET_COUNT {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKET_COUNT - 1);
        // Values below SUB_BUCKET_COUNT land in exact buckets; the
        // 128th of 256 samples (0..=255) is the value 127.
        assert_eq!(h.value_at_percentile(50.0), 127);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for exp in 0..40u32 {
            let v = 3u64 << exp; // spread across levels
            h.record(v);
            let idx = LatencyHistogram::index_for(v);
            let reported = LatencyHistogram::value_for(idx);
            assert!(reported >= v, "reported {reported} < recorded {v}");
            let err = (reported - v) as f64 / v as f64;
            assert!(
                err < 1.0 / SUB_BUCKET_HALF as f64 + 1e-9,
                "err {err} for {v}"
            );
        }
    }

    #[test]
    fn percentile_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record(us * 1_000);
        }
        let p50 = h.value_at_percentile(50.0);
        assert!(
            (p50 as f64 - 5_000_000.0).abs() / 5_000_000.0 < 0.01,
            "p50={p50}"
        );
        let p999 = h.value_at_percentile(99.9);
        assert!(
            (p999 as f64 - 9_990_000.0).abs() / 9_990_000.0 < 0.01,
            "p999={p999}"
        );
        assert_eq!(h.value_at_percentile(100.0), 10_000_000);
    }

    #[test]
    fn mean_and_std_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
        let expected_std = (125.0f64).sqrt(); // population variance 125
        assert!((h.std_dev() - expected_std).abs() < 1e-9);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..7 {
            a.record(1234);
        }
        b.record_n(1234, 7);
        b.record_n(999, 0);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.max(), b.max());
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(1_000_000);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 50);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LatencyHistogram::new();
        a.record(42);
        let before_max = a.max();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.max(), before_max);
        assert_eq!(a.min(), 42);
    }

    #[test]
    fn fraction_at_or_below() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert!((h.fraction_at_or_below(50) - 0.5).abs() < 0.01);
        assert_eq!(h.fraction_at_or_below(1_000_000), 1.0);
    }

    #[test]
    fn percentile_never_below_min_nor_above_max() {
        let mut h = LatencyHistogram::new();
        h.record(30_000);
        h.record(5_000_000);
        for p in [0.0, 1.0, 50.0, 99.0, 99.9999, 100.0] {
            let v = h.value_at_percentile(p);
            assert!(v >= h.min() && v <= h.max(), "p{p} -> {v}");
        }
    }

    #[test]
    fn iter_buckets_counts_sum_to_total() {
        let mut h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(i * 37 + 5);
        }
        let sum: u64 = h.iter_buckets().map(|(_, c)| c).sum();
        assert_eq!(sum, h.count());
    }

    #[test]
    fn branchless_index_matches_branchy_reference() {
        // The original two-regime implementation, retained as the
        // specification the branchless formula must reproduce.
        fn reference(value: u64) -> usize {
            if value < SUB_BUCKET_COUNT {
                return value as usize;
            }
            let level = (63 - value.leading_zeros()) as usize - (SUB_BUCKET_BITS as usize - 1);
            if level > LEVELS {
                return BUCKETS - 1;
            }
            let shifted = value >> level;
            (SUB_BUCKET_COUNT as usize)
                + (level - 1) * (SUB_BUCKET_HALF as usize)
                + (shifted - SUB_BUCKET_HALF) as usize
        }
        for v in 0..4096u64 {
            assert_eq!(LatencyHistogram::index_for(v), reference(v), "v={v}");
        }
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Cover all magnitudes, not just full-width values.
            let v = x >> (x % 64);
            assert_eq!(LatencyHistogram::index_for(v), reference(v), "v={v}");
        }
        for v in [u64::MAX, u64::MAX / 2, 1 << 56, (1 << 56) - 1] {
            assert_eq!(LatencyHistogram::index_for(v), reference(v), "v={v}");
        }
    }

    #[test]
    fn handles_huge_values() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 1);
        assert_eq!(h.value_at_percentile(100.0), u64::MAX / 2);
    }
}
