//! Fixed-size streaming quantile sketch for fleet-scale per-tenant
//! statistics.
//!
//! [`LatencyHistogram`](crate::LatencyHistogram) is the right tool for
//! a few dozen devices: exact to 0.4 % but ~50 KiB of buckets each.
//! At 10⁵–10⁶ tenants that footprint is the scaling wall, so the fleet
//! serving path records per-tenant latency into a [`QuantileSketch`]
//! instead: a DDSketch-style log-bucketed sketch with a *configured*
//! relative-error bound, a fixed bucket array (under 1 KiB per
//! instance), and an O(buckets) merge that is independent of how many
//! samples either side absorbed — cross-tenant rollups cost the same
//! whether a tenant served ten requests or ten million.
//!
//! Guarantee: for any recorded value `v` in the sketch's covered range
//! (`>= FLOOR_NS` and below the top bucket's edge), the reported
//! quantile that lands on `v`'s bucket is within `relative_error()` of
//! `v`. Values below the floor collapse into the first bucket (they
//! are reported as roughly the floor); values beyond the range
//! saturate into the last bucket. Exact min/max tracking keeps p0 and
//! p100 exact regardless.
//!
//! [`TailStats`] is the deployment switch: an enum over the exact
//! histogram and the sketch with one recording/query surface, so a
//! tracker can run *exact-match fallback* (existing experiments keep
//! byte-identical artifacts) or sketch mode (fleet scale) without two
//! code paths upstream.

use crate::LatencyHistogram;

/// Log-bucket count. With the default 5 % error bound the buckets
/// span ~64 ns to ~10⁵ s — far beyond any latency this workspace can
/// produce — while the counts array stays under 1 KiB.
const BUCKETS: usize = 224;

/// Values below this floor (nanoseconds) collapse into the first
/// bucket. Nothing in the serving path completes in under 64 ns.
const FLOOR_NS: f64 = 64.0;

/// Default relative-error bound: 5 %. Far coarser than the exact
/// histogram's 0.4 %, and precisely the trade the fleet path makes —
/// the `fleet-arrival` manifest records the realized sketch-vs-exact
/// error so the trade stays visible.
pub const DEFAULT_SKETCH_ERROR: f64 = 0.05;

/// A fixed-size mergeable streaming quantile sketch (DDSketch-style
/// log buckets, bounded *relative* error, exact count/min/max/mean).
///
/// # Example
///
/// ```
/// use afa_stats::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for us in 1..=1000u64 {
///     s.record(us * 1_000); // nanoseconds
/// }
/// let p99 = s.value_at_percentile(99.0) as f64;
/// assert!((p99 - 990_000.0).abs() / 990_000.0 <= s.relative_error());
/// assert!(s.size_bytes() < 1024);
/// ```
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    counts: Box<[u32; BUCKETS]>,
    total: u64,
    min: u64,
    max: u64,
    sum: f64,
    /// Configured relative-error bound α; γ = (1+α)/(1−α).
    alpha: f64,
    inv_ln_gamma: f64,
    ln_gamma: f64,
    gamma: f64,
    /// Key of the first bucket (the floor's log-bucket key).
    key_offset: i32,
}

impl QuantileSketch {
    /// Creates an empty sketch at the default 5 % error bound.
    pub fn new() -> Self {
        Self::with_relative_error(DEFAULT_SKETCH_ERROR)
    }

    /// Creates an empty sketch whose quantile estimates are within
    /// `alpha` (relative) of the recorded values across the covered
    /// range. Smaller bounds narrow the range: the bucket count is
    /// fixed, so the top edge is `FLOOR_NS * gamma^BUCKETS`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn with_relative_error(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative error must be in (0, 1)"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        let ln_gamma = gamma.ln();
        let key_offset = (FLOOR_NS.ln() / ln_gamma).ceil() as i32;
        QuantileSketch {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0.0,
            alpha,
            inv_ln_gamma: 1.0 / ln_gamma,
            ln_gamma,
            gamma,
            key_offset,
        }
    }

    /// The configured relative-error bound.
    pub fn relative_error(&self) -> f64 {
        self.alpha
    }

    /// Heap + inline footprint of this sketch in bytes — the number
    /// the fleet experiments budget per tenant.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + std::mem::size_of::<[u32; BUCKETS]>()
    }

    /// Bucket index for `value`: `ceil(log_gamma(value))`, shifted so
    /// the floor lands on bucket 0, clamped at both ends.
    #[inline]
    fn index_for(&self, value: u64) -> usize {
        if (value as f64) < FLOOR_NS {
            return 0;
        }
        let key = ((value as f64).ln() * self.inv_ln_gamma).ceil() as i32;
        (key - self.key_offset).clamp(0, BUCKETS as i32 - 1) as usize
    }

    /// Reported value for bucket `index`: the γ-midpoint
    /// `2·γ^key / (γ+1)`, within α of every value in the bucket.
    fn value_for(&self, index: usize) -> u64 {
        let key = index as i32 + self.key_offset;
        let edge = (f64::from(key) * self.ln_gamma).exp();
        (edge * 2.0 / (self.gamma + 1.0)).round() as u64
    }

    /// Records one sample (nanoseconds, like the histogram).
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self.index_for(value);
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as f64;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// The exact largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The smallest bucket value `v` such that at least `percentile`%
    /// of samples are ≤ `v` (within the configured relative error).
    /// Returns the exact maximum for `percentile == 100`, and 0 for an
    /// empty sketch.
    pub fn value_at_percentile(&self, percentile: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let p = percentile.clamp(0.0, 100.0);
        if p >= 100.0 {
            return self.max;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += u64::from(c);
            if seen >= target {
                return self.value_for(i).min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Merges another sketch into this one: element-wise bucket adds,
    /// so the cost is the fixed bucket count — independent of how many
    /// samples either sketch holds.
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different error bounds
    /// (their buckets would not line up).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha.to_bits() == other.alpha.to_bits(),
            "cannot merge sketches with different error bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total += other.total;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.sum += other.sum;
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// A tail-latency accumulator that is either the exact
/// [`LatencyHistogram`] (the fallback every pre-fleet experiment uses,
/// keeping their artifacts byte-identical) or a [`QuantileSketch`]
/// (fleet scale: fixed small footprint, bounded relative error).
#[derive(Clone, Debug)]
pub enum TailStats {
    /// Exact log-linear histogram (~50 KiB, 0.4 % error).
    Exact(LatencyHistogram),
    /// Streaming sketch (<1 KiB, configured error bound).
    Sketch(QuantileSketch),
}

impl TailStats {
    /// Exact-histogram mode — the byte-identical fallback.
    pub fn exact() -> Self {
        TailStats::Exact(LatencyHistogram::new())
    }

    /// Sketch mode at the default error bound.
    pub fn sketched() -> Self {
        TailStats::Sketch(QuantileSketch::new())
    }

    /// Whether this accumulator runs in sketch mode.
    pub fn is_sketch(&self) -> bool {
        matches!(self, TailStats::Sketch(_))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        match self {
            TailStats::Exact(h) => h.record(value),
            TailStats::Sketch(s) => s.record(value),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        match self {
            TailStats::Exact(h) => h.count(),
            TailStats::Sketch(s) => s.count(),
        }
    }

    /// The exact largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        match self {
            TailStats::Exact(h) => h.max(),
            TailStats::Sketch(s) => s.max(),
        }
    }

    /// Quantile query (see the variants' own semantics).
    pub fn value_at_percentile(&self, percentile: f64) -> u64 {
        match self {
            TailStats::Exact(h) => h.value_at_percentile(percentile),
            TailStats::Sketch(s) => s.value_at_percentile(percentile),
        }
    }

    /// Merges a same-mode accumulator into this one.
    ///
    /// # Panics
    ///
    /// Panics on a mode mismatch (exact into sketch or vice versa).
    pub fn merge(&mut self, other: &TailStats) {
        match (self, other) {
            (TailStats::Exact(a), TailStats::Exact(b)) => a.merge(b),
            (TailStats::Sketch(a), TailStats::Sketch(b)) => a.merge(b),
            _ => panic!("cannot merge exact and sketch tail stats"),
        }
    }

    /// Footprint in bytes (the exact histogram's bucket array, or the
    /// sketch's fixed size).
    pub fn size_bytes(&self) -> usize {
        match self {
            // 256 + 48 * 128 u64 buckets plus the struct itself.
            TailStats::Exact(_) => std::mem::size_of::<LatencyHistogram>() + 6400 * 8,
            TailStats::Sketch(s) => s.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.value_at_percentile(99.0), 0);
    }

    #[test]
    fn stays_under_one_kib() {
        let s = QuantileSketch::new();
        assert!(s.size_bytes() < 1024, "sketch is {} bytes", s.size_bytes());
    }

    #[test]
    fn relative_error_is_bounded_across_magnitudes() {
        // 3·2⁷ ns ≈ 384 ns up to 3·2³⁶ ns ≈ 206 s — inside the
        // covered range (the default top edge is ~330 s).
        let s = QuantileSketch::new();
        for exp in 7..37u32 {
            let v = 3u64 << exp;
            let reported = s.value_for(s.index_for(v));
            let err = (reported as f64 - v as f64).abs() / v as f64;
            assert!(err <= s.relative_error() + 1e-9, "err {err} for {v}");
        }
    }

    #[test]
    fn quantiles_track_a_uniform_ramp() {
        let mut s = QuantileSketch::new();
        for us in 1..=10_000u64 {
            s.record(us * 1_000);
        }
        for (p, expect) in [(50.0, 5_000_000.0), (99.0, 9_900_000.0)] {
            let got = s.value_at_percentile(p) as f64;
            assert!(
                (got - expect).abs() / expect <= s.relative_error() + 1e-9,
                "p{p}: {got} vs {expect}"
            );
        }
        assert_eq!(s.value_at_percentile(100.0), 10_000_000);
    }

    #[test]
    fn merge_equals_concatenation_exactly() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut c = QuantileSketch::new();
        let mut x = 0x9e37_79b9u64;
        for i in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 100 + x % 50_000_000;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.counts, c.counts, "merged buckets must match concat");
        for p in [1.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.value_at_percentile(p), c.value_at_percentile(p));
        }
    }

    #[test]
    #[should_panic(expected = "different error bounds")]
    fn merging_mismatched_bounds_panics() {
        let mut a = QuantileSketch::with_relative_error(0.05);
        let b = QuantileSketch::with_relative_error(0.02);
        a.merge(&b);
    }

    #[test]
    fn percentile_never_leaves_min_max() {
        let mut s = QuantileSketch::new();
        s.record(30_000);
        s.record(5_000_000);
        for p in [0.0, 1.0, 50.0, 99.0, 99.9999, 100.0] {
            let v = s.value_at_percentile(p);
            assert!(v >= s.min() && v <= s.max(), "p{p} -> {v}");
        }
    }

    #[test]
    fn tail_stats_modes_agree_within_bound() {
        let mut exact = TailStats::exact();
        let mut sketch = TailStats::sketched();
        assert!(!exact.is_sketch());
        assert!(sketch.is_sketch());
        for us in 1..=5_000u64 {
            exact.record(us * 2_000);
            sketch.record(us * 2_000);
        }
        assert_eq!(exact.count(), sketch.count());
        assert_eq!(exact.max(), sketch.max());
        let e = exact.value_at_percentile(99.0) as f64;
        let s = sketch.value_at_percentile(99.0) as f64;
        assert!((e - s).abs() / e <= DEFAULT_SKETCH_ERROR + 0.004 + 1e-9);
        assert!(sketch.size_bytes() < exact.size_bytes() / 50);
    }

    #[test]
    #[should_panic(expected = "cannot merge exact and sketch")]
    fn tail_stats_mode_mismatch_panics() {
        let mut a = TailStats::exact();
        a.merge(&TailStats::sketched());
    }
}
