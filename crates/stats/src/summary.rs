//! Cross-device aggregates: mean ± std of each metric across SSDs.
//!
//! Fig. 12 and Fig. 14 of the paper plot, for each configuration, the
//! average and the standard deviation of each latency percentile
//! *across the 64 SSDs*. [`ProfileSummary`] computes exactly that from
//! a set of per-device [`LatencyProfile`]s.

use crate::online::OnlineStats;
use crate::percentile::{LatencyProfile, NinesPoint};

/// Mean and standard deviation of one metric across devices, in
/// microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricSummary {
    /// Mean across devices (µs).
    pub mean_us: f64,
    /// Population standard deviation across devices (µs).
    pub std_us: f64,
    /// Smallest per-device value (µs).
    pub min_us: f64,
    /// Largest per-device value (µs).
    pub max_us: f64,
    /// Number of devices aggregated.
    pub devices: u64,
}

impl MetricSummary {
    /// Renders the summary as a JSON object (microsecond values).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::obj([
            ("mean_us", Json::f64(self.mean_us)),
            ("std_us", Json::f64(self.std_us)),
            ("min_us", Json::f64(self.min_us)),
            ("max_us", Json::f64(self.max_us)),
            ("devices", Json::u64(self.devices)),
        ])
    }
}

/// Cross-device summary of latency profiles: one [`MetricSummary`] per
/// [`NinesPoint`].
///
/// # Example
///
/// ```
/// use afa_stats::{LatencyProfile, NinesPoint, ProfileSummary};
///
/// let profiles = vec![
///     LatencyProfile::from_values([30_000; 7], 1000),
///     LatencyProfile::from_values([34_000; 7], 1000),
/// ];
/// let summary = ProfileSummary::from_profiles(&profiles);
/// let avg = summary.get(NinesPoint::Average);
/// assert_eq!(avg.mean_us, 32.0);
/// assert_eq!(avg.std_us, 2.0);
/// assert_eq!(avg.devices, 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSummary {
    metrics: [MetricSummary; 7],
}

impl ProfileSummary {
    /// Aggregates a set of per-device profiles.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn from_profiles(profiles: &[LatencyProfile]) -> Self {
        let mut metrics = [MetricSummary::default(); 7];
        for (i, point) in NinesPoint::ALL.iter().enumerate() {
            let stats: OnlineStats = profiles
                .iter()
                .map(|p| p.get(*point) as f64 / 1_000.0)
                .collect();
            metrics[i] = MetricSummary {
                mean_us: stats.mean(),
                std_us: stats.population_std_dev(),
                min_us: stats.min(),
                max_us: stats.max(),
                devices: stats.count(),
            };
        }
        ProfileSummary { metrics }
    }

    /// The summary for one metric point.
    pub fn get(&self, point: NinesPoint) -> MetricSummary {
        let idx = NinesPoint::ALL
            .iter()
            .position(|&p| p == point)
            .expect("known point");
        self.metrics[idx]
    }

    /// Iterates `(point, summary)` pairs in plot order.
    pub fn iter(&self) -> impl Iterator<Item = (NinesPoint, MetricSummary)> + '_ {
        NinesPoint::ALL
            .iter()
            .zip(self.metrics.iter())
            .map(|(&p, &m)| (p, m))
    }

    /// Renders the summary as a JSON object keyed by
    /// [`NinesPoint::key`], one [`MetricSummary`] object per metric.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let mut obj = Json::Obj(Vec::with_capacity(7));
        for (point, m) in self.iter() {
            obj.push(point.key(), m.to_json());
        }
        obj
    }

    /// Renders a fixed-width table like the paper's Fig. 12/14 charts:
    /// one row per metric with mean and std columns (µs).
    pub fn to_table(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{title}\n"));
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}\n",
            "metric", "mean(us)", "std(us)", "min(us)", "max(us)"
        ));
        for (point, m) in self.iter() {
            out.push_str(&format!(
                "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
                point.label(),
                m.mean_us,
                m.std_us,
                m.min_us,
                m.max_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(base_ns: u64) -> LatencyProfile {
        let mut vals = [0u64; 7];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = base_ns + i as u64 * 1_000;
        }
        LatencyProfile::from_values(vals, 10_000)
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = ProfileSummary::from_profiles(&[]);
        let m = s.get(NinesPoint::Max);
        assert_eq!(m.devices, 0);
        assert_eq!(m.mean_us, 0.0);
        assert_eq!(m.std_us, 0.0);
    }

    #[test]
    fn single_profile_has_zero_std() {
        let s = ProfileSummary::from_profiles(&[profile(30_000)]);
        for (_, m) in s.iter() {
            assert_eq!(m.std_us, 0.0);
            assert_eq!(m.devices, 1);
        }
    }

    #[test]
    fn mean_and_std_across_devices() {
        let s = ProfileSummary::from_profiles(&[profile(20_000), profile(40_000)]);
        let avg = s.get(NinesPoint::Average);
        assert_eq!(avg.mean_us, 30.0);
        assert_eq!(avg.std_us, 10.0);
        assert_eq!(avg.min_us, 20.0);
        assert_eq!(avg.max_us, 40.0);
    }

    #[test]
    fn table_contains_all_rows() {
        let s = ProfileSummary::from_profiles(&[profile(25_000)]);
        let table = s.to_table("test");
        for point in NinesPoint::ALL {
            assert!(table.contains(point.label()), "missing {point}");
        }
    }

    #[test]
    fn json_has_all_metric_keys() {
        let s = ProfileSummary::from_profiles(&[profile(20_000), profile(40_000)]);
        let doc = s.to_json();
        for point in NinesPoint::ALL {
            let m = doc.get(point.key()).expect("metric present");
            assert!(m.get("mean_us").is_some());
            assert!(m.get("devices").is_some());
        }
        assert_eq!(doc.to_string(), s.to_json().to_string());
    }

    #[test]
    fn iter_is_in_plot_order() {
        let s = ProfileSummary::from_profiles(&[profile(1_000)]);
        let points: Vec<NinesPoint> = s.iter().map(|(p, _)| p).collect();
        assert_eq!(points, NinesPoint::ALL.to_vec());
    }
}
