//! Minimal hand-rolled JSON values (no external dependencies).
//!
//! Experiment artifacts must be machine-readable and byte-identical
//! across runs with the same seed, so this module renders a small JSON
//! document model deterministically: object keys keep insertion order,
//! floats use Rust's shortest-roundtrip formatting, and non-finite
//! floats render as `null`.
//!
//! # Example
//!
//! ```
//! use afa_stats::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("fig12")),
//!     ("seed", Json::u64(42)),
//!     ("ratio", Json::f64(2.5)),
//! ]);
//! assert_eq!(doc.to_string(), r#"{"name":"fig12","seed":42,"ratio":2.5}"#);
//! ```

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (rendered exactly).
    U64(u64),
    /// A double (shortest roundtrip; non-finite renders as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned-integer value.
    pub fn u64(v: u64) -> Json {
        Json::U64(v)
    }

    /// A float value.
    pub fn f64(v: f64) -> Json {
        Json::F64(v)
    }

    /// An array from anything yielding values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Appends a field to an object value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Obj`].
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_owned(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Looks up a field of an object value (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_into(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_into(out, item);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_into(&mut out, self);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::u64(7).to_string(), "7");
        assert_eq!(Json::f64(2.5).to_string(), "2.5");
        assert_eq!(Json::f64(3.0).to_string(), "3");
        assert_eq!(Json::f64(f64::NAN).to_string(), "null");
        assert_eq!(Json::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").to_string(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut doc = Json::obj([("z", Json::u64(1)), ("a", Json::u64(2))]);
        doc.push("m", Json::arr([Json::Null, Json::Bool(false)]));
        assert_eq!(doc.to_string(), r#"{"z":1,"a":2,"m":[null,false]}"#);
        assert_eq!(doc.get("a"), Some(&Json::u64(2)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rendering_is_deterministic() {
        let doc = Json::obj([
            ("x", Json::f64(1.0 / 3.0)),
            ("y", Json::arr((0..4).map(Json::u64))),
        ]);
        assert_eq!(doc.to_string(), doc.to_string());
    }
}
