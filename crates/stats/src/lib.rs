//! Latency statistics substrate for the AFA reproduction.
//!
//! The paper's evaluation metric is the distribution of 4 KiB
//! random-read completion latency out to the 99.9999th ("6-nines")
//! percentile plus the maximum, and cross-device aggregates (mean and
//! standard deviation of each percentile across 64 SSDs; Fig. 12 and
//! Fig. 14). This crate provides:
//!
//! * [`LatencyHistogram`] — an HDR-style log-linear histogram with
//!   bounded relative error, exact min/max/mean/std tracking and merge,
//! * [`NinesPoint`] / [`LatencyProfile`] — the paper's fixed metric set
//!   (average, 2-nines … 6-nines, max) extracted from a histogram,
//! * [`QuantileSketch`] / [`TailStats`] — a fixed-size mergeable
//!   streaming quantile sketch (DDSketch-style log buckets, bounded
//!   relative error, <1 KiB) for fleet-scale per-tenant stats, with an
//!   exact-histogram fallback,
//! * [`OnlineStats`] — Welford streaming mean/variance,
//! * [`ProfileSummary`] — mean ± std of each metric across devices,
//! * [`series`] — per-sample latency logs for the Fig. 10 scatter plot,
//! * [`json`] — a minimal hand-rolled JSON document model so experiment
//!   artifacts are machine-readable without external dependencies.
//!
//! # Example
//!
//! ```
//! use afa_stats::{LatencyHistogram, NinesPoint};
//!
//! let mut h = LatencyHistogram::new();
//! for us in 1..=1000u64 {
//!     h.record(us * 1_000); // nanoseconds
//! }
//! let p99 = h.value_at_percentile(99.0);
//! assert!(p99 >= 985_000 && p99 <= 1_010_000, "p99 = {p99}");
//! let profile = h.profile();
//! assert_eq!(profile.get(NinesPoint::Max), 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
pub mod json;
mod online;
mod percentile;
mod rollup;
pub mod series;
mod sketch;
mod summary;
pub mod windowed;

pub use histogram::LatencyHistogram;
pub use json::Json;
pub use online::OnlineStats;
pub use percentile::{LatencyProfile, NinesPoint};
pub use rollup::SketchRollup;
pub use sketch::{QuantileSketch, TailStats, DEFAULT_SKETCH_ERROR};
pub use summary::{MetricSummary, ProfileSummary};
