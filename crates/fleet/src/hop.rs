//! Network/RPC hop model between the fleet frontend and an array.
//!
//! Modeled exactly like the PCIe fabric one level down: a directed
//! link is a next-free-time resource that serializes payloads at line
//! rate, then delivers after propagation plus bounded jitter. On top
//! of the line, an RPC hop bounds its *in-flight window*: at most
//! `window` transfers may be between the two ends at once, and a new
//! transfer waits for the oldest outstanding delivery to land before
//! it may start (credit-based flow control, the RPC analogue of a
//! bounded submission queue). A hop is a *pair* of legs — request out,
//! completion back — so both directions contribute distinct,
//! ledger-visible time.

use afa_sim::{SimDuration, SimRng, SimTime};

/// Shape of one directed network leg.
#[derive(Clone, Copy, Debug)]
pub struct HopSpec {
    /// One-way propagation delay (switching + cabling + stack).
    pub propagation: SimDuration,
    /// Line rate in gigabits per second.
    pub gbps: f64,
    /// Uniform delivery jitter bound in nanoseconds (0 disables).
    pub jitter_ns: u64,
    /// Maximum transfers in flight on this leg at once.
    pub window: usize,
}

impl HopSpec {
    /// An intra-datacenter leg: 25 GbE, ~10 µs one-way through the
    /// ToR/spine and both network stacks, ±2 µs jitter, 64-deep RPC
    /// window. Chosen so an unloaded fleet round trip adds ~20-25 µs —
    /// the same order as the array's own 30 µs device path, which is
    /// what makes the fleet-level tail math interesting rather than
    /// network-dominated.
    pub fn datacenter() -> Self {
        HopSpec {
            propagation: SimDuration::micros(10),
            gbps: 25.0,
            jitter_ns: 2_000,
            window: 64,
        }
    }

    /// Usable line rate in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.gbps * 1e9 / 8.0
    }

    /// Serialization time for a payload of `bytes`.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec())
    }
}

/// One directed network leg: next-free-time line + in-flight window +
/// jitter stream.
///
/// # Example
///
/// ```
/// use afa_fleet::{HopSpec, NetLink};
/// use afa_sim::SimTime;
///
/// let mut link = NetLink::new(HopSpec::datacenter(), 7, 0);
/// let arrival = link.reserve(SimTime::ZERO, 4096);
/// let us = arrival.as_micros_f64();
/// // ~1.3 us serialization + 10 us propagation + up to 2 us jitter.
/// assert!(us > 11.0 && us < 14.0, "{us}");
/// ```
#[derive(Clone, Debug)]
pub struct NetLink {
    spec: HopSpec,
    /// When the line is next free to start serializing.
    free_at: SimTime,
    /// Delivery time of each in-flight window credit. A transfer
    /// claims the earliest-released credit; with all credits live the
    /// claim waits for the oldest delivery.
    credits: Vec<SimTime>,
    jitter: SimRng,
    bytes_carried: u64,
    transfers: u64,
    /// Time transfers spent blocked on the window (not the line).
    window_wait: SimDuration,
}

impl NetLink {
    /// Creates an idle leg. `seed`/`stream` pin the jitter stream so a
    /// fleet of legs stays deterministic per (master seed, leg id).
    pub fn new(spec: HopSpec, seed: u64, stream: u64) -> Self {
        assert!(spec.window > 0, "a hop needs at least one credit");
        NetLink {
            spec,
            free_at: SimTime::ZERO,
            credits: vec![SimTime::ZERO; spec.window],
            jitter: SimRng::from_seed_and_stream(seed, 0xFEE7 ^ stream),
            bytes_carried: 0,
            transfers: 0,
            window_wait: SimDuration::ZERO,
        }
    }

    /// The leg's shape.
    pub fn spec(&self) -> HopSpec {
        self.spec
    }

    /// Reserves the leg for a transfer of `bytes` starting no earlier
    /// than `now`; returns the delivery time at the far end.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> SimTime {
        // Claim the earliest-released window credit.
        let (slot, credit_free) = self
            .credits
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, at)| at)
            .expect("window > 0");
        let start = now.max(self.free_at).max(credit_free);
        if credit_free > now.max(self.free_at) {
            self.window_wait += credit_free.saturating_since(now.max(self.free_at));
        }
        let ser = self.spec.serialization(bytes);
        self.free_at = start + ser;
        let jitter = if self.spec.jitter_ns > 0 {
            SimDuration::nanos(self.jitter.below(self.spec.jitter_ns + 1))
        } else {
            SimDuration::ZERO
        };
        let delivery = self.free_at + self.spec.propagation + jitter;
        self.credits[slot] = delivery;
        self.bytes_carried += bytes;
        self.transfers += 1;
        delivery
    }

    /// Total payload bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total transfers carried.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Cumulative time transfers waited on the in-flight window
    /// specifically (line and caller queueing excluded).
    pub fn window_wait(&self) -> SimDuration {
        self.window_wait
    }
}

/// The paired legs connecting the frontend to one array: requests ride
/// `request`, completions ride `completion`, and the two directions
/// queue independently (a burst of completions does not block new
/// submissions).
#[derive(Clone, Debug)]
pub struct NetHop {
    /// Frontend → array leg.
    pub request: NetLink,
    /// Array → frontend leg.
    pub completion: NetLink,
}

impl NetHop {
    /// Creates the hop to array `array`, with per-leg jitter streams
    /// derived from (`seed`, `array`).
    pub fn new(spec: HopSpec, seed: u64, array: u64) -> Self {
        NetHop {
            request: NetLink::new(spec, seed, array * 2),
            completion: NetLink::new(spec, seed, array * 2 + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_transfer_is_ser_plus_propagation_plus_jitter() {
        let spec = HopSpec::datacenter();
        let mut link = NetLink::new(spec, 1, 0);
        let arrival = link.reserve(SimTime::ZERO, 4096);
        let floor = spec.serialization(4096) + spec.propagation;
        let ceil = floor + SimDuration::nanos(spec.jitter_ns);
        assert!(arrival >= SimTime::ZERO + floor);
        assert!(arrival <= SimTime::ZERO + ceil);
        assert_eq!(link.transfers(), 1);
        assert_eq!(link.bytes_carried(), 4096);
    }

    #[test]
    fn line_serializes_back_to_back_transfers() {
        let mut spec = HopSpec::datacenter();
        spec.jitter_ns = 0;
        let mut link = NetLink::new(spec, 1, 0);
        let first = link.reserve(SimTime::ZERO, 65_536);
        let second = link.reserve(SimTime::ZERO, 65_536);
        let delta = second.saturating_since(first);
        let ser = spec.serialization(65_536);
        assert_eq!(delta, ser, "second transfer waits out the first's ser");
    }

    #[test]
    fn window_caps_in_flight_transfers() {
        let mut spec = HopSpec::datacenter();
        spec.jitter_ns = 0;
        spec.window = 2;
        // Tiny payloads: serialization is negligible next to the 10 us
        // propagation, so the window (not the line) is the bottleneck.
        let mut link = NetLink::new(spec, 1, 0);
        let a = link.reserve(SimTime::ZERO, 64);
        let b = link.reserve(SimTime::ZERO, 64);
        let c = link.reserve(SimTime::ZERO, 64);
        assert!(b < a + SimDuration::micros(1));
        assert!(
            c >= a + spec.propagation,
            "third transfer waits for the first delivery: {c:?} vs {a:?}"
        );
        assert!(link.window_wait() > SimDuration::ZERO);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_stream() {
        let spec = HopSpec::datacenter();
        let run = |seed, stream| {
            let mut link = NetLink::new(spec, seed, stream);
            (0..32)
                .map(|i| link.reserve(SimTime::from_nanos(i * 50_000), 4096))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9, 4), run(9, 4));
        assert_ne!(run(9, 4), run(9, 5), "streams differ");
        assert_ne!(run(9, 4), run(10, 4), "seeds differ");
    }

    #[test]
    fn hop_legs_queue_independently() {
        let mut spec = HopSpec::datacenter();
        spec.jitter_ns = 0;
        let mut hop = NetHop::new(spec, 3, 1);
        // Saturate the request leg; the completion leg stays unloaded.
        for _ in 0..16 {
            hop.request.reserve(SimTime::ZERO, 1 << 20);
        }
        let completion = hop.completion.reserve(SimTime::ZERO, 4096);
        let floor = spec.serialization(4096) + spec.propagation;
        assert_eq!(completion, SimTime::ZERO + floor);
    }
}
