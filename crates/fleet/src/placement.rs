//! Deterministic rendezvous-hash placement of volumes onto arrays.
//!
//! Rendezvous (highest-random-weight) hashing scores every (volume,
//! array) pair independently and places the volume on the R
//! highest-scoring *alive* arrays. Two properties make it the right
//! placer for a failover experiment:
//!
//! 1. **Purity** — the placement is a pure function of the volume id
//!    and the alive set. No coordinator state, no migration log: every
//!    frontend computes the same answer, before and after a kill.
//! 2. **Minimal motion** — removing one array only moves the
//!    placements that actually lived on it (expected 1/N of the
//!    primaries); every other volume's replica set is untouched,
//!    because other arrays' scores never changed.

use afa_sim::rng::splitmix64;

/// How reads exploit an R-way replica set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadPolicy {
    /// Always read the primary (rank-0) replica; secondaries serve
    /// only failover. Cheapest, inherits the primary's full tail.
    Primary,
    /// Read the primary, but hedge a straggler onto the rank-1
    /// secondary after the hedge-policy delay (Dean & Barroso applied
    /// across arrays instead of across devices).
    HedgedSecondary,
    /// Spread reads across all R replicas round-robin per request —
    /// halves per-array load at R=2 but samples every replica's tail.
    ReadAny,
}

impl ReadPolicy {
    /// Stable lowercase label for artifacts.
    pub fn label(self) -> &'static str {
        match self {
            ReadPolicy::Primary => "primary",
            ReadPolicy::HedgedSecondary => "hedged-secondary",
            ReadPolicy::ReadAny => "read-any",
        }
    }
}

/// The rendezvous score of (volume, array): a pure splitmix64 mix of
/// the pair, independent across arrays.
pub fn rendezvous_score(volume: u64, array: u64) -> u64 {
    let mut state = volume
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_add(array.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    splitmix64(&mut state)
}

/// Places `volume` on the `r` highest-scoring arrays of `alive`
/// (all of them if `r >= alive.len()`), primary first. Ties break
/// toward the lower array id, so the order is total and the result is
/// a pure function of `(volume, alive, r)` regardless of `alive`'s
/// own ordering.
///
/// # Panics
///
/// Panics if `r == 0` — a volume placed nowhere is a config bug.
pub fn place_among(volume: u64, alive: &[usize], r: usize) -> Vec<usize> {
    assert!(r > 0, "replication factor must be at least 1");
    let mut scored: Vec<(u64, usize)> = alive
        .iter()
        .map(|&a| (rendezvous_score(volume, a as u64), a))
        .collect();
    // Highest score first; ties toward the lower id.
    scored.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
    scored.truncate(r);
    scored.into_iter().map(|(_, a)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_pure_and_order_insensitive() {
        let a = place_among(99, &[0, 1, 2, 3, 4], 3);
        let b = place_among(99, &[4, 2, 0, 3, 1], 3);
        assert_eq!(a, b, "alive-set ordering is irrelevant");
        assert_eq!(a, place_among(99, &[0, 1, 2, 3, 4], 3));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn removal_moves_only_the_dead_arrays_placements() {
        let alive: Vec<usize> = (0..6).collect();
        let survivors: Vec<usize> = alive.iter().copied().filter(|&a| a != 2).collect();
        for volume in 0..500u64 {
            let before = place_among(volume, &alive, 2);
            let after = place_among(volume, &survivors, 2);
            if !before.contains(&2) {
                assert_eq!(before, after, "volume {volume} moved without cause");
            } else {
                // Survivors keep their rank; one new member fills in.
                for &kept in before.iter().filter(|&&a| a != 2) {
                    assert!(after.contains(&kept), "volume {volume} dropped {kept}");
                }
            }
        }
    }

    #[test]
    fn primaries_spread_across_the_fleet() {
        let alive: Vec<usize> = (0..4).collect();
        let mut per_array = [0usize; 4];
        let volumes = 2_000u64;
        for volume in 0..volumes {
            per_array[place_among(volume, &alive, 2)[0]] += 1;
        }
        let expected = volumes as usize / alive.len();
        for (array, &count) in per_array.iter().enumerate() {
            assert!(
                count > expected / 2 && count < expected * 2,
                "array {array} holds {count} primaries, expected ~{expected}"
            );
        }
    }

    #[test]
    fn r_clamps_to_the_alive_set() {
        let placement = place_among(5, &[7, 9], 3);
        assert_eq!(placement.len(), 2);
        assert!(placement.contains(&7) && placement.contains(&9));
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_panics() {
        place_among(1, &[0], 0);
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(ReadPolicy::Primary.label(), "primary");
        assert_eq!(ReadPolicy::HedgedSecondary.label(), "hedged-secondary");
        assert_eq!(ReadPolicy::ReadAny.label(), "read-any");
    }
}
