//! Replicated multi-array fleet layer for the AFA reproduction.
//!
//! The source paper stops at one 64-SSD array; its opening argument —
//! stripe a request across devices and the tail becomes a max-of-width
//! over per-device noise — replays one level up when an enterprise
//! deployment replicates volumes across *arrays* behind a network hop.
//! This crate models that level:
//!
//! * [`NetHop`] / [`NetLink`] — a network/RPC hop as paired directed
//!   legs (request out, completion back), each a next-free-time line
//!   with serialization cost, propagation, bounded jitter, and a
//!   bounded in-flight window — the inter-array analogue of
//!   [`afa_pcie::Link`], so the per-request ledger gains a `network`
//!   cause and still tiles latency exactly,
//! * [`place_among`] — deterministic rendezvous-hash placement of
//!   volumes onto R-way replicated array sets, with the minimal-motion
//!   property (removing one of N arrays moves only the placements that
//!   lived there), and [`ReadPolicy`] for how reads use the replicas,
//! * [`ArrayInstance`] — one array's full serving stack (host model,
//!   PCIe fabric, SSDs) exposed as stage methods so N arrays compose
//!   under one DES clock,
//! * [`ArrayHealth`] / [`RetryPolicy`] / [`heal_jobs`] — the fault
//!   side: kill or degrade an array mid-run, back off and retry open
//!   requests onto surviving replicas, and derive the re-replication
//!   work that restores R while competing with foreground I/O.
//!
//! # Example
//!
//! ```
//! use afa_fleet::{place_among, NetHop, HopSpec};
//! use afa_sim::SimTime;
//!
//! // Volume 7 lives on 2 of 4 arrays, deterministically.
//! let placement = place_among(7, &[0, 1, 2, 3], 2);
//! assert_eq!(placement.len(), 2);
//! assert_eq!(placement, place_among(7, &[0, 1, 2, 3], 2));
//!
//! // A 4 KiB read crosses the request leg in ~propagation + ser.
//! let mut hop = NetHop::new(HopSpec::datacenter(), 42, 0);
//! let at_array = hop.request.reserve(SimTime::ZERO, 4096);
//! assert!(at_array.as_micros_f64() > 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod failover;
mod hop;
mod placement;

pub use array::{ArrayInstance, IngestTimes, ReapTimes};
pub use failover::{heal_jobs, ArrayHealth, HealJob, RetryPolicy};
pub use hop::{HopSpec, NetHop, NetLink};
pub use placement::{place_among, rendezvous_score, ReadPolicy};
