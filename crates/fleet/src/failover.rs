//! Fault injection, retry/backoff, and re-replication planning.
//!
//! The failover state machine, per array:
//!
//! ```text
//!             kill(t)                    (not modeled: repair)
//!   Healthy ─────────────► Failed ──────────────────────────►
//!      │                     ▲
//!      │ degrade(extra)      │ kill(t)
//!      ▼                     │
//!   Degraded ────────────────┘
//! ```
//!
//! and per open sub-I/O on a killed array:
//!
//! ```text
//!   InFlight ──array died──► Backoff(attempt n) ──delay──► Retry on
//!   next surviving replica ──success──► settled exactly once
//!                           └─attempts exhausted / no survivor──► shed
//! ```
//!
//! The *attempt* number fences the race between a retry and the dead
//! array's in-flight completions: only events carrying the current
//! attempt may touch the request, so the retry path cannot
//! double-settle.

use afa_sim::SimDuration;

use crate::placement::place_among;

/// Liveness of one array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayHealth {
    /// Serving normally.
    Healthy,
    /// Serving, but every ingest pays the given extra latency (brownout:
    /// a failing fan, a rebuild storm, a flapping link).
    Degraded(SimDuration),
    /// Dead: accepts nothing, completes nothing. In-flight I/O is
    /// lost and must fail over.
    Failed,
}

impl ArrayHealth {
    /// Whether the array accepts new I/O.
    pub fn is_alive(&self) -> bool {
        !matches!(self, ArrayHealth::Failed)
    }

    /// Extra per-ingest latency in the current state.
    pub fn ingest_penalty(&self) -> SimDuration {
        match self {
            ArrayHealth::Degraded(extra) => *extra,
            _ => SimDuration::ZERO,
        }
    }
}

/// Exponential backoff with bounded attempts for failed-over sub-I/Os.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Backoff multiplier per subsequent attempt.
    pub multiplier: u32,
    /// Total attempts allowed (the original submission is attempt 1).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// The fleet default: 10 ms first backoff (an RPC-timeout's worth
    /// of failure detection + re-route — two orders of magnitude above
    /// the ~100 µs healthy path, and safely above the multi-ms
    /// scheduler-noise tail an untuned host shows), doubling, at most
    /// 4 attempts.
    pub fn fleet_default() -> Self {
        RetryPolicy {
            base: SimDuration::millis(10),
            multiplier: 2,
            max_attempts: 4,
        }
    }

    /// Backoff before attempt `attempt` (2-based: attempt 1 is the
    /// original submission), or `None` when attempts are exhausted.
    pub fn delay(&self, attempt: u32) -> Option<SimDuration> {
        if attempt < 2 || attempt > self.max_attempts {
            return None;
        }
        let mut ns = self.base.as_nanos();
        for _ in 2..attempt {
            ns *= self.multiplier as u64;
        }
        Some(SimDuration::nanos(ns))
    }
}

/// One unit of re-replication work: restore `volume`'s replication
/// factor by copying from a surviving `source` array to a `target`
/// array that was not previously a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealJob {
    /// The under-replicated volume.
    pub volume: u64,
    /// Surviving replica to read from.
    pub source: usize,
    /// New replica to write to.
    pub target: usize,
}

/// Derives the re-replication plan after `dead` fails: every volume in
/// `0..volumes` whose pre-kill placement (over `pre_kill` arrays at
/// replication `r`) included `dead` gets one [`HealJob`] copying from
/// its highest-ranked surviving replica to the array that rendezvous
/// placement newly elects. Volumes with no surviving replica, or with
/// nowhere new to go (`r >= survivors`), yield no job.
///
/// Pure: both the caller and a test can derive the identical plan.
pub fn heal_jobs(volumes: u64, pre_kill: &[usize], dead: usize, r: usize) -> Vec<HealJob> {
    let survivors: Vec<usize> = pre_kill.iter().copied().filter(|&a| a != dead).collect();
    let mut jobs = Vec::new();
    for volume in 0..volumes {
        let before = place_among(volume, pre_kill, r);
        if !before.contains(&dead) {
            continue;
        }
        let Some(&source) = before.iter().find(|&&a| a != dead) else {
            continue; // r == 1 and the sole replica died: data loss, nothing to copy.
        };
        let after = place_among(volume, &survivors, r);
        let Some(&target) = after.iter().find(|a| !before.contains(a)) else {
            continue; // every survivor already held a replica.
        };
        jobs.push(HealJob {
            volume,
            source,
            target,
        });
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_states_gate_ingest() {
        assert!(ArrayHealth::Healthy.is_alive());
        assert!(ArrayHealth::Degraded(SimDuration::micros(50)).is_alive());
        assert!(!ArrayHealth::Failed.is_alive());
        assert_eq!(ArrayHealth::Healthy.ingest_penalty(), SimDuration::ZERO);
        assert_eq!(
            ArrayHealth::Degraded(SimDuration::micros(50)).ingest_penalty(),
            SimDuration::micros(50)
        );
    }

    #[test]
    fn backoff_doubles_then_exhausts() {
        let p = RetryPolicy::fleet_default();
        assert_eq!(p.delay(1), None, "the original submission never waits");
        assert_eq!(p.delay(2), Some(SimDuration::millis(10)));
        assert_eq!(p.delay(3), Some(SimDuration::millis(20)));
        assert_eq!(p.delay(4), Some(SimDuration::millis(40)));
        assert_eq!(p.delay(5), None, "attempts exhausted");
    }

    #[test]
    fn heal_plan_covers_exactly_the_dead_arrays_volumes() {
        let pre_kill: Vec<usize> = (0..5).collect();
        let dead = 3;
        let volumes = 400;
        let jobs = heal_jobs(volumes, &pre_kill, dead, 2);
        let affected: u64 = (0..volumes)
            .filter(|&v| place_among(v, &pre_kill, 2).contains(&dead))
            .count() as u64;
        assert_eq!(jobs.len() as u64, affected);
        for job in &jobs {
            let before = place_among(job.volume, &pre_kill, 2);
            assert!(before.contains(&dead));
            assert!(before.contains(&job.source), "source was a replica");
            assert_ne!(job.source, dead);
            assert!(!before.contains(&job.target), "target is a new replica");
            assert_ne!(job.target, dead);
        }
        // Rendezvous spreads ~r/n of the volumes onto each array.
        let expected = volumes * 2 / 5;
        assert!(
            jobs.len() as u64 > expected / 2 && (jobs.len() as u64) < expected * 2,
            "{} jobs for ~{expected} expected affected volumes",
            jobs.len()
        );
    }

    #[test]
    fn unreplicated_volumes_cannot_heal() {
        let jobs = heal_jobs(100, &[0, 1, 2], 1, 1);
        assert!(
            jobs.is_empty(),
            "r=1 has no surviving source for the dead array's volumes"
        );
    }

    #[test]
    fn full_replication_has_nowhere_to_heal_to() {
        let jobs = heal_jobs(100, &[0, 1, 2], 0, 3);
        assert!(jobs.is_empty(), "every survivor already holds a replica");
    }
}
