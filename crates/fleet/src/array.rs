//! One array's serving stack, composable N-up under a single clock.
//!
//! An [`ArrayInstance`] owns the existing single-array substrate — a
//! [`HostModel`], a [`PcieFabric`] and a row of [`SsdDevice`]s — and
//! exposes the I/O path as *stage methods* invoked at event times, so
//! a fleet world can interleave N arrays' events on one DES clock
//! instead of running N sequential simulations and stitching clocks
//! afterwards. Each stage returns the timestamps the caller needs to
//! schedule the next event and to charge the per-request ledger.

use afa_host::{CpuId, HostModel, SchedPolicy};
use afa_pcie::PcieFabric;
use afa_sim::{SimDuration, SimTime};
use afa_ssd::{NvmeCommand, SsdDevice};

use crate::failover::ArrayHealth;

/// Timestamps out of [`ArrayInstance::ingest`]: the array-side CPU
/// submit, the fabric delivery, and the device completion.
#[derive(Clone, Copy, Debug)]
pub struct IngestTimes {
    /// When the array CPU finished the submission path.
    pub submit_end: SimTime,
    /// When the command reached the device through the PCIe fabric.
    pub at_device: SimTime,
    /// When the device will complete the command.
    pub dev_done: SimTime,
}

/// Timestamps out of [`ArrayInstance::reap`]: IRQ, wakeup, and the
/// completion-path CPU charge.
#[derive(Clone, Copy, Debug)]
pub struct ReapTimes {
    /// When the IRQ handler finished and the reaper could be woken.
    pub wake_ready: SimTime,
    /// When the reaping task actually got on CPU.
    pub run_start: SimTime,
    /// When the completion path finished executing.
    pub reap_end: SimTime,
}

/// One array: host + fabric + SSDs + liveness, driven by stage calls.
#[derive(Debug)]
pub struct ArrayInstance {
    host: HostModel,
    fabric: PcieFabric,
    devices: Vec<SsdDevice>,
    /// The designated I/O CPU per device slot.
    cpus: Vec<CpuId>,
    health: ArrayHealth,
    completions: u64,
}

impl ArrayInstance {
    /// Assembles an array from its substrate parts. `cpus[d]` is the
    /// CPU that submits to and reaps device `d`.
    ///
    /// # Panics
    ///
    /// Panics unless `cpus` and `devices` have equal length.
    pub fn new(
        host: HostModel,
        fabric: PcieFabric,
        devices: Vec<SsdDevice>,
        cpus: Vec<CpuId>,
    ) -> Self {
        assert_eq!(
            devices.len(),
            cpus.len(),
            "one designated CPU per device slot"
        );
        ArrayInstance {
            host,
            fabric,
            devices,
            cpus,
            health: ArrayHealth::Healthy,
            completions: 0,
        }
    }

    /// Current liveness.
    pub fn health(&self) -> ArrayHealth {
        self.health
    }

    /// Whether the array accepts new I/O.
    pub fn is_alive(&self) -> bool {
        self.health.is_alive()
    }

    /// Kills the array: no new ingests, in-flight I/O is lost (the
    /// fleet's failover sweep re-issues it elsewhere).
    pub fn kill(&mut self) {
        self.health = ArrayHealth::Failed;
    }

    /// Degrades the array: it keeps serving but every ingest pays
    /// `extra` before touching the CPU.
    pub fn degrade(&mut self, extra: SimDuration) {
        self.health = ArrayHealth::Degraded(extra);
    }

    /// Device slots on this array.
    pub fn width(&self) -> usize {
        self.devices.len()
    }

    /// Runs the array-side submission path for `cmd` against device
    /// `device`, starting when the RPC lands at `at`: CPU submit
    /// charge, fabric hop, device service.
    ///
    /// # Panics
    ///
    /// Panics if the array is dead — the fleet must route around a
    /// [`ArrayHealth::Failed`] array, so an ingest reaching one is a
    /// routing bug, not a runtime condition.
    pub fn ingest(
        &mut self,
        at: SimTime,
        device: usize,
        cmd: NvmeCommand,
        submit_cost: SimDuration,
    ) -> IngestTimes {
        assert!(self.is_alive(), "ingest on a failed array");
        let start = at + self.health.ingest_penalty();
        let submit_end = self.host.charge_cpu(self.cpus[device], start, submit_cost);
        let at_device = self.fabric.submit_command(device, submit_end);
        let dev_done = self.devices[device].submit(at_device, cmd).completes_at;
        IngestTimes {
            submit_end,
            at_device,
            dev_done,
        }
    }

    /// Carries device `device`'s completion of `bytes` back through
    /// the PCIe fabric; returns when it reaches the array host.
    pub fn completion_to_host(&mut self, device: usize, dev_done: SimTime, bytes: u64) -> SimTime {
        self.fabric.deliver_completion(device, dev_done, bytes)
    }

    /// Runs the array-side completion path: IRQ delivery, reaper
    /// wakeup under `policy`, and the completion CPU charge. Counts
    /// one completion against this array.
    pub fn reap(
        &mut self,
        device: usize,
        at_host: SimTime,
        policy: SchedPolicy,
        reap_cost: SimDuration,
    ) -> ReapTimes {
        let cpu = self.cpus[device];
        let irq = self.host.deliver_irq(device, at_host);
        let (run_start, _) = self.host.wake_io_task(cpu, irq.wake_ready, policy);
        let reap_end = self.host.charge_cpu(cpu, run_start, reap_cost);
        self.completions += 1;
        ReapTimes {
            wake_ready: irq.wake_ready,
            run_start,
            reap_end,
        }
    }

    /// Completions reaped on this array (primaries and secondaries
    /// alike — this is what the stitched manifest sums so secondary
    /// arrays' work is visible).
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Spawns one background burst on the array host at `now`.
    pub fn spawn_background(&mut self, now: SimTime) {
        self.host.spawn_background(now);
    }

    /// When the array host's next background burst arrives.
    pub fn next_background_arrival(&mut self, now: SimTime) -> SimTime {
        self.host.next_background_arrival(now)
    }
}

#[cfg(test)]
mod tests {
    use afa_host::{BackgroundConfig, CpuTopology, KernelConfig};
    use afa_ssd::{FirmwareProfile, SsdSpec};

    use super::*;

    fn tiny_array(seed: u64) -> ArrayInstance {
        let topo = CpuTopology::xeon_e5_2690_v2_dual();
        let cpus = vec![CpuId(0), CpuId(1)];
        let mut host = HostModel::new(
            topo,
            KernelConfig::stock(),
            BackgroundConfig::centos7_desktop(),
            seed,
        );
        host.init_vectors(cpus.clone(), seed);
        let devices = (0..2)
            .map(|d| SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed ^ d))
            .collect();
        ArrayInstance::new(host, PcieFabric::paper_single_host(2), devices, cpus)
    }

    #[test]
    fn io_path_timestamps_are_monotone() {
        let mut array = tiny_array(11);
        let t0 = SimTime::from_nanos(1_000);
        let ingest = array.ingest(
            t0,
            0,
            NvmeCommand::read(64, 4096),
            SimDuration::nanos(1_500),
        );
        assert!(ingest.submit_end > t0);
        assert!(ingest.at_device > ingest.submit_end);
        assert!(ingest.dev_done > ingest.at_device);
        let at_host = array.completion_to_host(0, ingest.dev_done, 4096);
        assert!(at_host > ingest.dev_done);
        let reap = array.reap(
            0,
            at_host,
            SchedPolicy::default_fair(),
            SimDuration::nanos(1_300),
        );
        assert!(reap.wake_ready >= at_host);
        assert!(reap.run_start >= reap.wake_ready);
        assert!(reap.reap_end > reap.run_start);
        assert_eq!(array.completions(), 1);
    }

    #[test]
    fn degraded_arrays_pay_the_penalty_on_ingest() {
        let mut healthy = tiny_array(42);
        let mut degraded = tiny_array(42);
        degraded.degrade(SimDuration::micros(200));
        let t0 = SimTime::from_nanos(5_000);
        let cmd = NvmeCommand::read(0, 4096);
        let a = healthy.ingest(t0, 1, cmd, SimDuration::nanos(1_500));
        let b = degraded.ingest(t0, 1, cmd, SimDuration::nanos(1_500));
        let delta = b.submit_end.saturating_since(a.submit_end);
        assert!(
            delta >= SimDuration::micros(200),
            "degraded ingest starts late: {delta:?}"
        );
        assert!(degraded.is_alive(), "degraded still serves");
    }

    #[test]
    #[should_panic(expected = "ingest on a failed array")]
    fn dead_arrays_refuse_ingest() {
        let mut array = tiny_array(7);
        array.kill();
        assert!(!array.is_alive());
        array.ingest(
            SimTime::ZERO,
            0,
            NvmeCommand::read(0, 4096),
            SimDuration::nanos(1_500),
        );
    }

    #[test]
    fn background_arrivals_advance() {
        let mut array = tiny_array(3);
        let t0 = SimTime::from_nanos(10_000);
        let next = array.next_background_arrival(t0);
        assert!(next > t0);
        array.spawn_background(t0);
    }
}
