//! Whole-array system tests over the public `AfaSystem` API (moved
//! out of `system.rs` when the I/O lifecycle split into the staged
//! `io_path` modules).

use afa_core::{AfaConfig, AfaSystem, IrqCoalescing, RunResult, TuningStage};
use afa_sim::SimDuration;
use afa_stats::NinesPoint;
use afa_workload::IoEngine;

fn quick(stage: TuningStage, ssds: usize, ms: u64) -> RunResult {
    let config = AfaConfig::paper(stage)
        .with_ssds(ssds)
        .with_runtime(SimDuration::millis(ms))
        .with_seed(7);
    AfaSystem::run(&config)
}

#[test]
fn every_device_completes_io() {
    let r = quick(TuningStage::IrqAffinity, 8, 50);
    assert_eq!(r.reports.len(), 8);
    for report in &r.reports {
        assert!(report.completed() > 500, "only {} I/Os", report.completed());
    }
}

#[test]
fn tuned_mean_latency_is_about_30us() {
    let r = quick(TuningStage::ExperimentalFirmware, 4, 100);
    for report in &r.reports {
        let mean = report.histogram().mean() / 1_000.0;
        assert!((28.0..40.0).contains(&mean), "mean {mean} us");
    }
}

#[test]
fn qd1_iops_matches_latency() {
    let r = quick(TuningStage::ExperimentalFirmware, 2, 100);
    for report in &r.reports {
        let iops = report.completed() as f64 / 0.1;
        // ~1 / 33 µs ≈ 30 K IOPS.
        assert!((22_000.0..36_000.0).contains(&iops), "IOPS {iops}");
    }
}

#[test]
fn default_config_has_fatter_tail_than_tuned() {
    let default = quick(TuningStage::Default, 8, 400);
    let tuned = quick(TuningStage::IrqAffinity, 8, 400);
    let max_default: u64 = default
        .reports
        .iter()
        .map(|r| r.profile().get(NinesPoint::Max))
        .max()
        .unwrap();
    let max_tuned: u64 = tuned
        .reports
        .iter()
        .map(|r| r.profile().get(NinesPoint::Max))
        .max()
        .unwrap();
    assert!(
        max_default > max_tuned,
        "default max {max_default} <= tuned max {max_tuned}"
    );
}

#[test]
fn polling_engine_completes_without_interrupts() {
    let config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_ssds(2)
        .with_runtime(SimDuration::millis(50))
        .with_engine(IoEngine::Polling);
    let r = AfaSystem::run(&config);
    assert_eq!(r.host.stats().irqs, 0, "polling must not interrupt");
    for report in &r.reports {
        assert!(report.completed() > 500);
        // Polling shaves the interrupt + wake-up off the latency.
        let mean = report.histogram().mean() / 1_000.0;
        assert!(mean < 34.0, "polling mean {mean} us");
    }
}

#[test]
fn deterministic_given_seed() {
    let a = quick(TuningStage::Chrt, 4, 50);
    let b = quick(TuningStage::Chrt, 4, 50);
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.completed(), rb.completed());
        assert_eq!(ra.histogram().max(), rb.histogram().max());
        assert_eq!(ra.histogram().mean(), rb.histogram().mean());
    }
}

#[test]
fn logging_enables_latency_logs() {
    let config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_ssds(2)
        .with_runtime(SimDuration::millis(20))
        .with_logging(true);
    let r = AfaSystem::run(&config);
    for report in &r.reports {
        let log = report.latency_log().expect("log enabled");
        assert!(log.samples_seen() > 100);
    }
}

#[test]
fn coalescing_reduces_interrupt_rate_at_depth() {
    let mut deep = AfaConfig::paper(TuningStage::ExperimentalFirmware)
        .with_ssds(2)
        .with_runtime(SimDuration::millis(80))
        .with_seed(21);
    deep.iodepth = 4;
    let uncoalesced = AfaSystem::run(&deep);
    let mut coalesced_cfg = deep.clone();
    coalesced_cfg.irq_coalescing = Some(IrqCoalescing {
        max_batch: 4,
        timeout: SimDuration::micros(100),
    });
    let coalesced = AfaSystem::run(&coalesced_cfg);

    let ios = |r: &RunResult| r.reports.iter().map(|rep| rep.completed()).sum::<u64>();
    let rate = |r: &RunResult| r.host.stats().irqs as f64 / ios(r).max(1) as f64;
    assert!(
        (rate(&uncoalesced) - 1.0).abs() < 0.01,
        "{}",
        rate(&uncoalesced)
    );
    assert!(
        rate(&coalesced) < 0.6,
        "coalescing should batch MSIs: {:.2} irq/io",
        rate(&coalesced)
    );
    assert!(ios(&coalesced) > 1_000, "batched path must still flow");
}

#[test]
fn coalescing_timeout_adds_qd1_latency() {
    let base = AfaConfig::paper(TuningStage::ExperimentalFirmware)
        .with_ssds(1)
        .with_runtime(SimDuration::millis(60))
        .with_seed(22);
    let plain = AfaSystem::run(&base);
    let coalesced = AfaSystem::run(&base.clone().with_irq_coalescing(IrqCoalescing {
        max_batch: 4,
        timeout: SimDuration::micros(100),
    }));
    let mean = |r: &RunResult| r.reports[0].histogram().mean() / 1e3;
    // At QD1 a batch never fills, so every I/O eats the timeout.
    assert!(
        mean(&coalesced) > mean(&plain) + 80.0,
        "QD1 coalescing penalty missing: {:.1} vs {:.1}",
        mean(&coalesced),
        mean(&plain)
    );
}

#[test]
fn rate_cap_paces_issues() {
    let config = AfaConfig::paper(TuningStage::ExperimentalFirmware)
        .with_ssds(2)
        .with_runtime(SimDuration::millis(100))
        .with_rate_iops(5_000);
    let r = AfaSystem::run(&config);
    for report in &r.reports {
        let iops = report.completed() as f64 / 0.1;
        assert!(
            (4_000.0..5_400.0).contains(&iops),
            "rate-capped IOPS {iops}"
        );
    }
}

#[test]
fn events_are_counted_and_never_clamped() {
    let r = quick(TuningStage::IrqAffinity, 2, 50);
    let ios: u64 = r.reports.iter().map(|rep| rep.completed()).sum();
    // ~2 events per I/O (DeviceDone + Completion) plus issues and
    // background arrivals.
    assert!(
        r.events_processed > 2 * ios,
        "{} events for {} I/Os",
        r.events_processed,
        ios
    );
    assert_eq!(r.clamped_past_schedules, 0, "model scheduled into the past");
}

#[test]
fn fabric_accounting_is_consistent() {
    let r = quick(TuningStage::IrqAffinity, 4, 50);
    let total_ios: u64 = r.reports.iter().map(|rep| rep.completed()).sum();
    assert!(r.fabric_stats.interrupts >= total_ios);
    assert_eq!(r.fabric_stats.device_bytes, r.fabric_stats.uplink_bytes);
}

#[test]
fn ledger_log_captures_settled_ledgers() {
    use afa_sim::trace::Cause;
    let config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_ssds(2)
        .with_runtime(SimDuration::millis(20))
        .with_ledger_log(64);
    let r = AfaSystem::run(&config);
    let log = r.ledgers.expect("ledger log enabled");
    assert_eq!(log.entries().len(), 64);
    for io in log.entries() {
        // Every interrupt-driven I/O has device service and CPU work.
        assert!(!io.ledger.amount(Cause::DeviceService).is_zero());
        assert!(!io.ledger.amount(Cause::CpuWork).is_zero());
        // The ledger accounts the whole latency window exactly.
        assert_eq!(
            io.ledger.total() - io.ledger.pre_issue(),
            io.latency(),
            "ledger does not sum to the measured latency"
        );
    }
}
