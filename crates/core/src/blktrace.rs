//! blktrace-style per-I/O stage tracing.
//!
//! The paper's methodology family is fio + blktrace/LTTng-style
//! instrumentation. This module records, for a window of I/Os, every
//! stage timestamp on the completion path and renders them in a
//! blkparse-like text format, so individual tail samples can be read
//! end to end ("where did these 600 µs go?").

use afa_sim::SimTime;

/// Stages of one I/O's life, in path order (blkparse action letters
/// in parentheses).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoStage {
    /// Submitted by the application thread (Q — queued).
    Queue,
    /// Command visible to the device after fabric traversal (D —
    /// dispatched).
    Dispatch,
    /// Device posted the completion (C — completed by device).
    DeviceComplete,
    /// Interrupt handled on the host (I).
    IrqHandled,
    /// Application thread resumed and reaped the completion (R).
    Reaped,
}

impl IoStage {
    /// The blkparse-style action letter.
    pub fn letter(self) -> char {
        match self {
            IoStage::Queue => 'Q',
            IoStage::Dispatch => 'D',
            IoStage::DeviceComplete => 'C',
            IoStage::IrqHandled => 'I',
            IoStage::Reaped => 'R',
        }
    }
}

/// One traced I/O with its five stage timestamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoTrace {
    /// Device index.
    pub device: usize,
    /// Starting LBA (4 KiB units).
    pub lba: u64,
    /// Stage timestamps, indexed by [`IoStage`] order. Zero means the
    /// stage was not reached (e.g. polling skips the IRQ stage).
    pub stamps: [SimTime; 5],
}

impl IoTrace {
    /// Total latency from queue to reap.
    pub fn total(&self) -> afa_sim::SimDuration {
        self.stamps[4].saturating_since(self.stamps[0])
    }

    /// Renders one blkparse-like line per reached stage.
    pub fn to_text(&self, seq: usize) -> String {
        let mut out = String::new();
        for (i, stage) in [
            IoStage::Queue,
            IoStage::Dispatch,
            IoStage::DeviceComplete,
            IoStage::IrqHandled,
            IoStage::Reaped,
        ]
        .iter()
        .enumerate()
        {
            let t = self.stamps[i];
            if t == SimTime::ZERO && i > 0 {
                continue; // stage skipped
            }
            out.push_str(&format!(
                "nvme{:<3} {:>12.3} {:>8} {} lba {} + 8\n",
                self.device,
                t.as_secs_f64(),
                seq,
                stage.letter(),
                self.lba * 8 // 512 B sectors, like blkparse
            ));
        }
        out
    }
}

/// Records stage timestamps for the first `capacity` I/Os of a run.
///
/// # Example
///
/// ```
/// use afa_core::blktrace::{IoStage, TraceRecorder};
/// use afa_sim::SimTime;
///
/// let mut rec = TraceRecorder::new(10);
/// let id = rec.begin(0, 42, SimTime::from_nanos(100)).unwrap();
/// rec.stamp(id, IoStage::Dispatch, SimTime::from_nanos(1_500));
/// rec.stamp(id, IoStage::Reaped, SimTime::from_nanos(33_000));
/// assert_eq!(rec.traces().len(), 1);
/// assert_eq!(rec.traces()[0].total().as_nanos(), 32_900);
/// ```
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    traces: Vec<IoTrace>,
    capacity: usize,
}

impl TraceRecorder {
    /// Creates a recorder that keeps at most `capacity` I/Os.
    pub fn new(capacity: usize) -> Self {
        TraceRecorder {
            traces: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
        }
    }

    /// Starts tracing one I/O; returns its trace id, or `None` when
    /// the window is full (callers then skip stamping).
    pub fn begin(&mut self, device: usize, lba: u64, queued_at: SimTime) -> Option<usize> {
        if self.traces.len() >= self.capacity {
            return None;
        }
        let mut stamps = [SimTime::ZERO; 5];
        stamps[0] = queued_at;
        self.traces.push(IoTrace {
            device,
            lba,
            stamps,
        });
        Some(self.traces.len() - 1)
    }

    /// Records a stage timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn stamp(&mut self, id: usize, stage: IoStage, at: SimTime) {
        let idx = match stage {
            IoStage::Queue => 0,
            IoStage::Dispatch => 1,
            IoStage::DeviceComplete => 2,
            IoStage::IrqHandled => 3,
            IoStage::Reaped => 4,
        };
        self.traces[id].stamps[idx] = at;
    }

    /// The recorded traces.
    pub fn traces(&self) -> &[IoTrace] {
        &self.traces
    }

    /// Stitches per-shard recorders into the window a sequential run
    /// would have produced: every shard traced its own first
    /// `capacity` I/Os, so the union is a superset of the global
    /// window — sort by queue instant (device, then LBA, as
    /// deterministic tie-breaks) and keep the first `capacity`.
    pub(crate) fn merged(capacity: usize, parts: Vec<TraceRecorder>) -> Self {
        let mut traces: Vec<IoTrace> = parts.into_iter().flat_map(|p| p.traces).collect();
        traces.sort_by_key(|t| (t.stamps[0], t.device, t.lba));
        traces.truncate(capacity);
        TraceRecorder { traces, capacity }
    }

    /// The slowest recorded I/O, if any.
    pub fn slowest(&self) -> Option<&IoTrace> {
        self.traces.iter().max_by_key(|t| t.total())
    }

    /// Renders all traces in blkparse-like text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (seq, trace) in self.traces.iter().enumerate() {
            out.push_str(&trace.to_text(seq));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_sim::SimDuration;

    fn t_us(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(n)
    }

    #[test]
    fn records_and_caps() {
        let mut rec = TraceRecorder::new(2);
        assert!(rec.begin(0, 1, t_us(1)).is_some());
        assert!(rec.begin(1, 2, t_us(2)).is_some());
        assert!(rec.begin(2, 3, t_us(3)).is_none(), "window full");
        assert_eq!(rec.traces().len(), 2);
    }

    #[test]
    fn stamps_land_in_order_slots() {
        let mut rec = TraceRecorder::new(1);
        let id = rec.begin(5, 100, t_us(10)).unwrap();
        rec.stamp(id, IoStage::Dispatch, t_us(12));
        rec.stamp(id, IoStage::DeviceComplete, t_us(37));
        rec.stamp(id, IoStage::IrqHandled, t_us(40));
        rec.stamp(id, IoStage::Reaped, t_us(43));
        let tr = rec.traces()[0];
        assert_eq!(tr.stamps[0], t_us(10));
        assert_eq!(tr.stamps[4], t_us(43));
        assert_eq!(tr.total(), SimDuration::micros(33));
    }

    #[test]
    fn slowest_finds_the_tail_sample() {
        let mut rec = TraceRecorder::new(3);
        for (i, lat) in [30u64, 600, 31].iter().enumerate() {
            let id = rec.begin(i, i as u64, t_us(0)).unwrap();
            rec.stamp(id, IoStage::Reaped, t_us(*lat));
        }
        assert_eq!(rec.slowest().unwrap().device, 1);
    }

    #[test]
    fn text_format_is_blkparse_like() {
        let mut rec = TraceRecorder::new(1);
        let id = rec.begin(0, 10, t_us(1)).unwrap();
        rec.stamp(id, IoStage::Reaped, t_us(34));
        let text = rec.to_text();
        assert!(text.contains("nvme0"));
        assert!(text.contains(" Q "));
        assert!(text.contains(" R "));
        assert!(text.contains("lba 80")); // 10 pages × 8 sectors
                                          // Skipped stages don't render.
        assert!(!text.contains(" D "));
    }

    #[test]
    fn stage_letters_unique() {
        let letters = ['Q', 'D', 'C', 'I', 'R'];
        for (i, s) in [
            IoStage::Queue,
            IoStage::Dispatch,
            IoStage::DeviceComplete,
            IoStage::IrqHandled,
            IoStage::Reaped,
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(s.letter(), letters[i]);
        }
    }
}
