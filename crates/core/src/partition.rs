//! The partition planner: decides how the nine I/O-path logical
//! processes (eight workers + the hub, see [`crate::io_path`]) are
//! grouped into shards for one run.
//!
//! The plan is a **pure function** of three inputs — which worker LPs
//! actually carry jobs (from the geometry), the requested thread
//! count, and the host's available cores — so a run's partition is
//! reproducible from its configuration. Crucially, the partition can
//! only affect wall-clock time: the engine's merge contract
//! ([`afa_sim::shard`]) makes every plan produce byte-identical
//! artifacts, which `scripts/ci.sh` and the `--features proptest`
//! suite verify.
//!
//! Policy: threads only pay when there is parallel work to feed them,
//! and every extra shard buys channel + watermark overhead. So:
//!
//! * one effective thread (the default) → the **single** plan: all
//!   LPs fused into one shard, which both drivers run as a plain
//!   single-wheel loop with zero synchronization;
//! * `T > 1` effective threads → up to `T − 1` shards of job-bearing
//!   worker LPs (round-robin), plus one shard fusing the hub with the
//!   idle workers. The hub handles ~40 % of all events, so it always
//!   gets its own lane before workers split further;
//! * worker groups never outnumber the job-bearing LPs — fusing idle
//!   LPs is free, splitting them is pure overhead.
//!
//! `AFA_SHARD_PLAN` (env) and [`PlanOverride`] (programmatic, wins
//! over the env) force a specific fusion level for debugging and
//! differential tests: `single`, `fused-N` (N shards, 2 ≤ N ≤ 9), or
//! `full-9`.

use std::sync::atomic::{AtomicUsize, Ordering};

use afa_sim::PartitionPlan;

use crate::io_path::{HUB_LP, LP_COUNT, WORKER_LPS};

/// A forced fusion level, parsed from `AFA_SHARD_PLAN` or pinned by a
/// [`PlanOverride`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSpec {
    /// Everything in one shard (`single`, `1`, `fused-1`).
    Single,
    /// `N` shards: workers round-robin over `N − 1`, hub alone
    /// (`fused-N`).
    Fused(usize),
    /// One shard per LP (`full`, `full-9`, `9`).
    Full,
}

impl PlanSpec {
    /// Parses a spec string; `None` for unrecognized input.
    pub fn parse(s: &str) -> Option<PlanSpec> {
        match s.trim() {
            "single" | "1" | "fused-1" => Some(PlanSpec::Single),
            "full" | "full-9" | "9" | "fused-9" => Some(PlanSpec::Full),
            other => {
                let n: usize = other.strip_prefix("fused-")?.parse().ok()?;
                match n {
                    1 => Some(PlanSpec::Single),
                    2..=8 => Some(PlanSpec::Fused(n)),
                    9 => Some(PlanSpec::Full),
                    _ => None,
                }
            }
        }
    }

    /// Materializes the spec over the fixed 9-LP topology.
    fn plan(self) -> PartitionPlan {
        match self {
            PlanSpec::Single => PartitionPlan::single(LP_COUNT),
            PlanSpec::Full => PartitionPlan::identity(LP_COUNT),
            PlanSpec::Fused(n) => {
                let groups = n - 1;
                let mut assignment = vec![0usize; LP_COUNT];
                for (lp, slot) in assignment.iter_mut().enumerate().take(WORKER_LPS) {
                    *slot = lp % groups;
                }
                assignment[HUB_LP] = groups;
                PartitionPlan::from_assignment(assignment)
            }
        }
    }
}

/// Encoded [`PlanSpec`] override: 0 = none, 1 = single, 2 = full,
/// `3 + n` = fused-n.
static PLAN_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn encode(spec: Option<PlanSpec>) -> usize {
    match spec {
        None => 0,
        Some(PlanSpec::Single) => 1,
        Some(PlanSpec::Full) => 2,
        Some(PlanSpec::Fused(n)) => 3 + n,
    }
}

fn decode(raw: usize) -> Option<PlanSpec> {
    match raw {
        0 => None,
        1 => Some(PlanSpec::Single),
        2 => Some(PlanSpec::Full),
        n => Some(PlanSpec::Fused(n - 3)),
    }
}

/// RAII scope pinning the partition plan, taking precedence over
/// `AFA_SHARD_PLAN`. Because results are byte-identical under every
/// plan, overlapping overrides from concurrent tests cannot change any
/// outcome — only which topology does the work (same contract as
/// [`crate::ThreadsOverride`]).
pub struct PlanOverride {
    prev: usize,
}

impl PlanOverride {
    /// Pins the plan until the guard drops.
    pub fn set(spec: PlanSpec) -> Self {
        let prev = PLAN_OVERRIDE.swap(encode(Some(spec)), Ordering::Relaxed);
        PlanOverride { prev }
    }
}

impl Drop for PlanOverride {
    fn drop(&mut self) {
        PLAN_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Encoded fusion override: 0 = none (`AFA_NO_FUSION` decides),
/// 1 = force on, 2 = force off.
static FUSION_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// RAII scope pinning the macro-event fusion fast path on or off,
/// taking precedence over `AFA_NO_FUSION`. Because results are
/// byte-identical with fusion on or off, overlapping overrides from
/// concurrent tests cannot change any outcome — only how many events
/// the engine pops (same contract as [`PlanOverride`]).
pub struct FusionOverride {
    prev: usize,
}

impl FusionOverride {
    /// Pins fusion on (`true`) or off (`false`) until the guard drops.
    pub fn set(enabled: bool) -> Self {
        let prev = FUSION_OVERRIDE.swap(if enabled { 1 } else { 2 }, Ordering::Relaxed);
        FusionOverride { prev }
    }
}

impl Drop for FusionOverride {
    fn drop(&mut self) {
        FUSION_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Resolves whether a run fuses stage chains: a [`FusionOverride`]
/// wins, then `AFA_NO_FUSION` (any non-empty value other than `0`
/// disables), then the default (on).
pub(crate) fn fusion_enabled() -> bool {
    match FUSION_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => !std::env::var("AFA_NO_FUSION")
            .map(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false),
    }
}

/// A resolved partition decision: the plan plus a stable label for
/// logs and benches.
#[derive(Clone, Debug)]
pub struct ResolvedPlan {
    /// The partition the run executes under.
    pub plan: PartitionPlan,
    /// `single`, `fused-N`, or `full-9`.
    pub label: String,
}

/// Labels a plan by its fusion level.
fn label_of(plan: &PartitionPlan) -> String {
    match plan.shard_count() {
        1 => "single".into(),
        n if plan.is_identity() => format!("full-{n}"),
        n => format!("fused-{n}"),
    }
}

/// The pure planning function: given the set of job-bearing worker LPs
/// (as a bitmask), the requested thread count, and the host's
/// available cores, returns the partition the run should use. No
/// environment, no globals — the proptest suite checks determinism
/// over random inputs.
pub fn plan_for(job_lp_mask: u16, threads: usize, cores: usize) -> PartitionPlan {
    let effective = threads.min(cores.max(1));
    if effective <= 1 {
        return PartitionPlan::single(LP_COUNT);
    }
    let job_lps: Vec<usize> = (0..WORKER_LPS)
        .filter(|&lp| job_lp_mask >> lp & 1 == 1)
        .collect();
    // One lane is reserved for the hub shard; job-bearing workers
    // round-robin over the rest, and splitting beyond their count
    // would only mint empty shards.
    let groups = job_lps.len().max(1).min(effective - 1);
    let mut assignment = vec![groups; LP_COUNT];
    for (rank, &lp) in job_lps.iter().enumerate() {
        assignment[lp] = rank % groups;
    }
    PartitionPlan::from_assignment(assignment)
}

/// Resolves the plan for one run: a [`PlanOverride`] wins, then a
/// valid `AFA_SHARD_PLAN`, then the computed [`plan_for`].
pub(crate) fn resolve(job_lp_mask: u16, threads: usize, cores: usize) -> ResolvedPlan {
    let spec = decode(PLAN_OVERRIDE.load(Ordering::Relaxed)).or_else(|| {
        std::env::var("AFA_SHARD_PLAN")
            .ok()
            .and_then(|v| PlanSpec::parse(&v))
    });
    let plan = match spec {
        Some(spec) => spec.plan(),
        None => plan_for(job_lp_mask, threads, cores),
    };
    let label = label_of(&plan);
    ResolvedPlan { plan, label }
}

/// The host's available cores (1 when undetectable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The job-bearing worker-LP mask of a paper-geometry run with `ssds`
/// devices.
fn job_mask(ssds: usize) -> u16 {
    let geometry = crate::CpuSsdGeometry::paper(ssds);
    let mut mask = 0u16;
    for d in 0..ssds {
        mask |= 1 << crate::io_path::lp_of_cpu(geometry.cpu_of_ssd(d));
    }
    mask
}

/// The label (`single` / `fused-N` / `full-9`) of the plan a run with
/// `ssds` devices and `threads` workers would use right now — for
/// bench tables that record which topology did the work.
pub fn plan_label(ssds: usize, threads: usize) -> String {
    resolve(job_mask(ssds), threads, host_cores()).label
}

/// Human-readable summary of the plan a run with `ssds` devices would
/// use right now (honoring overrides, env, and the host) — what
/// `afactl exp --plan` echoes.
pub fn plan_summary(ssds: usize, threads: usize) -> String {
    let mask = job_mask(ssds);
    let cores = host_cores();
    let resolved = resolve(mask, threads, cores);
    format!(
        "plan {} ({} shards over {} LPs, {} thread(s), {} core(s) available)",
        resolved.label,
        resolved.plan.shard_count(),
        resolved.plan.lp_count(),
        threads.min(resolved.plan.shard_count()).max(1),
        cores
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_thread_fuses_everything() {
        for cores in [1, 4, 64] {
            assert_eq!(plan_for(0xFF, 1, cores).shard_count(), 1);
        }
        // Plenty of threads requested, but only one core to run on.
        assert_eq!(plan_for(0xFF, 8, 1).shard_count(), 1);
    }

    #[test]
    fn threads_split_jobs_and_reserve_a_hub_lane() {
        let plan = plan_for(0xFF, 4, 8);
        assert_eq!(plan.shard_count(), 4);
        // Hub fused with nothing else here (all workers carry jobs).
        assert_eq!(plan.members(3), vec![HUB_LP]);
        // Workers round-robin over the three job lanes.
        assert_eq!(plan.members(0), vec![0, 3, 6]);
    }

    #[test]
    fn idle_workers_fuse_into_the_hub_shard() {
        // Two job-bearing LPs (0 and 1): even with many threads the
        // plan stops at 3 shards, idle workers riding with the hub.
        let plan = plan_for(0b11, 8, 8);
        assert_eq!(plan.shard_count(), 3);
        assert_eq!(plan.members(0), vec![0]);
        assert_eq!(plan.members(1), vec![1]);
        assert_eq!(plan.members(2), vec![2, 3, 4, 5, 6, 7, HUB_LP]);
    }

    #[test]
    fn full_fanout_matches_identity() {
        let plan = plan_for(0xFF, 9, 16);
        assert_eq!(plan.shard_count(), 9);
        assert!(plan.is_identity());
    }

    #[test]
    fn spec_parsing_and_materialization() {
        assert_eq!(PlanSpec::parse("single"), Some(PlanSpec::Single));
        assert_eq!(PlanSpec::parse("1"), Some(PlanSpec::Single));
        assert_eq!(PlanSpec::parse("full-9"), Some(PlanSpec::Full));
        assert_eq!(PlanSpec::parse("fused-4"), Some(PlanSpec::Fused(4)));
        assert_eq!(PlanSpec::parse("fused-10"), None);
        assert_eq!(PlanSpec::parse("bogus"), None);
        let fused4 = PlanSpec::Fused(4).plan();
        assert_eq!(fused4.shard_count(), 4);
        assert_eq!(fused4.members(3), vec![HUB_LP]);
        assert_eq!(PlanSpec::Single.plan().shard_count(), 1);
        assert!(PlanSpec::Full.plan().is_identity());
    }

    #[test]
    fn override_wins_and_restores() {
        {
            let _guard = PlanOverride::set(PlanSpec::Fused(3));
            let resolved = resolve(0xFF, 1, 1);
            assert_eq!(resolved.plan.shard_count(), 3);
            assert_eq!(resolved.label, "fused-3");
        }
        // Back to computed policy after the guard drops.
        let resolved = resolve(0xFF, 1, 1);
        assert_eq!(resolved.plan.shard_count(), 1);
        assert_eq!(resolved.label, "single");
    }

    #[test]
    fn labels_cover_the_three_shapes() {
        assert_eq!(label_of(&PartitionPlan::single(LP_COUNT)), "single");
        assert_eq!(label_of(&PartitionPlan::identity(LP_COUNT)), "full-9");
        assert_eq!(label_of(&PlanSpec::Fused(4).plan()), "fused-4");
    }
}
