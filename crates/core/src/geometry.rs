//! The Fig. 5 CPU-SSD geometry and the Table II run matrix.

use afa_host::{CpuId, CpuSet, CpuTopology};

/// The static CPU↔SSD mapping of the paper's default configuration
/// (§III-C, Fig. 5).
///
/// On the 40-logical-CPU host, 32 logical CPUs — cpu(4)…cpu(19) and
/// cpu(24)…cpu(39) — host the fio threads; cpu(0)…cpu(3) and
/// cpu(20)…cpu(23) are reserved for other system tasks. SSD *n* and
/// SSD *n*+32 share `io_cpus[n]`, so e.g. nvme(0) and nvme(32) both
/// run on cpu(4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuSsdGeometry {
    io_cpus: Vec<CpuId>,
    reserved: Vec<CpuId>,
    assignment: Vec<CpuId>,
}

impl CpuSsdGeometry {
    /// The paper's geometry for `ssds` devices (up to 64).
    ///
    /// # Panics
    ///
    /// Panics if `ssds > 64`.
    pub fn paper(ssds: usize) -> Self {
        assert!(ssds <= 64, "the paper's host enumerates at most 64 SSDs");
        let io_cpus: Vec<CpuId> = (4..20).chain(24..40).map(CpuId).collect();
        let reserved: Vec<CpuId> = (0..4).chain(20..24).map(CpuId).collect();
        let assignment = (0..ssds).map(|n| io_cpus[n % io_cpus.len()]).collect();
        CpuSsdGeometry {
            io_cpus,
            reserved,
            assignment,
        }
    }

    /// A geometry with an explicit SSD→CPU assignment over the
    /// paper's io/reserved split (used by the Table II rows).
    ///
    /// # Panics
    ///
    /// Panics if any assigned CPU is one of the reserved CPUs.
    pub fn with_assignment(assignment: Vec<CpuId>) -> Self {
        let base = Self::paper(0);
        for cpu in &assignment {
            assert!(
                !base.reserved.contains(cpu),
                "{cpu} is reserved for system tasks"
            );
        }
        CpuSsdGeometry { assignment, ..base }
    }

    /// Number of SSDs in this geometry.
    pub fn ssds(&self) -> usize {
        self.assignment.len()
    }

    /// The CPU running SSD `n`'s fio thread.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn cpu_of_ssd(&self, n: usize) -> CpuId {
        self.assignment[n]
    }

    /// The full assignment, indexed by SSD.
    pub fn assignment(&self) -> &[CpuId] {
        &self.assignment
    }

    /// The 32 fio CPUs (isolation targets).
    pub fn io_cpus(&self) -> &[CpuId] {
        &self.io_cpus
    }

    /// The 8 CPUs reserved for system tasks.
    pub fn reserved_cpus(&self) -> &[CpuId] {
        &self.reserved
    }

    /// The fio CPUs as a set — the paper's
    /// `isolcpus=4-19,24-39` argument.
    pub fn io_cpu_set(&self) -> CpuSet {
        CpuSet::from_cpus(self.io_cpus.iter().copied())
    }

    /// fio threads sharing each *logical* CPU (2 in the default
    /// 64-SSD geometry).
    pub fn threads_per_logical_cpu(&self) -> usize {
        if self.assignment.is_empty() {
            return 0;
        }
        let mut counts = std::collections::HashMap::new();
        for cpu in &self.assignment {
            *counts.entry(cpu.0).or_insert(0usize) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// SSDs served per *physical* core (Table II's first column).
    pub fn ssds_per_physical_core(&self, topo: &CpuTopology) -> usize {
        if self.assignment.is_empty() {
            return 0;
        }
        let mut counts = std::collections::HashMap::new();
        for cpu in &self.assignment {
            *counts.entry(topo.physical_core_of(*cpu)).or_insert(0usize) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

/// One row of Table II: the Fig. 13 configurations varying SSDs per
/// physical core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Table2Row {
    /// Fig. 13(a): 4 SSDs per physical core — 64 fio threads, 1 run.
    /// Identical to Fig. 9.
    A,
    /// Fig. 13(b): 2 SSDs per physical core — 32 fio threads per run,
    /// 2 runs over disjoint SSD halves.
    B,
    /// Fig. 13(c): 1 SSD per physical core — 16 fio threads per run,
    /// 4 runs over disjoint SSD quarters.
    C,
    /// Fig. 13(d): 1 fio thread on the entire system — 64 runs.
    D,
}

impl Table2Row {
    /// All rows in paper order.
    pub const ALL: [Table2Row; 4] = [Table2Row::A, Table2Row::B, Table2Row::C, Table2Row::D];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Table2Row::A => "Fig. 13(a)",
            Table2Row::B => "Fig. 13(b)",
            Table2Row::C => "Fig. 13(c)",
            Table2Row::D => "Fig. 13(d)",
        }
    }

    /// SSDs per physical core.
    pub fn ssds_per_core(self) -> usize {
        match self {
            Table2Row::A => 4,
            Table2Row::B => 2,
            Table2Row::C | Table2Row::D => 1,
        }
    }

    /// fio threads running simultaneously per run.
    pub fn threads_per_run(self) -> usize {
        match self {
            Table2Row::A => 64,
            Table2Row::B => 32,
            Table2Row::C => 16,
            Table2Row::D => 1,
        }
    }

    /// Runs needed to cover all 64 SSDs on disjoint sets.
    pub fn runs(self) -> usize {
        64 / self.threads_per_run()
    }

    /// Builds the per-run geometries: each run maps a disjoint SSD
    /// subset onto CPUs at this row's density. Returns
    /// `(global_ssd_indices, geometry)` per run.
    pub fn run_geometries(self) -> Vec<(Vec<usize>, CpuSsdGeometry)> {
        let io_cpus: Vec<CpuId> = (4..20).chain(24..40).map(CpuId).collect();
        let threads = self.threads_per_run();
        (0..self.runs())
            .map(|run| {
                let ssds: Vec<usize> = (0..threads).map(|i| run * threads + i).collect();
                let assignment: Vec<CpuId> = match self {
                    // (a) two threads per logical CPU: n and n+32 share.
                    Table2Row::A => (0..threads).map(|n| io_cpus[n % 32]).collect(),
                    // (b) one thread per logical CPU, all 32 used.
                    Table2Row::B => (0..threads).map(|n| io_cpus[n]).collect(),
                    // (c) one thread per *physical* core: use the
                    // first 16 io CPUs, which sit on 16 distinct
                    // physical cores (4..19).
                    Table2Row::C => (0..threads).map(|n| io_cpus[n]).collect(),
                    // (d) a single thread on cpu(4).
                    Table2Row::D => vec![io_cpus[0]],
                };
                (ssds, CpuSsdGeometry::with_assignment(assignment))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_fig5() {
        let g = CpuSsdGeometry::paper(64);
        assert_eq!(g.ssds(), 64);
        assert_eq!(g.io_cpus().len(), 32);
        assert_eq!(g.reserved_cpus().len(), 8);
        // nvme(0) and nvme(32) both on cpu(4).
        assert_eq!(g.cpu_of_ssd(0), CpuId(4));
        assert_eq!(g.cpu_of_ssd(32), CpuId(4));
        // nvme(31) and nvme(63) both on cpu(39).
        assert_eq!(g.cpu_of_ssd(31), CpuId(39));
        assert_eq!(g.cpu_of_ssd(63), CpuId(39));
        assert_eq!(g.threads_per_logical_cpu(), 2);
    }

    #[test]
    fn reserved_cpus_are_0_3_and_20_23() {
        let g = CpuSsdGeometry::paper(64);
        let reserved: Vec<u16> = g.reserved_cpus().iter().map(|c| c.0).collect();
        assert_eq!(reserved, vec![0, 1, 2, 3, 20, 21, 22, 23]);
        let io = g.io_cpu_set();
        for r in g.reserved_cpus() {
            assert!(!io.contains(*r));
        }
    }

    #[test]
    fn ssds_per_physical_core_for_default() {
        let g = CpuSsdGeometry::paper(64);
        let topo = CpuTopology::xeon_e5_2690_v2_dual();
        // cpu(4) and cpu(24) are HT siblings → 4 SSDs per physical
        // core (Table II row a).
        assert_eq!(g.ssds_per_physical_core(&topo), 4);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn assignment_to_reserved_cpu_panics() {
        let _ = CpuSsdGeometry::with_assignment(vec![CpuId(0)]);
    }

    #[test]
    fn table2_rows_match_paper() {
        assert_eq!(Table2Row::A.threads_per_run(), 64);
        assert_eq!(Table2Row::A.runs(), 1);
        assert_eq!(Table2Row::B.threads_per_run(), 32);
        assert_eq!(Table2Row::B.runs(), 2);
        assert_eq!(Table2Row::C.threads_per_run(), 16);
        assert_eq!(Table2Row::C.runs(), 4);
        assert_eq!(Table2Row::D.threads_per_run(), 1);
        assert_eq!(Table2Row::D.runs(), 64);
    }

    #[test]
    fn table2_runs_cover_all_64_ssds_disjointly() {
        let topo = CpuTopology::xeon_e5_2690_v2_dual();
        for row in Table2Row::ALL {
            let runs = row.run_geometries();
            assert_eq!(runs.len(), row.runs());
            let mut seen = [false; 64];
            for (ssds, geometry) in &runs {
                assert_eq!(ssds.len(), row.threads_per_run());
                assert_eq!(geometry.ssds(), row.threads_per_run());
                for &s in ssds {
                    assert!(!seen[s], "SSD {s} covered twice in {row:?}");
                    seen[s] = true;
                }
                assert!(
                    geometry.ssds_per_physical_core(&topo) <= row.ssds_per_core(),
                    "{row:?} density"
                );
            }
            assert!(seen.iter().all(|&s| s), "{row:?} missed SSDs");
        }
    }

    #[test]
    fn row_c_uses_distinct_physical_cores() {
        let topo = CpuTopology::xeon_e5_2690_v2_dual();
        let (_, g) = &Table2Row::C.run_geometries()[0];
        let mut cores: Vec<u16> = g
            .assignment()
            .iter()
            .map(|c| topo.physical_core_of(*c))
            .collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 16, "row C must use 16 distinct cores");
    }
}
