//! The paper's cumulative tuning ladder.

use afa_host::{CpuSet, KernelConfig, SchedPolicy};
use afa_ssd::FirmwareProfile;

/// One stage of §IV's tuning progression. Each stage *includes* all
/// earlier stages, exactly as the paper applies them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TuningStage {
    /// §IV-A: stock kernel, CFS fio, balanced IRQs, production
    /// firmware (Fig. 6).
    Default,
    /// §IV-B: + `chrt -f 99` on every fio process (Fig. 7).
    Chrt,
    /// §IV-C: + `isolcpus nohz_full rcu_nocbs max_cstate=1 idle=poll`
    /// on the fio CPUs (Fig. 8).
    Isolcpus,
    /// §IV-D: + all 2,560 NVMe vectors pinned to their designated
    /// CPUs (Fig. 9).
    IrqAffinity,
    /// §IV-E: + experimental SSD firmware with SMART update/save
    /// disabled (Fig. 11).
    ExperimentalFirmware,
}

impl TuningStage {
    /// The four kernel configurations compared in Fig. 12, in order.
    pub const KERNEL_LADDER: [TuningStage; 4] = [
        TuningStage::Default,
        TuningStage::Chrt,
        TuningStage::Isolcpus,
        TuningStage::IrqAffinity,
    ];

    /// All stages including the firmware change.
    pub const ALL: [TuningStage; 5] = [
        TuningStage::Default,
        TuningStage::Chrt,
        TuningStage::Isolcpus,
        TuningStage::IrqAffinity,
        TuningStage::ExperimentalFirmware,
    ];

    /// The paper's label for the stage (Fig. 12's legend).
    pub fn label(self) -> &'static str {
        match self {
            TuningStage::Default => "default",
            TuningStage::Chrt => "chrt",
            TuningStage::Isolcpus => "isolcpus",
            TuningStage::IrqAffinity => "irq",
            TuningStage::ExperimentalFirmware => "exp-firmware",
        }
    }
}

impl std::fmt::Display for TuningStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A resolved tuning: what to configure where for a given stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tuning {
    stage: TuningStage,
}

impl Tuning {
    /// Wraps a stage.
    pub fn new(stage: TuningStage) -> Self {
        Tuning { stage }
    }

    /// The wrapped stage.
    pub fn stage(&self) -> TuningStage {
        self.stage
    }

    /// The kernel configuration for this stage, given the fio CPU set
    /// (needed from [`TuningStage::Isolcpus`] on).
    pub fn kernel_config(&self, io_cpus: CpuSet) -> KernelConfig {
        match self.stage {
            TuningStage::Default | TuningStage::Chrt => KernelConfig::stock(),
            TuningStage::Isolcpus => KernelConfig::isolated(io_cpus),
            TuningStage::IrqAffinity | TuningStage::ExperimentalFirmware => {
                KernelConfig::isolated_pinned_irq(io_cpus)
            }
        }
    }

    /// The scheduling class fio runs under.
    pub fn fio_policy(&self) -> SchedPolicy {
        match self.stage {
            TuningStage::Default => SchedPolicy::default_fair(),
            _ => SchedPolicy::chrt_fifo_99(),
        }
    }

    /// The SSD firmware installed.
    pub fn firmware(&self) -> FirmwareProfile {
        match self.stage {
            TuningStage::ExperimentalFirmware => FirmwareProfile::experimental(),
            _ => FirmwareProfile::production(),
        }
    }
}

impl From<TuningStage> for Tuning {
    fn from(stage: TuningStage) -> Self {
        Tuning::new(stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_host::{CpuId, IdlePolicy, IrqMode};

    fn io() -> CpuSet {
        CpuSet::from_range(4, 19).union(CpuSet::from_range(24, 39))
    }

    #[test]
    fn stages_are_cumulative() {
        // Default: everything stock.
        let t = Tuning::new(TuningStage::Default);
        assert_eq!(t.kernel_config(io()), KernelConfig::stock());
        assert!(!t.fio_policy().is_realtime());
        assert!(t.firmware().smart_enabled());

        // Chrt: only the policy changes.
        let t = Tuning::new(TuningStage::Chrt);
        assert_eq!(t.kernel_config(io()), KernelConfig::stock());
        assert!(t.fio_policy().is_realtime());
        assert!(t.firmware().smart_enabled());

        // Isolcpus: isolation added, IRQs still balanced.
        let t = Tuning::new(TuningStage::Isolcpus);
        let k = t.kernel_config(io());
        assert!(k.isolcpus.contains(CpuId(4)));
        assert_eq!(k.idle, IdlePolicy::Poll);
        assert_eq!(k.irq_mode, IrqMode::Balanced);
        assert!(t.fio_policy().is_realtime());

        // IrqAffinity: vectors pinned.
        let t = Tuning::new(TuningStage::IrqAffinity);
        assert_eq!(t.kernel_config(io()).irq_mode, IrqMode::Pinned);
        assert!(t.firmware().smart_enabled());

        // ExperimentalFirmware: SMART off, kernel unchanged.
        let t = Tuning::new(TuningStage::ExperimentalFirmware);
        assert_eq!(t.kernel_config(io()).irq_mode, IrqMode::Pinned);
        assert!(!t.firmware().smart_enabled());
    }

    #[test]
    fn ladder_order_matches_fig12() {
        let labels: Vec<&str> = TuningStage::KERNEL_LADDER
            .iter()
            .map(|s| s.label())
            .collect();
        assert_eq!(labels, vec!["default", "chrt", "isolcpus", "irq"]);
    }

    #[test]
    fn stage_ordering_is_monotone() {
        for w in TuningStage::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
