//! Stage 2/4 — fabric: the PCIe switch-tree legs of the I/O.
//!
//! Downstream (stage 2): the NVMe command crosses the fabric to the
//! device after the doorbell ring. Upstream (stage 4): the 4 KiB data,
//! CQE and MSI cross back once the device posts the completion — split
//! at the shard boundary into the device-owned up-leg (reserved by the
//! owning worker) and the shared leaf/uplink legs (reserved by the
//! hub, which owns them). All legs accrue to [`Cause::Fabric`] on the
//! ledger — open legs that settle into the single fabric attribution
//! the I/O ends up with; the hub returns its leg as a scalar for the
//! owner to accrue, since the ledger never leaves the owning shard.

use afa_pcie::PcieFabric;
use afa_sim::trace::Cause;
use afa_sim::{SimDuration, SimTime};

use crate::blktrace::IoStage;

use super::model::CompletionModel;
use super::IoLedger;

/// Extra completion-path latency when the fio thread's socket differs
/// from the socket owning the AFA's PCIe uplink (remote-node DMA +
/// cross-interconnect MSI).
pub(crate) const NUMA_CROSS_SOCKET: SimDuration = SimDuration::nanos(900);

/// Reserves the shared host→leaf down-legs for a command that left
/// the host at `start`; returns when it reaches the leaf egress. Runs
/// on the hub (the shared down-links are FIFO resources, so they must
/// be reserved in global submit order — the 64 B commands barely load
/// them, but the FIFO ordering phase-couples the submitting threads,
/// which is what sustains completion convoys on the upstream legs).
pub(crate) fn downstream_shared(fabric: &mut PcieFabric, device: usize, start: SimTime) -> SimTime {
    fabric.submit_command_shared_legs(device, start)
}

/// Reserves the device's private down-link from the leaf-egress
/// timestamp, accrues the whole downstream crossing and returns when
/// the command is visible to the device. Runs on the owning worker
/// (the per-device link and the ledger are its resources).
pub(crate) fn downstream_device_leg(
    fabric: &mut PcieFabric,
    device: usize,
    submit_end: SimTime,
    at_entry: SimTime,
    ledger: &mut IoLedger,
) -> SimTime {
    let at_device = fabric.submit_command_device_leg(device, at_entry);
    ledger.accrue(Cause::Fabric, at_device.saturating_since(submit_end));
    ledger.stamp(IoStage::Dispatch, at_device);
    at_device
}

/// Reserves the device-owned up-leg at the instant the device posts
/// the completion; returns when the payload reaches the leaf switch.
/// Runs on the owning worker (the per-device link is its resource).
/// The completion model decides the payload: only
/// [`CompletionModel::pays_msi`] completions carry the 4-byte MSI-X
/// message — a polled CQ is discovered by reading it.
pub(crate) fn device_leg(
    fabric: &mut PcieFabric,
    device: usize,
    now: SimTime,
    bytes: u64,
    model: CompletionModel,
    ledger: &mut IoLedger,
) -> SimTime {
    let t_leaf = if model.pays_msi() {
        fabric.deliver_completion_device_leg(device, now, bytes)
    } else {
        fabric.poll_completion_device_leg(device, now, bytes)
    };
    ledger.accrue(Cause::Fabric, t_leaf.saturating_since(now));
    t_leaf
}

/// Reserves the shared leaf + uplink legs from the leaf-arrival
/// instant; returns when the interrupt reaches the host. Runs on the
/// hub (shared links are FIFO resources, so this must run in global
/// leaf-arrival order). `cross_socket` adds the NUMA penalty for fio
/// threads living on the socket the AFA's uplink does not attach to.
/// The elapsed time is returned to the owning worker as
/// `fabric_shared` and accrued there — the ledger stays parked in the
/// owner's slab. [`CompletionModel::pays_msi`] completions end with
/// the MSI-X vector delivery (and its latency + interrupt count);
/// polled completions end when the CQE DMA write lands.
pub(crate) fn shared_legs(
    fabric: &mut PcieFabric,
    device: usize,
    t_leaf: SimTime,
    bytes: u64,
    cross_socket: bool,
    model: CompletionModel,
) -> SimTime {
    let mut at_host = if model.pays_msi() {
        fabric.deliver_completion_shared_legs(device, t_leaf, bytes)
    } else {
        fabric.poll_completion_shared_legs(device, t_leaf, bytes)
    };
    if cross_socket {
        at_host += NUMA_CROSS_SOCKET;
    }
    at_host
}
