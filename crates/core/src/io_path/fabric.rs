//! Stage 2/4 — fabric: the PCIe switch-tree legs of the I/O.
//!
//! Downstream (stage 2): the NVMe command crosses the fabric to the
//! device after the doorbell ring. Upstream (stage 4): the 4 KiB data,
//! CQE and MSI cross back once the device posts the completion. Both
//! legs accrue to [`Cause::Fabric`] on the ledger — two open legs that
//! settle into the single fabric attribution the I/O ends up with.

use afa_pcie::PcieFabric;
use afa_sim::trace::Cause;
use afa_sim::{SimDuration, SimTime};

use crate::blktrace::IoStage;

use super::IoLedger;

/// Extra completion-path latency when the fio thread's socket differs
/// from the socket owning the AFA's PCIe uplink (remote-node DMA +
/// cross-interconnect MSI).
pub(crate) const NUMA_CROSS_SOCKET: SimDuration = SimDuration::nanos(900);

/// Reserves the downstream command transfer from the doorbell ring;
/// returns when the command is visible to the device.
pub(crate) fn downstream(
    fabric: &mut PcieFabric,
    device: usize,
    submit_end: SimTime,
    ledger: &mut IoLedger,
) -> SimTime {
    let at_device = fabric.submit_command(device, submit_end);
    ledger.accrue(Cause::Fabric, at_device.saturating_since(submit_end));
    ledger.stamp(IoStage::Dispatch, at_device);
    at_device
}

/// Reserves the upstream data + completion transfer at the instant the
/// device posts it (shared links are FIFO resources, so this must run
/// in global time order); returns when the interrupt reaches the host.
/// `cross_socket` adds the NUMA penalty for fio threads living on the
/// socket the AFA's uplink does not attach to.
pub(crate) fn upstream(
    fabric: &mut PcieFabric,
    device: usize,
    now: SimTime,
    bytes: u64,
    cross_socket: bool,
    ledger: &mut IoLedger,
) -> SimTime {
    let mut at_host = fabric.deliver_completion(device, now, bytes);
    if cross_socket {
        at_host += NUMA_CROSS_SOCKET;
    }
    ledger.accrue(Cause::Fabric, at_host.saturating_since(now));
    at_host
}
