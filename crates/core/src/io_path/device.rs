//! Stage 3 — device: NVMe command service inside the SSD.
//!
//! Builds the command from the job's issued op and submits it to the
//! device's reservation model, which returns the full device-side
//! breakdown in one call (controller + flash service, queueing behind
//! earlier commands, SMART housekeeping stalls). Each slice accrues to
//! its own cause on the ledger.

use afa_sim::trace::Cause;
use afa_sim::SimTime;
use afa_ssd::{NvmeCommand, SsdDevice};
use afa_workload::Op;

use super::IoLedger;

/// Submits `op` to `device` at `at_device` (command arrival); returns
/// when the device posts the completion.
pub(crate) fn serve(
    device: &mut SsdDevice,
    at_device: SimTime,
    op: Op,
    bytes: u32,
    ledger: &mut IoLedger,
) -> SimTime {
    let cmd = if op.is_write {
        NvmeCommand::write(op.lba, bytes)
    } else {
        NvmeCommand::read(op.lba, bytes)
    };
    let info = device.submit(at_device, cmd);
    ledger.accrue(Cause::DeviceService, info.service);
    ledger.accrue(Cause::DeviceQueueing, info.queue_wait);
    ledger.accrue(Cause::Housekeeping, info.housekeeping_stall);
    info.completes_at
}
