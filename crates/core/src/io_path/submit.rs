//! Stage 1 — submit: the io_submit syscall, SQE build and doorbell
//! ring on the job's pinned CPU.
//!
//! Runs inline (the thread holds the CPU); the returned instant is the
//! doorbell ring, which is also where the I/O's measured latency clock
//! starts (`issued_at`). The syscall cost is therefore credited to the
//! ledger as *pre-issue* CPU work.

use afa_host::{CpuId, HostModel};
use afa_sim::trace::Cause;
use afa_sim::{SimDuration, SimTime};

use super::IoLedger;

/// CPU cost of the submit path (io_submit syscall + SQE build +
/// doorbell write).
pub(crate) const SUBMIT_COST: SimDuration = SimDuration::nanos(1_800);

/// Charges the submit cost on `cpu` starting at `now`; returns the
/// doorbell-ring instant.
pub(crate) fn run(
    host: &mut HostModel,
    cpu: CpuId,
    now: SimTime,
    ledger: &mut IoLedger,
) -> SimTime {
    let submit_end = host.charge_cpu(cpu, now, SUBMIT_COST);
    ledger.credit(Cause::CpuWork, SUBMIT_COST);
    ledger.note_pre_issue(SUBMIT_COST);
    submit_end
}
