//! Stage 7 — complete: the thread reaps the completion and the
//! ledger's derived views are flushed.
//!
//! Reaping runs inline on the woken (or spinning) thread. Once the
//! reap instant is known, [`IoPathWorld::finish_io`] settles the
//! ledger and derives every instrumentation view from it in one place:
//! the run-wide cause budget, the blktrace stage trace, the optional
//! ledger log, and the job's latency sample.

use afa_host::{CpuId, HostModel};
use afa_sim::trace::Cause;
use afa_sim::{SimDuration, SimTime};

use crate::blktrace::IoStage;

use super::model::CompletionModel;
use super::{CompletedIo, IoLedger, IoPathWorld, LedgerId};

/// CPU cost of the completion path (reap + io_getevents return).
pub(crate) const COMPLETE_COST: SimDuration = SimDuration::nanos(1_300);

/// Reaps a completion on a woken thread: charges `work` from
/// `run_start` and credits the executed slice.
pub(crate) fn reap(
    host: &mut HostModel,
    cpu: CpuId,
    run_start: SimTime,
    work: SimDuration,
    ledger: &mut IoLedger,
) -> SimTime {
    let done = host.charge_cpu(cpu, run_start, work);
    ledger.credit(Cause::CpuWork, done.saturating_since(run_start));
    ledger.stamp(IoStage::Reaped, done);
    done
}

/// Reaps a completion discovered by reading the CQ — no interrupt, no
/// wake. Under [`CompletionModel::Poll`] the thread spun from
/// `issued_at`; under [`CompletionModel::Hybrid`] it slept for the
/// model's timed sleep first and only then started spinning. The CPU
/// is charged for the whole spin window plus the reap (that busy time
/// is the price the model pays), but the *ledger* credits only the
/// slices past `at_host`: the causes accrued before arrival — submit,
/// fabric legs, device service — already tile `issued_at..at_host`
/// exactly, so crediting the overlapping spin would double-book the
/// window. A hybrid *oversleep* (the CQE landed mid-sleep) credits
/// the residual sleep to [`Cause::PollSleep`]: that wait is the
/// model's own latency contribution, the tail hybrid polling trades
/// for its CPU savings.
pub(crate) fn poll_reap(
    host: &mut HostModel,
    cpu: CpuId,
    model: CompletionModel,
    issued_at: SimTime,
    at_host: SimTime,
    work: SimDuration,
    ledger: &mut IoLedger,
) -> SimTime {
    let spin_from = match model {
        CompletionModel::Hybrid { sleep } => issued_at + sleep,
        _ => issued_at,
    };
    let reap_start = if spin_from > at_host {
        // Oversleep: the completion beat the timer; the thread only
        // looks at the CQ once the sleep expires. The CPU was idle
        // for the whole sleep — that is the point of the model.
        ledger.credit(Cause::PollSleep, spin_from.saturating_since(at_host));
        spin_from
    } else {
        // Spin from the CQ-watch instant until the CQE landed (plus
        // any contention stretch): pure CPU burn overlapping the
        // accrued device/fabric causes.
        host.charge_cpu(cpu, spin_from, at_host.saturating_since(spin_from))
    };
    let done = host.charge_cpu(cpu, reap_start, work);
    ledger.credit(
        Cause::CpuWork,
        done.saturating_since(at_host.max(spin_from)),
    );
    ledger.stamp(IoStage::Reaped, done);
    done
}

impl IoPathWorld {
    /// Retires one I/O: settles its parked ledger *in the slab* and
    /// derives every instrumentation view from it — cause budget,
    /// blktrace stamps, ledger log — then records the job's latency
    /// sample and recycles the slot. The only ledger copy the I/O
    /// ever pays is the optional ledger-log capture.
    pub(crate) fn finish_io(
        &mut self,
        job: usize,
        issued_at: SimTime,
        done: SimTime,
        id: LedgerId,
    ) {
        let ledger = &mut self.ledger_slab[id as usize];
        ledger.settle();
        if let Some(causes) = &mut self.causes {
            ledger.flush_causes(causes);
        }
        let lp = self.job_lp[job];
        if let Some(tracers) = &mut self.tracers {
            ledger.flush_trace(&mut tracers[lp]);
        }
        if let Some(logs) = &mut self.ledger_logs {
            logs[lp].push(CompletedIo {
                job,
                device: self.jobs[job].spec().device(),
                issued_at,
                reaped_at: done,
                ledger: self.ledger_slab[id as usize],
            });
        }
        self.ledger_free.push(id);
        self.jobs[job].complete(done.saturating_since(issued_at).as_nanos());
    }
}
