//! Stage 7 — complete: the thread reaps the completion and the
//! ledger's derived views are flushed.
//!
//! Reaping runs inline on the woken (or spinning) thread. Once the
//! reap instant is known, [`IoPathWorld::finish_io`] settles the
//! ledger and derives every instrumentation view from it in one place:
//! the run-wide cause budget, the blktrace stage trace, the optional
//! ledger log, and the job's latency sample.

use afa_host::{CpuId, HostModel};
use afa_sim::trace::Cause;
use afa_sim::{SimDuration, SimTime};

use crate::blktrace::IoStage;

use super::{CompletedIo, IoLedger, IoPathWorld, LedgerId};

/// CPU cost of the completion path (reap + io_getevents return).
pub(crate) const COMPLETE_COST: SimDuration = SimDuration::nanos(1_300);

/// Reaps a completion on a woken thread: charges `work` from
/// `run_start` and credits the executed slice.
pub(crate) fn reap(
    host: &mut HostModel,
    cpu: CpuId,
    run_start: SimTime,
    work: SimDuration,
    ledger: &mut IoLedger,
) -> SimTime {
    let done = host.charge_cpu(cpu, run_start, work);
    ledger.credit(Cause::CpuWork, done.saturating_since(run_start));
    ledger.stamp(IoStage::Reaped, done);
    done
}

/// Reaps a completion on a polling thread: the thread spun on the CQ
/// from `issued_at` to `now`, then pays the reap cost. The whole spin
/// is CPU work (it deliberately overlaps the device/fabric time — the
/// price polling pays for skipping the interrupt path).
pub(crate) fn poll_reap(
    host: &mut HostModel,
    cpu: CpuId,
    issued_at: SimTime,
    now: SimTime,
    work: SimDuration,
    ledger: &mut IoLedger,
) -> SimTime {
    let spin = now.saturating_since(issued_at);
    let spin_end = host.charge_cpu(cpu, issued_at, spin);
    let done = host.charge_cpu(cpu, spin_end, work);
    ledger.credit(Cause::CpuWork, done.saturating_since(issued_at));
    ledger.stamp(IoStage::Reaped, done);
    done
}

impl IoPathWorld {
    /// Retires one I/O: settles its parked ledger *in the slab* and
    /// derives every instrumentation view from it — cause budget,
    /// blktrace stamps, ledger log — then records the job's latency
    /// sample and recycles the slot. The only ledger copy the I/O
    /// ever pays is the optional ledger-log capture.
    pub(crate) fn finish_io(
        &mut self,
        job: usize,
        issued_at: SimTime,
        done: SimTime,
        id: LedgerId,
    ) {
        let ledger = &mut self.ledger_slab[id as usize];
        ledger.settle();
        if let Some(causes) = &mut self.causes {
            ledger.flush_causes(causes);
        }
        let lp = self.job_lp[job];
        if let Some(tracers) = &mut self.tracers {
            ledger.flush_trace(&mut tracers[lp]);
        }
        if let Some(logs) = &mut self.ledger_logs {
            logs[lp].push(CompletedIo {
                job,
                device: self.jobs[job].spec().device(),
                issued_at,
                reaped_at: done,
                ledger: self.ledger_slab[id as usize],
            });
        }
        self.ledger_free.push(id);
        self.jobs[job].complete(done.saturating_since(issued_at).as_nanos());
    }
}
