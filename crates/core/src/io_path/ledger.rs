//! The per-I/O ledger: one fixed-size account of where an I/O's time
//! went.
//!
//! Every stage of the I/O path writes its timing contribution into the
//! [`IoLedger`] it is handed — the ledger is the *only* instrumentation
//! channel. Cause attribution ([`CauseAccumulator`]) and blktrace-style
//! stage traces ([`TraceRecorder`]) are derived views flushed from a
//! settled ledger at completion time; nothing on the hot path touches
//! them directly.
//!
//! The ledger is `Copy`, heap-free and slab-allocated (see the world's
//! meta slab), so threading it through the path costs a fixed-size
//! write per stage and no allocation per I/O.

use afa_sim::trace::{Cause, CauseAccumulator};
use afa_sim::{SimDuration, SimTime};

use crate::blktrace::{IoStage, TraceRecorder};

/// Sentinel for "not inside the blktrace window".
const NO_TRACE: u32 = u32::MAX;

/// Slot of a stage in the stamps array ([`IoStage`] path order).
const fn stage_slot(stage: IoStage) -> usize {
    match stage {
        IoStage::Queue => 0,
        IoStage::Dispatch => 1,
        IoStage::DeviceComplete => 2,
        IoStage::IrqHandled => 3,
        IoStage::Reaped => 4,
    }
}

/// Per-I/O timing account: a fixed per-[`Cause`] table plus the five
/// [`IoStage`] timestamps.
///
/// Stages report contributions through two verbs:
///
/// * [`IoLedger::credit`] — a *closed* contribution: the stage knows
///   the final amount (e.g. the wake-up breakdown). Each non-zero
///   credit counts as one attribution event.
/// * [`IoLedger::accrue`] — an *open* contribution that later legs of
///   the same cause may extend (e.g. the fabric down-leg accrued at
///   submit, extended by the up-leg at device completion).
///
/// [`IoLedger::settle`] closes all open accruals (each becomes one
/// attribution event); a settled ledger flushes into the derived views.
#[derive(Clone, Copy, Debug)]
pub struct IoLedger {
    causes: [SimDuration; Cause::COUNT],
    /// Attribution-event counts per cause (how many closed
    /// contributions the cause received).
    credits: [u8; Cause::COUNT],
    stamps: [SimTime; 5],
    /// Portion of [`Cause::CpuWork`] spent before the I/O's latency
    /// clock started (the submit syscall runs before the doorbell
    /// ring that `issued_at` marks).
    pre_issue: SimDuration,
    trace_id: u32,
}

impl IoLedger {
    /// Opens a ledger for an I/O queued at `queued_at`.
    pub fn begin(queued_at: SimTime) -> Self {
        let mut stamps = [SimTime::ZERO; 5];
        stamps[stage_slot(IoStage::Queue)] = queued_at;
        IoLedger {
            causes: [SimDuration::ZERO; Cause::COUNT],
            credits: [0; Cause::COUNT],
            stamps,
            pre_issue: SimDuration::ZERO,
            trace_id: NO_TRACE,
        }
    }

    /// Links this I/O to a [`TraceRecorder`] slot (when inside the
    /// blktrace window).
    pub(crate) fn set_trace(&mut self, id: Option<usize>) {
        self.trace_id = id.map_or(NO_TRACE, |id| id as u32);
    }

    /// The linked trace slot, if any.
    pub(crate) fn trace_id(&self) -> Option<usize> {
        (self.trace_id != NO_TRACE).then_some(self.trace_id as usize)
    }

    /// Adds a closed contribution: one attribution event when
    /// non-zero.
    pub fn credit(&mut self, cause: Cause, amount: SimDuration) {
        if amount.is_zero() {
            return;
        }
        self.causes[cause.index()] += amount;
        self.credits[cause.index()] = self.credits[cause.index()].saturating_add(1);
    }

    /// Adds an open contribution that [`IoLedger::settle`] will close.
    pub fn accrue(&mut self, cause: Cause, amount: SimDuration) {
        self.causes[cause.index()] += amount;
    }

    /// Marks `amount` of the CPU work as spent before the latency
    /// clock started (see [`IoLedger::pre_issue`]).
    pub(crate) fn note_pre_issue(&mut self, amount: SimDuration) {
        self.pre_issue += amount;
    }

    /// Closes all open accruals: any cause with time but no
    /// attribution events becomes a single event.
    pub fn settle(&mut self) {
        for i in 0..Cause::COUNT {
            if self.credits[i] == 0 && !self.causes[i].is_zero() {
                self.credits[i] = 1;
            }
        }
    }

    /// Time attributed to `cause` so far.
    pub fn amount(&self, cause: Cause) -> SimDuration {
        self.causes[cause.index()]
    }

    /// Sum over all causes.
    pub fn total(&self) -> SimDuration {
        self.causes
            .iter()
            .fold(SimDuration::ZERO, |acc, &d| acc + d)
    }

    /// CPU work spent before the latency clock started (the submit
    /// syscall). `total() - pre_issue()` is the ledger's account of
    /// the measured completion latency.
    pub fn pre_issue(&self) -> SimDuration {
        self.pre_issue
    }

    /// Records a stage timestamp.
    pub fn stamp(&mut self, stage: IoStage, at: SimTime) {
        self.stamps[stage_slot(stage)] = at;
    }

    /// The recorded timestamp for `stage` (zero when not reached).
    pub fn stamp_at(&self, stage: IoStage) -> SimTime {
        self.stamps[stage_slot(stage)]
    }

    /// `(cause, total, events)` rows of the settled ledger, in cause
    /// order; causes with no contribution are skipped.
    pub fn rows(&self) -> impl Iterator<Item = (Cause, SimDuration, u64)> + '_ {
        Cause::ALL.iter().filter_map(move |&cause| {
            let i = cause.index();
            (self.credits[i] > 0 || !self.causes[i].is_zero()).then_some((
                cause,
                self.causes[i],
                u64::from(self.credits[i]),
            ))
        })
    }

    /// Folds the settled ledger into a run-wide cause budget.
    pub(crate) fn flush_causes(&self, acc: &mut CauseAccumulator) {
        for i in 0..Cause::COUNT {
            if self.credits[i] > 0 {
                acc.add(Cause::ALL[i], self.causes[i], u64::from(self.credits[i]));
            }
        }
    }

    /// Writes the recorded stage timestamps to the I/O's trace slot
    /// (no-op outside the blktrace window). The Queue stamp was
    /// recorded by [`TraceRecorder::begin`]; skipped stages (zero
    /// stamps, e.g. the IRQ stage under polling) stay unset.
    pub(crate) fn flush_trace(&self, recorder: &mut TraceRecorder) {
        let Some(id) = self.trace_id() else {
            return;
        };
        for stage in [
            IoStage::Dispatch,
            IoStage::DeviceComplete,
            IoStage::IrqHandled,
            IoStage::Reaped,
        ] {
            let at = self.stamp_at(stage);
            if at != SimTime::ZERO {
                recorder.stamp(id, stage, at);
            }
        }
    }
}

/// One completed I/O captured by a [`LedgerLog`].
#[derive(Clone, Copy, Debug)]
pub struct CompletedIo {
    /// Job (and device) index the I/O belonged to.
    pub job: usize,
    /// Device the I/O targeted.
    pub device: usize,
    /// When the latency clock started (doorbell ring).
    pub issued_at: SimTime,
    /// When the thread reaped the completion.
    pub reaped_at: SimTime,
    /// The settled per-cause account.
    pub ledger: IoLedger,
}

impl CompletedIo {
    /// The measured completion latency (`reaped_at - issued_at`),
    /// exactly what the job's histogram recorded.
    pub fn latency(&self) -> SimDuration {
        self.reaped_at.saturating_since(self.issued_at)
    }
}

/// Captures the settled ledgers of the first `capacity` completed
/// I/Os of a run (enabled via `AfaConfig::with_ledger_log`).
#[derive(Clone, Debug)]
pub struct LedgerLog {
    entries: Vec<CompletedIo>,
    capacity: usize,
}

impl LedgerLog {
    /// Creates a log that keeps at most `capacity` I/Os.
    pub(crate) fn new(capacity: usize) -> Self {
        LedgerLog {
            entries: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
        }
    }

    /// Records a completed I/O; drops it once the window is full.
    pub(crate) fn push(&mut self, entry: CompletedIo) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        }
    }

    /// The captured I/Os, in completion order.
    pub fn entries(&self) -> &[CompletedIo] {
        &self.entries
    }

    /// Stitches per-shard logs into the log a sequential run would
    /// have produced: every shard captured its own first `capacity`
    /// completions, so the union is a superset of the global window —
    /// sort by completion instant (device as a deterministic
    /// tie-break) and keep the first `capacity`.
    pub(crate) fn merged(capacity: usize, parts: Vec<LedgerLog>) -> Self {
        let mut entries: Vec<CompletedIo> = parts.into_iter().flat_map(|p| p.entries).collect();
        entries.sort_by_key(|e| (e.reaped_at, e.device));
        entries.truncate(capacity);
        LedgerLog { entries, capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_counts_only_nonzero() {
        let mut ledger = IoLedger::begin(SimTime::ZERO);
        ledger.credit(Cause::CpuWork, SimDuration::ZERO);
        ledger.credit(Cause::CpuWork, SimDuration::micros(2));
        ledger.credit(Cause::CpuWork, SimDuration::micros(3));
        let rows: Vec<_> = ledger.rows().collect();
        assert_eq!(rows, vec![(Cause::CpuWork, SimDuration::micros(5), 2)]);
    }

    #[test]
    fn settle_closes_open_accruals_once() {
        let mut ledger = IoLedger::begin(SimTime::ZERO);
        ledger.accrue(Cause::Fabric, SimDuration::micros(2));
        ledger.accrue(Cause::Fabric, SimDuration::micros(3));
        ledger.accrue(Cause::Housekeeping, SimDuration::ZERO);
        ledger.settle();
        let rows: Vec<_> = ledger.rows().collect();
        // Two accrued legs settle into ONE attribution event; the
        // zero-amount cause never materializes.
        assert_eq!(rows, vec![(Cause::Fabric, SimDuration::micros(5), 1)]);
        // settle() is idempotent.
        ledger.settle();
        assert_eq!(ledger.rows().collect::<Vec<_>>(), rows);
    }

    #[test]
    fn settle_leaves_credited_counts_alone() {
        let mut ledger = IoLedger::begin(SimTime::ZERO);
        ledger.credit(Cause::CpuWork, SimDuration::micros(1));
        ledger.credit(Cause::CpuWork, SimDuration::micros(1));
        ledger.settle();
        assert_eq!(
            ledger.rows().collect::<Vec<_>>(),
            vec![(Cause::CpuWork, SimDuration::micros(2), 2)]
        );
    }

    #[test]
    fn flush_matches_equivalent_records() {
        use afa_sim::trace::TraceSink;
        let mut ledger = IoLedger::begin(SimTime::ZERO);
        ledger.credit(Cause::CpuWork, SimDuration::nanos(1_800));
        ledger.accrue(Cause::Fabric, SimDuration::micros(1));
        ledger.accrue(Cause::Fabric, SimDuration::micros(2));
        ledger.accrue(Cause::DeviceService, SimDuration::micros(25));
        ledger.credit(Cause::CpuWork, SimDuration::nanos(1_300));
        ledger.settle();

        let mut from_ledger = CauseAccumulator::new();
        ledger.flush_causes(&mut from_ledger);

        // What the pre-ledger world recorded for the same I/O.
        let mut reference = CauseAccumulator::new();
        reference.record(SimTime::ZERO, 0, Cause::CpuWork, SimDuration::nanos(1_800));
        reference.record(SimTime::ZERO, 0, Cause::CpuWork, SimDuration::nanos(1_300));
        reference.record(SimTime::ZERO, 0, Cause::Fabric, SimDuration::micros(3));
        reference.record(
            SimTime::ZERO,
            0,
            Cause::DeviceService,
            SimDuration::micros(25),
        );
        assert_eq!(
            from_ledger.iter().collect::<Vec<_>>(),
            reference.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn stamps_round_trip_through_a_recorder() {
        let mut recorder = TraceRecorder::new(4);
        let mut ledger = IoLedger::begin(SimTime::from_nanos(100));
        ledger.set_trace(recorder.begin(3, 7, SimTime::from_nanos(100)));
        ledger.stamp(IoStage::Dispatch, SimTime::from_nanos(1_500));
        ledger.stamp(IoStage::DeviceComplete, SimTime::from_nanos(26_000));
        ledger.stamp(IoStage::Reaped, SimTime::from_nanos(33_000));
        ledger.flush_trace(&mut recorder);
        let trace = recorder.traces()[0];
        assert_eq!(trace.stamps[0], SimTime::from_nanos(100));
        assert_eq!(trace.stamps[1], SimTime::from_nanos(1_500));
        // Skipped IRQ stage stays zero (polling semantics).
        assert_eq!(trace.stamps[3], SimTime::ZERO);
        assert_eq!(trace.total().as_nanos(), 32_900);
    }

    #[test]
    fn total_and_pre_issue_account_the_latency_window() {
        let mut ledger = IoLedger::begin(SimTime::ZERO);
        ledger.credit(Cause::CpuWork, SimDuration::nanos(1_800));
        ledger.note_pre_issue(SimDuration::nanos(1_800));
        ledger.accrue(Cause::DeviceService, SimDuration::micros(25));
        ledger.credit(Cause::CpuWork, SimDuration::nanos(1_300));
        assert_eq!(
            ledger.total() - ledger.pre_issue(),
            SimDuration::micros(25) + SimDuration::nanos(1_300)
        );
    }

    #[test]
    fn ledger_log_caps_its_window() {
        let mut log = LedgerLog::new(2);
        for i in 0..5 {
            log.push(CompletedIo {
                job: i,
                device: i,
                issued_at: SimTime::ZERO,
                reaped_at: SimTime::from_nanos(30_000),
                ledger: IoLedger::begin(SimTime::ZERO),
            });
        }
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[1].job, 1);
        assert_eq!(log.entries()[0].latency(), SimDuration::micros(30));
    }
}
