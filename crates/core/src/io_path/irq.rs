//! Stage 5 — irq: MSI-X delivery, handler execution and the remote
//! IPI when the vector's effective CPU is not the submitter's.
//!
//! The handler slice and the remote-completion slice are both closed
//! amounts, so they credit the ledger directly.

use afa_host::{HostModel, IrqOutcome};
use afa_sim::trace::Cause;
use afa_sim::SimTime;

use crate::blktrace::IoStage;

use super::IoLedger;

/// Delivers the completion interrupt for `device` at `now`; returns
/// the routing outcome (handler end, wake-ready instant).
pub(crate) fn deliver(
    host: &mut HostModel,
    device: usize,
    now: SimTime,
    ledger: &mut IoLedger,
) -> IrqOutcome {
    let irq = host.deliver_irq(device, now);
    ledger.credit(Cause::IrqHandling, irq.handler_done.saturating_since(now));
    ledger.credit(
        Cause::RemoteCompletion,
        irq.wake_ready.saturating_since(irq.handler_done),
    );
    ledger.stamp(IoStage::IrqHandled, irq.handler_done);
    irq
}
