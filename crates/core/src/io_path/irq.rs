//! Stage 5 — irq: MSI-X delivery, handler execution and the remote
//! IPI when the vector's effective CPU is not the submitter's.
//!
//! Routing runs on the hub (it owns the vector table and balancer);
//! the handler executes on the worker owning the effective vector CPU
//! (`HostModel::deliver_irq_routed`); and the scalar
//! [`IrqOutcome`] travels to the I/O's owning worker, where this
//! module books it onto the parked ledger. The handler slice and the
//! remote-completion slice are both closed amounts, so they credit
//! the ledger directly.

use afa_host::IrqOutcome;
use afa_sim::trace::Cause;
use afa_sim::SimTime;

use crate::blktrace::IoStage;

use super::IoLedger;

/// Books a remotely-executed interrupt onto the I/O's ledger.
/// `at_host` is when the MSI reached the host (the handler slice runs
/// from there to `handler_done`; wake-ready beyond that is the remote
/// IPI).
pub(crate) fn apply(irq: &IrqOutcome, at_host: SimTime, ledger: &mut IoLedger) {
    ledger.credit(
        Cause::IrqHandling,
        irq.handler_done.saturating_since(at_host),
    );
    ledger.credit(
        Cause::RemoteCompletion,
        irq.wake_ready.saturating_since(irq.handler_done),
    );
    ledger.stamp(IoStage::IrqHandled, irq.handler_done);
}
