//! The completion-model dispatch point: how a finished I/O's
//! completion reaches the submitting thread.
//!
//! Every stage of the completion side used to branch on a smeared
//! `polling: bool` (or re-derive it with `matches!(IoEngine::…)`);
//! this module replaces those flags with one typed value resolved per
//! job at issue time and threaded through the path. Each stage module
//! implements against exactly one predicate:
//!
//! * [`submit`](super::submit) — [`CompletionModel::parks_thread`]:
//!   does the issue loop keep going after the doorbell, or park on
//!   the CQ?
//! * [`fabric`](super::fabric) — [`CompletionModel::pays_msi`]: does
//!   the upstream payload carry the 4-byte MSI-X message and the
//!   vector-delivery latency?
//! * [`irq`](super::irq) / [`wake`](super::wake) —
//!   [`CompletionModel::uses_irq_path`]: do these stages run at all?
//! * [`complete`](super::complete) — the reap itself dispatches on the
//!   model: woken reap, spin reap, or sleep-then-spin reap.

use afa_sim::SimDuration;
use afa_workload::IoEngine;

/// How completions are discovered and reaped. Resolved per job from
/// its [`IoEngine`] (so a jobfile can mix models per job/tenant) and
/// carried through the path by value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CompletionModel {
    /// MSI-X interrupt, handler, scheduler wake-up, reap — the
    /// paper's §III path and the default everywhere.
    Interrupt,
    /// Classic busy-poll: the thread spins on the CQ from the doorbell
    /// ring until the CQE lands. Lowest latency, one core per job.
    Poll,
    /// io_uring-style hybrid poll: sleep for `sleep` after the
    /// doorbell, then spin. Keeps most of polling's latency win for a
    /// fraction of its CPU cost; an *oversleep* (the CQE lands
    /// mid-sleep) is the latency it trades away.
    Hybrid {
        /// Timed-sleep length — a fixed fraction of the device
        /// profile's nominal read latency, resolved by the config.
        sleep: SimDuration,
    },
}

impl CompletionModel {
    /// Resolves a job's engine into its completion model.
    /// `hybrid_sleep` is the run-level sleep the config derived from
    /// the device profile's nominal latency.
    pub(crate) fn resolve(engine: IoEngine, hybrid_sleep: SimDuration) -> Self {
        match engine {
            IoEngine::Libaio | IoEngine::Sync => CompletionModel::Interrupt,
            IoEngine::Polling => CompletionModel::Poll,
            IoEngine::HybridPoll => CompletionModel::Hybrid {
                sleep: hybrid_sleep,
            },
        }
    }

    /// Submit stage: after ringing the doorbell, does the thread park
    /// on the CQ (poll/hybrid) instead of issuing the next queued op?
    pub(crate) fn parks_thread(self) -> bool {
        !matches!(self, CompletionModel::Interrupt)
    }

    /// Fabric stage: does the completion carry an MSI-X message (4
    /// bytes on every upstream leg + vector delivery at the host)? A
    /// polled CQ is discovered by reading it — no message, no
    /// interrupt accounting.
    pub(crate) fn pays_msi(self) -> bool {
        matches!(self, CompletionModel::Interrupt)
    }

    /// IRQ + wake stages: do they run at all? Exactly the interrupt
    /// model; under poll/hybrid the `IrqHandled` stamp stays zero.
    pub(crate) fn uses_irq_path(self) -> bool {
        matches!(self, CompletionModel::Interrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_resolve_to_their_models() {
        let sleep = SimDuration::micros(12);
        assert_eq!(
            CompletionModel::resolve(IoEngine::Libaio, sleep),
            CompletionModel::Interrupt
        );
        assert_eq!(
            CompletionModel::resolve(IoEngine::Sync, sleep),
            CompletionModel::Interrupt
        );
        assert_eq!(
            CompletionModel::resolve(IoEngine::Polling, sleep),
            CompletionModel::Poll
        );
        assert_eq!(
            CompletionModel::resolve(IoEngine::HybridPoll, sleep),
            CompletionModel::Hybrid { sleep }
        );
    }

    #[test]
    fn stage_predicates_partition_the_models() {
        let hybrid = CompletionModel::Hybrid {
            sleep: SimDuration::micros(5),
        };
        for model in [CompletionModel::Interrupt, CompletionModel::Poll, hybrid] {
            // A model either rides the IRQ path (and pays the MSI and
            // keeps issuing) or parks the thread on the CQ — never a
            // mix.
            assert_eq!(model.uses_irq_path(), model.pays_msi());
            assert_eq!(model.uses_irq_path(), !model.parks_thread());
        }
        assert!(CompletionModel::Interrupt.uses_irq_path());
        assert!(!CompletionModel::Poll.uses_irq_path());
        assert!(!hybrid.uses_irq_path());
    }
}
