//! The staged I/O path, partitioned into conservative-parallel shards:
//! one module per slice of an I/O's life, glued by the sharded event
//! conductor, instrumented through one [`IoLedger`].
//!
//! ```text
//!  worker shard A (owns device d, CPU c, job j)          hub shard
//!  ───────────────────────────────────────────          ──────────
//!  submit ─▶ fabric(down,local) ─▶ device ─╮
//!    ╰────────── inline ──────────╯        │ DeviceDone (local)
//!                 fabric(device up-leg) ◀──╯
//!                        │ FabricUp ──────────▶ fabric(shared legs)
//!                                               irq route / coalesce
//!  worker shard V (owns the vector CPU)  ◀───── IrqDeliver
//!  irq handler ──╮
//!                │ WakeReap ──▶ worker shard A: wake ─▶ reap ─▶ next issue
//! ```
//!
//! Matching §III of the paper: the fio thread pays the submit syscall
//! on its pinned CPU ([`submit`]), the command crosses the switch tree
//! ([`fabric`]), the SSD serves the read ([`device`]), data + CQE +
//! MSI cross back, the host routes and runs the interrupt ([`irq`]),
//! the scheduler wakes the thread ([`wake`]) and the thread reaps
//! ([`complete`]).
//!
//! # Shard topology
//!
//! The world is replicated across [`LP_COUNT`] logical processes:
//! [`WORKER_LPS`] *worker* shards plus one *hub* shard. Each worker
//! owns whole physical cores (a core and its hyper-sibling always
//! land together, so `sibling_busy` reads stay shard-local), and with
//! them every device, fio job, per-device PCIe link and per-CPU
//! scheduler state mapped to those cores by [`lp_of_cpu`]. The hub
//! owns everything shared: the upstream leaf/uplink links, the MSI-X
//! vector table and IRQ balancer, interrupt coalescing, and
//! background-daemon placement. Every replica carries a full copy of
//! the model, but a shard only ever mutates the slice it owns — the
//! harvest step in `AfaSystem::run` stitches the owned slices back
//! into one result.
//!
//! Cross-shard hops ride [`Cross`] events under per-shard lookahead
//! bounds (a fabric hop for workers, hop + MSI latency for the hub),
//! so the conservative engine in [`afa_sim::shard`] can execute
//! shards in parallel and still merge byte-identically with the
//! sequential driver.
//!
//! Every stage writes its timing contribution into the I/O's
//! [`IoLedger`], parked in the *owning worker's* slab for the I/O's
//! whole life (events carry only a [`LedgerId`]; cross events carry
//! the scalar outcomes of remote stages). Cause attribution, blktrace
//! stage records and the optional ledger log all derive from the
//! settled ledger in one place ([`IoPathWorld::finish_io`]), in
//! place, with no per-I/O copies in or out of the slab.

mod complete;
mod device;
mod fabric;
mod irq;
mod ledger;
mod model;
mod submit;
mod wake;

pub use ledger::{CompletedIo, IoLedger, LedgerLog};

use complete::COMPLETE_COST;
use model::CompletionModel;

use afa_host::{BgPlacement, CpuId, HostModel, IrqDelivery, IrqOutcome};
use afa_pcie::PcieFabric;
use afa_sim::metrics::CompletionCounters;
use afa_sim::trace::Cause;
use afa_sim::{ShardCtx, ShardWorld, SimDuration, SimTime};
use afa_ssd::SsdDevice;
use afa_workload::{JobState, Op};

use crate::blktrace::IoStage;
use crate::config::IrqCoalescing;
use crate::geometry::CpuSsdGeometry;

/// Worker shards: each owns a fixed set of whole physical cores.
pub(crate) const WORKER_LPS: usize = 8;

/// The hub shard id: owns the shared uplink, the IRQ balancer and
/// background placement.
pub(crate) const HUB_LP: usize = WORKER_LPS;

/// Total logical processes (workers + hub). Fixed regardless of
/// `AFA_THREADS` — the partition is part of the deterministic merge
/// contract, so results never depend on the thread count.
pub(crate) const LP_COUNT: usize = WORKER_LPS + 1;

/// Physical cores per socket of the paper's dual Xeon E5-2690 v2:
/// logical CPU `c` and its hyper-sibling `c + 20` share core
/// `c % 20`.
const CORES_PER_SOCKET_PAIR: usize = 20;

/// Hub-to-worker latency of a background-placement decision. Must be
/// at least the hub lookahead; 1 µs keeps bursts effectively at their
/// arrival instant while leaving the conservative horizon sound.
const BG_PLACE_LATENCY: SimDuration = SimDuration::micros(1);

/// The worker shard owning logical CPU `cpu` (never [`HUB_LP`]).
/// Hyper-siblings map to the same shard, so whole physical cores —
/// and every device/job pinned to them — stay shard-local.
pub(crate) fn lp_of_cpu(cpu: CpuId) -> usize {
    (cpu.0 as usize % CORES_PER_SOCKET_PAIR) % WORKER_LPS
}

/// Slab handle for an I/O's in-flight [`IoLedger`] (see
/// [`IoPathWorld::ledger_slab`]).
pub(crate) type LedgerId = u32;

/// Shard-local events. Kept small (32 bytes): the timing wheel copies
/// events through its buckets on every push/cascade/pop, so the cold
/// per-I/O ledger lives in an indexed slab on the world and events
/// carry only a [`LedgerId`].
#[derive(Debug)]
pub(crate) enum Local {
    /// Job's thread is running and ready to issue (worker).
    Issue { job: usize },
    /// The device posts the completion; the device-side up-leg is
    /// reserved *now* so per-device FIFOs are used in time order
    /// (worker).
    DeviceDone {
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
    },
    /// A coalescing timeout fires for the device's pending
    /// completions (hub).
    Msi { device: usize },
    /// Background workload arrival (hub).
    BgArrival,
}

/// One completion riding an interrupt batch. The ledger stays in the
/// origin worker's slab; the entry carries the hub-computed shared-leg
/// fabric time so the owner can accrue it on receipt.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CqEntry {
    issued_at: SimTime,
    ledger: LedgerId,
    /// Shared-leg time (leaf + uplink serialization, MSI, NUMA
    /// penalty) accrued to [`Cause::Fabric`] by the owning worker.
    fabric_shared: SimDuration,
}

/// The completions served by one interrupt. The common un-coalesced
/// path is a single inline entry (no allocation); only the coalescing
/// ablation builds real batches.
#[derive(Debug)]
pub(crate) enum CqBatch {
    One(CqEntry),
    Many(Vec<CqEntry>),
}

impl CqBatch {
    fn as_slice(&self) -> &[CqEntry] {
        match self {
            CqBatch::One(entry) => std::slice::from_ref(entry),
            CqBatch::Many(entries) => entries,
        }
    }

    fn first(&self) -> CqEntry {
        self.as_slice()[0]
    }
}

/// Cross-shard events. Each hop's timestamp respects the sender's
/// lookahead bound (asserted by [`ShardCtx::send`]); payloads are the
/// scalar outcomes of remotely-executed stages, never the ledger
/// itself.
#[derive(Debug)]
pub(crate) enum Cross {
    /// Worker → hub: a command left the host at `start`; the hub
    /// reserves the shared down-legs in global submit order (the FIFO
    /// ordering phase-couples the submitting threads — the coupling
    /// behind the paper's shared-fabric convoys).
    SubmitDown {
        job: usize,
        op: Op,
        ledger: LedgerId,
        start: SimTime,
    },
    /// Hub → device-owner worker: the command reached the leaf egress
    /// at `at_entry`; the owner reserves the device's down-link and
    /// starts device service.
    CommandAtDevice {
        job: usize,
        op: Op,
        ledger: LedgerId,
        issued_at: SimTime,
        at_entry: SimTime,
    },
    /// Worker → hub: the completion payload reached the leaf switch;
    /// the hub reserves the shared legs and routes the interrupt.
    FabricUp {
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
        /// The submitting CPU lives on the socket the AFA's uplink
        /// does not attach to (NUMA penalty on the shared legs).
        cross_socket: bool,
        /// How this I/O's completion is discovered; polled models
        /// carry no MSI on the shared legs and skip the IRQ path.
        model: CompletionModel,
    },
    /// Hub → vector-CPU worker: run the interrupt handler.
    IrqDeliver {
        job: usize,
        delivery: IrqDelivery,
        designated: CpuId,
        batch: CqBatch,
    },
    /// Hub → origin worker: a polled completion's data is host-side;
    /// the spinning (or sleeping) thread reaps it directly. Carries
    /// `at_host` explicitly because the event's own timestamp may be
    /// clamped up to the hub lookahead — without an MSI the shared
    /// legs can finish inside the lookahead window for tiny payloads.
    PollComplete {
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
        fabric_shared: SimDuration,
        /// When the CQE DMA write landed in host memory.
        at_host: SimTime,
        model: CompletionModel,
    },
    /// Vector worker → origin worker: the handler outcome; the owner
    /// applies the IRQ slices to the ledger, wakes the thread and
    /// reaps.
    WakeReap {
        job: usize,
        irq: IrqOutcome,
        /// When the interrupt reached the host (handler slice base).
        at_host: SimTime,
        batch: CqBatch,
    },
    /// Hub → CPU-owner worker: install a background burst.
    BgPlace { placement: BgPlacement },
    /// Worker → hub: the owning shard charged I/O work on `cpu`
    /// through `until`; keeps the hub's background-placement view of
    /// CPU business fresh (one lookahead stale, see
    /// [`HostModel::note_io_busy`]).
    CpuBusy { cpu: CpuId, until: SimTime },
}

/// One shard's replica of the whole-array world: jobs × host × fabric
/// × devices, driven by [`Local`]/[`Cross`] events through the staged
/// I/O path. Only the slices owned by the LPs in `owned` are ever
/// mutated — under a fused partition plan one replica serves several
/// LPs, and because each LP still touches a disjoint slice, fusing
/// changes no bytes.
#[derive(Clone)]
pub(crate) struct IoPathWorld {
    pub(crate) host: HostModel,
    pub(crate) fabric: PcieFabric,
    pub(crate) devices: Vec<SsdDevice>,
    pub(crate) jobs: Vec<JobState>,
    pub(crate) causes: Option<afa_sim::trace::CauseAccumulator>,
    /// Per-worker-LP blktrace windows. Capture caps apply *per LP*,
    /// so the set of recorded I/Os is a property of each LP's
    /// (plan-invariant) event stream — fusing replicas cannot change
    /// which I/Os make the window.
    pub(crate) tracers: Option<Vec<crate::blktrace::TraceRecorder>>,
    /// Per-worker-LP ledger-log windows (same invariance argument).
    pub(crate) ledger_logs: Option<Vec<LedgerLog>>,
    /// Per-worker-LP completion-model tallies (interrupt reaps, poll
    /// reaps, hybrid oversleeps). Indexed by the job's owning LP so
    /// fused replicas keep disjoint slices and the harvest can stitch
    /// each LP's tally from its owning shard exactly once.
    pub(crate) completions: Vec<CompletionCounters>,
    geometry: CpuSsdGeometry,
    horizon: SimTime,
    afa_socket: u16,
    /// Bitmask of the logical processes this replica owns (workers
    /// `0..WORKER_LPS`, hub [`HUB_LP`]); used only to assert events
    /// arrive on their owning replica.
    owned: u16,
    /// Owning worker shard of each job (by its device's pinned CPU).
    job_lp: Vec<usize>,
    /// Inverse of `jobs[j].spec().device()` (hub-side batch routing).
    job_of_device: Vec<usize>,
    /// Per-job earliest next issue instant (fio's `rate_iops` pacing).
    next_allowed: Vec<SimTime>,
    coalescing: Option<IrqCoalescing>,
    /// Timed-sleep length for [`CompletionModel::Hybrid`] jobs,
    /// derived by the config from the device profile's nominal read
    /// latency.
    hybrid_sleep: SimDuration,
    /// The device class models per-CPU NVMe SQ/CQ pairs (the ULL
    /// profile): submissions reserve the hub down-FIFOs in
    /// payload-ready order instead of doorbell (wake) order.
    per_cpu_queues: bool,
    /// Per-device completions awaiting a coalesced MSI (hub only).
    pending_cq: Vec<Vec<CqEntry>>,
    /// In-flight [`IoLedger`]s, indexed by [`LedgerId`]; slots recycle
    /// through `ledger_free` and every stage writes the parked entry
    /// in place, so the per-I/O path neither allocates nor copies the
    /// ledger.
    ledger_slab: Vec<IoLedger>,
    ledger_free: Vec<LedgerId>,
}

/// The scheduling context every handler receives.
type Ctx<'a> = ShardCtx<'a, Local, Cross>;

impl IoPathWorld {
    /// Assembles a world from its parts (see `AfaSystem::run` for the
    /// construction of each). The caller clones the assembled world
    /// into one replica per shard and brands each with
    /// [`IoPathWorld::set_lps`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        host: HostModel,
        fabric: PcieFabric,
        devices: Vec<SsdDevice>,
        jobs: Vec<JobState>,
        geometry: CpuSsdGeometry,
        horizon: SimTime,
        afa_socket: u16,
        causes: Option<afa_sim::trace::CauseAccumulator>,
        tracer: Option<crate::blktrace::TraceRecorder>,
        ledger_log: Option<LedgerLog>,
        coalescing: Option<IrqCoalescing>,
        hybrid_sleep: SimDuration,
        per_cpu_queues: bool,
    ) -> Self {
        let n = devices.len();
        let job_lp: Vec<usize> = jobs
            .iter()
            .map(|j| lp_of_cpu(geometry.cpu_of_ssd(j.spec().device())))
            .collect();
        let mut job_of_device = vec![usize::MAX; n];
        for (j, job) in jobs.iter().enumerate() {
            job_of_device[job.spec().device()] = j;
        }
        let jobs_len = jobs.len();
        IoPathWorld {
            host,
            fabric,
            devices,
            jobs,
            geometry,
            horizon,
            afa_socket,
            causes,
            tracers: tracer.map(|t| vec![t; WORKER_LPS]),
            ledger_logs: ledger_log.map(|l| vec![l; WORKER_LPS]),
            completions: vec![CompletionCounters::default(); WORKER_LPS],
            owned: 0,
            job_lp,
            job_of_device,
            next_allowed: vec![SimTime::ZERO; jobs_len],
            coalescing,
            hybrid_sleep,
            per_cpu_queues,
            pending_cq: vec![Vec::new(); n],
            ledger_slab: Vec::with_capacity(2 * n),
            ledger_free: Vec::with_capacity(2 * n),
        }
    }

    /// Brands this replica with the set of logical processes it owns
    /// under the run's partition plan.
    pub(crate) fn set_lps(&mut self, owned: u16) {
        self.owned = owned;
    }

    /// True when this replica owns `lp`'s slice.
    fn owns(&self, lp: usize) -> bool {
        self.owned >> lp & 1 == 1
    }

    /// Worker lookahead: the minimum delay any worker send adds — a
    /// fabric hop for `FabricUp`, interrupt entry + handler floor for
    /// `WakeReap`.
    pub(crate) fn worker_lookahead(&self) -> SimDuration {
        let costs = self.host.costs();
        self.fabric
            .hop_latency()
            .min(costs.irq_entry + costs.irq_handler)
    }

    /// Hub lookahead: every hub send crosses the shared legs (≥ one
    /// hop) and an MSI write.
    pub(crate) fn hub_lookahead(&self) -> SimDuration {
        self.fabric.hop_latency() + self.fabric.msi_latency()
    }

    /// The completion model governing `job`'s I/Os — the one typed
    /// dispatch point every stage branches through.
    fn model_of(&self, job: usize) -> CompletionModel {
        CompletionModel::resolve(self.jobs[job].spec().engine(), self.hybrid_sleep)
    }

    /// Parks a fresh ledger in the slab, reusing a settled slot when
    /// one is free. The slot is written exactly once here; every
    /// stage mutates it in place through the slab.
    fn alloc_ledger(&mut self, queued_at: SimTime) -> LedgerId {
        match self.ledger_free.pop() {
            Some(id) => {
                self.ledger_slab[id as usize] = IoLedger::begin(queued_at);
                id
            }
            None => {
                self.ledger_slab.push(IoLedger::begin(queued_at));
                (self.ledger_slab.len() - 1) as LedgerId
            }
        }
    }

    /// Issues as many operations as the queue depth allows, starting
    /// with the thread running on its CPU at `now`. Each issue runs
    /// stages 1–3 inline and schedules the [`Local::DeviceDone`] that
    /// resumes the path. Runs only on the job's owning worker.
    fn issue_burst(&mut self, job: usize, mut now: SimTime, ctx: &mut Ctx<'_>) {
        debug_assert!(self.owns(self.job_lp[job]), "issue on a foreign shard");
        let cpu = self.geometry.cpu_of_ssd(self.jobs[job].spec().device());
        let issue_gap = self.jobs[job].spec().min_issue_gap();
        let mut busy_until = None;
        while self.jobs[job].can_issue(now) {
            // fio's rate_iops pacing: defer the issue if the job is
            // ahead of its rate budget.
            if now < self.next_allowed[job] {
                ctx.at(self.next_allowed[job], Local::Issue { job });
                break;
            }
            if !issue_gap.is_zero() {
                self.next_allowed[job] = now + issue_gap;
            }
            let device = self.jobs[job].spec().device();
            let op = self.jobs[job].issue(now);
            let id = self.alloc_ledger(now);
            let ledger = &mut self.ledger_slab[id as usize];
            let submit_end = submit::run(&mut self.host, cpu, now, ledger);
            busy_until = Some(submit_end);
            if let Some(tracers) = &mut self.tracers {
                let lp = self.job_lp[job];
                ledger.set_trace(tracers[lp].begin(device, op.lba, now));
            }
            // The doorbell slot on the shared down-legs is claimed
            // the moment the thread is *woken* (the driver's
            // submission pipeline commits its arbitration slot at CQ
            // time), while the SQE payload is only ready at
            // `submit_end`. The hub therefore reserves the hub-owned
            // down-FIFOs in wake order with payload-ready start
            // times: a thread delayed between wake and submit (CFS
            // queueing behind a daemon, C-state exit, tick preempts)
            // holds its committed slot back, and every later-claimed
            // slot queues behind it. That inversion push is the
            // µs-scale phase coupling behind the paper's
            // shared-fabric convoys — and it is fed by exactly the
            // delays chrt/isolcpus remove.
            //
            // Per-CPU NVMe SQ/CQ pairs (the ULL device class) have no
            // shared arbitration slot to commit early: each thread
            // rings a private doorbell, so the down-FIFOs are
            // reserved in payload-ready order and the wake-order
            // convoy coupling disappears. `submit_end >= now` keeps
            // the lookahead bound sound.
            let t_send = if self.per_cpu_queues {
                submit_end + self.worker_lookahead()
            } else {
                ctx.now() + self.worker_lookahead()
            };
            ctx.send(
                HUB_LP,
                t_send,
                Cross::SubmitDown {
                    job,
                    op,
                    ledger: id,
                    start: submit_end,
                },
            );
            if self.model_of(job).parks_thread() {
                // The thread parks on the CQ (spinning, or sleeping
                // then spinning) until the completion chain reaps it;
                // stop issuing here.
                break;
            }
            now = submit_end;
        }
        // Tell the hub how long this burst keeps the CPU busy, so
        // background placement stops seeing it as idle (§IV-C: a CPU
        // whose I/O task *sleeps* must look idle — one that is still
        // submitting must not).
        if let Some(until) = busy_until {
            let at = ctx.now() + self.worker_lookahead();
            ctx.send(HUB_LP, at, Cross::CpuBusy { cpu, until });
        }
    }

    /// The device posted a completion: reserve the device-side up-leg
    /// locally and hand the payload to the hub at the instant it
    /// reaches the leaf switch (one fabric hop of lookahead).
    fn on_device_done(&mut self, job: usize, issued_at: SimTime, id: LedgerId, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let bytes = self.jobs[job].spec().block_size() as u64;
        let cross_socket = self.host.topology().socket_of(cpu) != self.afa_socket;
        let model = self.model_of(job);
        let ledger = &mut self.ledger_slab[id as usize];
        ledger.stamp(IoStage::DeviceComplete, now);
        let t_leaf = fabric::device_leg(&mut self.fabric, device, now, bytes, model, ledger);
        ctx.send(
            HUB_LP,
            t_leaf,
            Cross::FabricUp {
                job,
                issued_at,
                ledger: id,
                cross_socket,
                model,
            },
        );
    }

    /// Hub: the payload reached the leaf switch. Reserve the shared
    /// legs in arrival order (they are FIFO resources — this is why
    /// the hub owns them), then route the interrupt — immediately, or
    /// held by the MSI coalescer.
    fn on_fabric_up(
        &mut self,
        job: usize,
        issued_at: SimTime,
        id: LedgerId,
        cross_socket: bool,
        model: CompletionModel,
        ctx: &mut Ctx<'_>,
    ) {
        let t_leaf = ctx.now();
        let device = self.jobs[job].spec().device();

        let bytes = self.jobs[job].spec().block_size() as u64;
        let at_host =
            fabric::shared_legs(&mut self.fabric, device, t_leaf, bytes, cross_socket, model);
        let fabric_shared = at_host.saturating_since(t_leaf);
        if model.parks_thread() {
            // Without the MSI's trailing latency a tiny payload can
            // clear the shared legs inside the hub lookahead; the
            // event timestamp is clamped but the reap works off the
            // carried `at_host`.
            let at = at_host.max(ctx.now() + self.hub_lookahead());
            ctx.send(
                self.job_lp[job],
                at,
                Cross::PollComplete {
                    job,
                    issued_at,
                    ledger: id,
                    fabric_shared,
                    at_host,
                    model,
                },
            );
            return;
        }
        let entry = CqEntry {
            issued_at,
            ledger: id,
            fabric_shared,
        };
        match self.coalescing {
            None => self.fire_irq(job, device, at_host, CqBatch::One(entry), ctx),
            Some(c) => {
                // Hold the CQE; the MSI fires on batch-full or timeout
                // from the first pending completion.
                self.pending_cq[device].push(entry);
                let len = self.pending_cq[device].len();
                if len as u32 >= c.max_batch {
                    let batch = std::mem::take(&mut self.pending_cq[device]);
                    self.fire_irq(job, device, at_host, CqBatch::Many(batch), ctx);
                } else if len == 1 {
                    ctx.at(at_host + c.timeout, Local::Msi { device });
                }
            }
        }
    }

    /// Hub: routes one interrupt through the vector table and hands
    /// the batch to the worker owning the effective vector CPU.
    fn fire_irq(
        &mut self,
        job: usize,
        device: usize,
        at: SimTime,
        batch: CqBatch,
        ctx: &mut Ctx<'_>,
    ) {
        let (delivery, designated) = self.host.route_irq(device, at);
        ctx.send(
            lp_of_cpu(delivery.vector_cpu),
            at,
            Cross::IrqDeliver {
                job,
                delivery,
                designated,
                batch,
            },
        );
    }

    /// Hub: a coalescing timeout fired. Stale timers (the batch
    /// already fired full) find the queue empty and do nothing. The
    /// interrupt itself lands one hub-lookahead later — the MSI still
    /// has to cross the fabric to the host.
    fn on_msi(&mut self, device: usize, ctx: &mut Ctx<'_>) {
        if self.pending_cq[device].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending_cq[device]);
        let job = self.job_of_device[device];
        let at = ctx.now() + self.hub_lookahead();
        self.fire_irq(job, device, at, CqBatch::Many(batch), ctx);
    }

    /// Vector-CPU worker: execute the handler on the effective vector
    /// CPU (this shard owns its state) and hand the outcome to the
    /// origin worker at the wake-ready instant (≥ interrupt entry +
    /// handler floor of lookahead).
    fn on_irq_deliver(
        &mut self,
        job: usize,
        delivery: IrqDelivery,
        designated: CpuId,
        batch: CqBatch,
        ctx: &mut Ctx<'_>,
    ) {
        let at_host = ctx.now();
        let irq = self.host.deliver_irq_routed(delivery, designated, at_host);
        ctx.send(
            self.job_lp[job],
            irq.wake_ready,
            Cross::WakeReap {
                job,
                irq,
                at_host,
                batch,
            },
        );
    }

    /// Origin worker: the handler ran remotely; apply its slices to
    /// the parked ledgers, wake the fio thread and reap the batch.
    /// The shared IRQ + wake slices credit the first entry's ledger
    /// (that I/O is the one whose critical path they sit on); each
    /// entry then pays its own reap slice.
    fn on_wake_reap(
        &mut self,
        job: usize,
        irq: IrqOutcome,
        at_host: SimTime,
        batch: CqBatch,
        ctx: &mut Ctx<'_>,
    ) {
        debug_assert!(
            self.model_of(job).uses_irq_path(),
            "interrupt batch for a polled job"
        );
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let policy = self.jobs[job].spec().policy();
        let work = COMPLETE_COST + self.jobs[job].spec().logging_cpu_overhead();
        self.completions[self.job_lp[job]].interrupts += batch.as_slice().len() as u64;
        let first = batch.first();
        let run_start = {
            let led = &mut self.ledger_slab[first.ledger as usize];
            led.accrue(Cause::Fabric, first.fabric_shared);
            irq::apply(&irq, at_host, led);
            wake::run(&mut self.host, cpu, irq.wake_ready, policy, led)
        };
        let mut t = run_start;
        for (i, entry) in batch.as_slice().iter().enumerate() {
            {
                let led = &mut self.ledger_slab[entry.ledger as usize];
                if i > 0 {
                    // Later batch entries share the first I/O's
                    // handler instant (one MSI served them all).
                    led.accrue(Cause::Fabric, entry.fabric_shared);
                    led.stamp(IoStage::IrqHandled, irq.handler_done);
                }
                t = complete::reap(&mut self.host, cpu, t, work, led);
            }
            self.finish_io(job, entry.issued_at, t, entry.ledger);
        }
        self.issue_burst(job, t, ctx);
    }

    /// Origin worker: a polled completion's data is host-side; the
    /// parked thread (spinning, or sleeping then spinning) reaps it
    /// directly and keeps going.
    #[allow(clippy::too_many_arguments)]
    fn on_poll_complete(
        &mut self,
        job: usize,
        issued_at: SimTime,
        id: LedgerId,
        fabric_shared: SimDuration,
        at_host: SimTime,
        model: CompletionModel,
        ctx: &mut Ctx<'_>,
    ) {
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let work = COMPLETE_COST + self.jobs[job].spec().logging_cpu_overhead();
        let done = {
            let led = &mut self.ledger_slab[id as usize];
            led.accrue(Cause::Fabric, fabric_shared);
            complete::poll_reap(&mut self.host, cpu, model, issued_at, at_host, work, led)
        };
        let tally = &mut self.completions[self.job_lp[job]];
        tally.polls += 1;
        if let CompletionModel::Hybrid { sleep } = model {
            if issued_at + sleep > at_host {
                tally.hybrid_sleeps += 1;
            }
        }
        self.finish_io(job, issued_at, done, id);
        self.issue_burst(job, done, ctx);
    }
}

impl ShardWorld for IoPathWorld {
    type Local = Local;
    type Cross = Cross;

    fn handle_local(&mut self, event: Local, ctx: &mut Ctx<'_>) {
        match event {
            Local::Issue { job } => {
                let now = ctx.now();
                self.issue_burst(job, now, ctx);
            }
            Local::DeviceDone {
                job,
                issued_at,
                ledger,
            } => {
                self.on_device_done(job, issued_at, ledger, ctx);
            }
            Local::Msi { device } => {
                self.on_msi(device, ctx);
            }
            Local::BgArrival => {
                let now = ctx.now();
                let start = now + BG_PLACE_LATENCY;
                if let Some(placement) = self.host.decide_background_remote(start) {
                    // Mirror the install on the hub-owned placement
                    // view so the next decision's idle test sees this
                    // burst; the CPU's owner performs the
                    // authoritative install at the same instant.
                    self.host.mirror_background(&placement, start);
                    ctx.send(
                        lp_of_cpu(placement.cpu),
                        start,
                        Cross::BgPlace { placement },
                    );
                }
                let next = self.host.next_background_arrival(now);
                if next < self.horizon {
                    ctx.at(next, Local::BgArrival);
                }
            }
        }
    }

    fn handle_cross(&mut self, _src: usize, event: Cross, ctx: &mut Ctx<'_>) {
        match event {
            Cross::SubmitDown {
                job,
                op,
                ledger,
                start,
            } => {
                let device = self.jobs[job].spec().device();
                let at_entry = fabric::downstream_shared(&mut self.fabric, device, start);
                let at = at_entry.max(ctx.now() + self.hub_lookahead());
                ctx.send(
                    self.job_lp[job],
                    at,
                    Cross::CommandAtDevice {
                        job,
                        op,
                        ledger,
                        issued_at: start,
                        at_entry,
                    },
                );
            }
            Cross::CommandAtDevice {
                job,
                op,
                ledger,
                issued_at,
                at_entry,
            } => {
                debug_assert!(self.owns(self.job_lp[job]), "device leg on a foreign shard");
                let device = self.jobs[job].spec().device();
                let bytes = self.jobs[job].spec().block_size();
                let led = &mut self.ledger_slab[ledger as usize];
                let at_device = fabric::downstream_device_leg(
                    &mut self.fabric,
                    device,
                    issued_at,
                    at_entry,
                    led,
                );
                let completes_at =
                    device::serve(&mut self.devices[device], at_device, op, bytes, led);
                ctx.at(
                    completes_at,
                    Local::DeviceDone {
                        job,
                        issued_at,
                        ledger,
                    },
                );
            }
            Cross::FabricUp {
                job,
                issued_at,
                ledger,
                cross_socket,
                model,
            } => {
                self.on_fabric_up(job, issued_at, ledger, cross_socket, model, ctx);
            }
            Cross::IrqDeliver {
                job,
                delivery,
                designated,
                batch,
            } => {
                self.on_irq_deliver(job, delivery, designated, batch, ctx);
            }
            Cross::PollComplete {
                job,
                issued_at,
                ledger,
                fabric_shared,
                at_host,
                model,
            } => {
                self.on_poll_complete(job, issued_at, ledger, fabric_shared, at_host, model, ctx);
            }
            Cross::WakeReap {
                job,
                irq,
                at_host,
                batch,
            } => {
                self.on_wake_reap(job, irq, at_host, batch, ctx);
            }
            Cross::BgPlace { placement } => {
                let now = ctx.now();
                self.host.install_background(placement, now);
            }
            Cross::CpuBusy { cpu, until } => {
                self.host.note_io_busy(cpu, until);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_events_stay_small() {
        // The wheel copies events through its buckets; the cold
        // IoLedger payload must stay in the slab, not the event.
        assert!(
            std::mem::size_of::<Local>() <= 32,
            "Local grew to {} bytes",
            std::mem::size_of::<Local>()
        );
    }

    #[test]
    fn cross_events_stay_bounded() {
        // Cross events ride BTreeMap nodes and mailboxes, not the
        // wheel, so the budget is looser — but a regression to a
        // by-value ledger (~250 bytes) must still fail loudly.
        assert!(
            std::mem::size_of::<Cross>() <= 112,
            "Cross grew to {} bytes",
            std::mem::size_of::<Cross>()
        );
    }

    #[test]
    fn cpu_to_shard_map_keeps_cores_whole() {
        // Hyper-siblings (c, c+20) must land on the same worker so
        // sibling_busy reads stay shard-local, and no CPU may map to
        // the hub.
        for c in 0..40u16 {
            let lp = lp_of_cpu(CpuId(c));
            assert!(lp < WORKER_LPS, "cpu {c} mapped to the hub");
            assert_eq!(lp, lp_of_cpu(CpuId((c + 20) % 40)), "siblings split");
        }
        // All workers get work under the paper geometry.
        let owners: std::collections::BTreeSet<usize> =
            (0..40u16).map(|c| lp_of_cpu(CpuId(c))).collect();
        assert_eq!(owners.len(), WORKER_LPS);
    }
}
