//! The staged I/O path, partitioned into conservative-parallel shards:
//! one module per slice of an I/O's life, glued by the sharded event
//! conductor, instrumented through one [`IoLedger`].
//!
//! ```text
//!  worker shard A (owns device d, CPU c, job j)          hub shard
//!  ───────────────────────────────────────────          ──────────
//!  submit ─▶ fabric(down,local) ─▶ device ─╮
//!    ╰────────── inline ──────────╯        │ DeviceDone (local)
//!                 fabric(device up-leg) ◀──╯
//!                        │ FabricUp ──────────▶ fabric(shared legs)
//!                                               irq route / coalesce
//!  worker shard V (owns the vector CPU)  ◀───── IrqDeliver
//!  irq handler ──╮
//!                │ WakeReap ──▶ worker shard A: wake ─▶ reap ─▶ next issue
//! ```
//!
//! Matching §III of the paper: the fio thread pays the submit syscall
//! on its pinned CPU ([`submit`]), the command crosses the switch tree
//! ([`fabric`]), the SSD serves the read ([`device`]), data + CQE +
//! MSI cross back, the host routes and runs the interrupt ([`irq`]),
//! the scheduler wakes the thread ([`wake`]) and the thread reaps
//! ([`complete`]).
//!
//! # Shard topology
//!
//! The world is replicated across [`LP_COUNT`] logical processes:
//! [`WORKER_LPS`] *worker* shards plus one *hub* shard. Each worker
//! owns whole physical cores (a core and its hyper-sibling always
//! land together, so `sibling_busy` reads stay shard-local), and with
//! them every device, fio job, per-device PCIe link and per-CPU
//! scheduler state mapped to those cores by [`lp_of_cpu`]. The hub
//! owns everything shared: the upstream leaf/uplink links, the MSI-X
//! vector table and IRQ balancer, interrupt coalescing, and
//! background-daemon placement. Every replica carries a full copy of
//! the model, but a shard only ever mutates the slice it owns — the
//! harvest step in `AfaSystem::run` stitches the owned slices back
//! into one result.
//!
//! Cross-shard hops ride [`Cross`] events under per-shard lookahead
//! bounds (a fabric hop for workers, hop + MSI latency for the hub),
//! so the conservative engine in [`afa_sim::shard`] can execute
//! shards in parallel and still merge byte-identically with the
//! sequential driver.
//!
//! Every stage writes its timing contribution into the I/O's
//! [`IoLedger`], parked in the *owning worker's* slab for the I/O's
//! whole life (events carry only a [`LedgerId`]; cross events carry
//! the scalar outcomes of remote stages). Cause attribution, blktrace
//! stage records and the optional ledger log all derive from the
//! settled ledger in one place ([`IoPathWorld::finish_io`]), in
//! place, with no per-I/O copies in or out of the slab.

mod complete;
mod device;
mod fabric;
mod irq;
mod ledger;
mod model;
mod submit;
mod wake;

pub use ledger::{CompletedIo, IoLedger, LedgerLog};

use complete::COMPLETE_COST;
use model::CompletionModel;

use afa_host::{BgPlacement, CpuId, HostModel, IrqDelivery, IrqOutcome};
use afa_pcie::{PcieFabric, SharedLegReservation};
use afa_sim::metrics::CompletionCounters;
use afa_sim::trace::Cause;
use afa_sim::{ShardCtx, ShardWorld, SimDuration, SimTime};
use afa_ssd::SsdDevice;
use afa_workload::{JobState, Op};

use crate::blktrace::IoStage;
use crate::config::IrqCoalescing;
use crate::geometry::CpuSsdGeometry;

/// Worker shards: each owns a fixed set of whole physical cores.
pub(crate) const WORKER_LPS: usize = 8;

/// The hub shard id: owns the shared uplink, the IRQ balancer and
/// background placement.
pub(crate) const HUB_LP: usize = WORKER_LPS;

/// Total logical processes (workers + hub). Fixed regardless of
/// `AFA_THREADS` — the partition is part of the deterministic merge
/// contract, so results never depend on the thread count.
pub(crate) const LP_COUNT: usize = WORKER_LPS + 1;

/// Physical cores per socket of the paper's dual Xeon E5-2690 v2:
/// logical CPU `c` and its hyper-sibling `c + 20` share core
/// `c % 20`.
const CORES_PER_SOCKET_PAIR: usize = 20;

/// Hub-to-worker latency of a background-placement decision. Must be
/// at least the hub lookahead; 1 µs keeps bursts effectively at their
/// arrival instant while leaving the conservative horizon sound.
const BG_PLACE_LATENCY: SimDuration = SimDuration::micros(1);

/// Safety margin the fusion fast path keeps between a predicted
/// settlement and the balancer's next reshuffle: any interrupt routed
/// before the settlement carries a timestamp at most a shared-leg
/// transit past its event time, so requiring
/// `wake_ready + REBALANCE_GUARD < next_rebalance` guarantees no route
/// processed while the chain is pending can fire the balancer's RNG
/// (which a frozen preview could not have seen).
const REBALANCE_GUARD: SimDuration = SimDuration::millis(1);

/// The worker shard owning logical CPU `cpu` (never [`HUB_LP`]).
/// Hyper-siblings map to the same shard, so whole physical cores —
/// and every device/job pinned to them — stay shard-local.
pub(crate) fn lp_of_cpu(cpu: CpuId) -> usize {
    (cpu.0 as usize % CORES_PER_SOCKET_PAIR) % WORKER_LPS
}

/// Slab handle for an I/O's in-flight [`IoLedger`] (see
/// [`IoPathWorld::ledger_slab`]).
pub(crate) type LedgerId = u32;

/// Shard-local events. Kept small (32 bytes): the timing wheel copies
/// events through its buckets on every push/cascade/pop, so the cold
/// per-I/O ledger lives in an indexed slab on the world and events
/// carry only a [`LedgerId`].
#[derive(Debug)]
pub(crate) enum Local {
    /// Job's thread is running and ready to issue (worker).
    Issue { job: usize },
    /// The device posts the completion; the device-side up-leg is
    /// reserved *now* so per-device FIFOs are used in time order
    /// (worker).
    DeviceDone {
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
    },
    /// A coalescing timeout fires for the device's pending
    /// completions (hub).
    Msi { device: usize },
    /// Background workload arrival (hub).
    BgArrival,
    /// Settle a fused macro-event: replay the job's precomputed
    /// completion — commit, deliver, wake, reap, next issue — in one
    /// shot (worker; see [`IoPathWorld::fuse_submit`]).
    Settle { job: usize },
}

/// One completion riding an interrupt batch. The ledger stays in the
/// origin worker's slab; the entry carries the hub-computed shared-leg
/// fabric time so the owner can accrue it on receipt.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CqEntry {
    issued_at: SimTime,
    ledger: LedgerId,
    /// Shared-leg time (leaf + uplink serialization, MSI, NUMA
    /// penalty) accrued to [`Cause::Fabric`] by the owning worker.
    fabric_shared: SimDuration,
}

/// The completions served by one interrupt. The common un-coalesced
/// path is a single inline entry (no allocation); only the coalescing
/// ablation builds real batches.
#[derive(Debug)]
pub(crate) enum CqBatch {
    One(CqEntry),
    Many(Vec<CqEntry>),
}

impl CqBatch {
    fn as_slice(&self) -> &[CqEntry] {
        match self {
            CqBatch::One(entry) => std::slice::from_ref(entry),
            CqBatch::Many(entries) => entries,
        }
    }

    fn first(&self) -> CqEntry {
        self.as_slice()[0]
    }
}

/// Cross-shard events. Each hop's timestamp respects the sender's
/// lookahead bound (asserted by [`ShardCtx::send`]); payloads are the
/// scalar outcomes of remotely-executed stages, never the ledger
/// itself.
#[derive(Debug)]
pub(crate) enum Cross {
    /// Worker → hub: a command left the host at `start`; the hub
    /// reserves the shared down-legs in global submit order (the FIFO
    /// ordering phase-couples the submitting threads — the coupling
    /// behind the paper's shared-fabric convoys).
    SubmitDown {
        job: usize,
        op: Op,
        ledger: LedgerId,
        start: SimTime,
    },
    /// Hub → device-owner worker: the command reached the leaf egress
    /// at `at_entry`; the owner reserves the device's down-link and
    /// starts device service.
    CommandAtDevice {
        job: usize,
        op: Op,
        ledger: LedgerId,
        issued_at: SimTime,
        at_entry: SimTime,
    },
    /// Worker → hub: the completion payload reached the leaf switch;
    /// the hub reserves the shared legs and routes the interrupt.
    FabricUp {
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
        /// The submitting CPU lives on the socket the AFA's uplink
        /// does not attach to (NUMA penalty on the shared legs).
        cross_socket: bool,
        /// How this I/O's completion is discovered; polled models
        /// carry no MSI on the shared legs and skip the IRQ path.
        model: CompletionModel,
    },
    /// Hub → vector-CPU worker: run the interrupt handler.
    IrqDeliver {
        job: usize,
        delivery: IrqDelivery,
        designated: CpuId,
        batch: CqBatch,
    },
    /// Hub → origin worker: a polled completion's data is host-side;
    /// the spinning (or sleeping) thread reaps it directly. Carries
    /// `at_host` explicitly because the event's own timestamp may be
    /// clamped up to the hub lookahead — without an MSI the shared
    /// legs can finish inside the lookahead window for tiny payloads.
    PollComplete {
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
        fabric_shared: SimDuration,
        /// When the CQE DMA write landed in host memory.
        at_host: SimTime,
        model: CompletionModel,
    },
    /// Vector worker → origin worker: the handler outcome; the owner
    /// applies the IRQ slices to the ledger, wakes the thread and
    /// reaps.
    WakeReap {
        job: usize,
        irq: IrqOutcome,
        /// When the interrupt reached the host (handler slice base).
        at_host: SimTime,
        batch: CqBatch,
    },
    /// Hub → CPU-owner worker: install a background burst.
    BgPlace { placement: BgPlacement },
    /// Worker → hub: the owning shard charged I/O work on `cpu`
    /// through `until`; keeps the hub's background-placement view of
    /// CPU business fresh (one lookahead stale, see
    /// [`HostModel::note_io_busy`]).
    CpuBusy { cpu: CpuId, until: SimTime },
}

/// The frozen interrupt leg of a fused chain: the routing and handler
/// outcome previewed at fuse time, re-validated (debug builds) when
/// the settlement replays them for real.
#[derive(Clone, Debug)]
struct FusedIrq {
    delivery: IrqDelivery,
    designated: CpuId,
    /// Predicted handler outcome; `outcome.wake_ready` is the chain's
    /// settlement instant.
    outcome: IrqOutcome,
    /// The handler's state mutations already ran: hook A executes the
    /// deferred delivery just before installing a background burst on
    /// the vector core, preserving the real deliver-then-install
    /// order. The settlement then uses `outcome` verbatim.
    delivered: bool,
}

/// One speculative macro-event: an I/O whose entire
/// submit→fabric→device→(irq|poll)→wake→complete timeline was
/// precomputed at submit time because every resource it touches is
/// provably uncontended over its horizon. The private device-side
/// legs already ran eagerly; the shared-leg reservation and the
/// interrupt preview are frozen here until the single `Local::Settle`
/// event replays the completion side — or contention de-fuses the
/// chain back into per-stage events at the point of divergence.
#[derive(Clone, Debug)]
struct FusedChain {
    /// When the completion settles (predicted `wake_ready`, or the
    /// poll event instant). Re-previews move it; the stale `Settle`
    /// event is skipped by an instant-match guard.
    settle_at: SimTime,
    device: usize,
    issued_at: SimTime,
    ledger: LedgerId,
    /// When the completion payload reaches the leaf switch — the
    /// instant the chain's real `FabricUp` would fire, and the replay
    /// point for every de-fuse.
    t_leaf: SimTime,
    /// When the CQE (and MSI, for interrupt chains) lands host-side.
    at_host: SimTime,
    fabric_shared: SimDuration,
    model: CompletionModel,
    cross_socket: bool,
    /// The previewed shared-leg busy windows; committed lazily — by
    /// hook B the moment a later arrival must queue behind them, or at
    /// settlement, whichever comes first.
    reservation: SharedLegReservation,
    committed: bool,
    /// `Some` for interrupt chains, `None` for polled ones.
    irq: Option<FusedIrq>,
}

/// Per-replica fusion counters, harvested into
/// [`afa_sim::metrics::FusionCounters`] by the run driver.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FusionTally {
    /// Chains fully fused into one settlement macro-event.
    pub(crate) fused: u64,
    /// Fused chains torn back into per-stage events by contention.
    pub(crate) defused: u64,
    /// Per-stage events the settled macro-events replaced (4 per
    /// interrupt chain, 3 per polled chain).
    pub(crate) elided: u64,
}

/// One shard's replica of the whole-array world: jobs × host × fabric
/// × devices, driven by [`Local`]/[`Cross`] events through the staged
/// I/O path. Only the slices owned by the LPs in `owned` are ever
/// mutated — under a fused partition plan one replica serves several
/// LPs, and because each LP still touches a disjoint slice, fusing
/// changes no bytes.
#[derive(Clone)]
pub(crate) struct IoPathWorld {
    pub(crate) host: HostModel,
    pub(crate) fabric: PcieFabric,
    pub(crate) devices: Vec<SsdDevice>,
    pub(crate) jobs: Vec<JobState>,
    pub(crate) causes: Option<afa_sim::trace::CauseAccumulator>,
    /// Per-worker-LP blktrace windows. Capture caps apply *per LP*,
    /// so the set of recorded I/Os is a property of each LP's
    /// (plan-invariant) event stream — fusing replicas cannot change
    /// which I/Os make the window.
    pub(crate) tracers: Option<Vec<crate::blktrace::TraceRecorder>>,
    /// Per-worker-LP ledger-log windows (same invariance argument).
    pub(crate) ledger_logs: Option<Vec<LedgerLog>>,
    /// Per-worker-LP completion-model tallies (interrupt reaps, poll
    /// reaps, hybrid oversleeps). Indexed by the job's owning LP so
    /// fused replicas keep disjoint slices and the harvest can stitch
    /// each LP's tally from its owning shard exactly once.
    pub(crate) completions: Vec<CompletionCounters>,
    geometry: CpuSsdGeometry,
    horizon: SimTime,
    afa_socket: u16,
    /// Bitmask of the logical processes this replica owns (workers
    /// `0..WORKER_LPS`, hub [`HUB_LP`]); used only to assert events
    /// arrive on their owning replica.
    owned: u16,
    /// Owning worker shard of each job (by its device's pinned CPU).
    job_lp: Vec<usize>,
    /// Inverse of `jobs[j].spec().device()` (hub-side batch routing).
    job_of_device: Vec<usize>,
    /// Per-job earliest next issue instant (fio's `rate_iops` pacing).
    next_allowed: Vec<SimTime>,
    coalescing: Option<IrqCoalescing>,
    /// Timed-sleep length for [`CompletionModel::Hybrid`] jobs,
    /// derived by the config from the device profile's nominal read
    /// latency.
    hybrid_sleep: SimDuration,
    /// The device class models per-CPU NVMe SQ/CQ pairs (the ULL
    /// profile): submissions reserve the hub down-FIFOs in
    /// payload-ready order instead of doorbell (wake) order.
    per_cpu_queues: bool,
    /// Per-device completions awaiting a coalesced MSI (hub only).
    pending_cq: Vec<Vec<CqEntry>>,
    /// In-flight [`IoLedger`]s, indexed by [`LedgerId`]; slots recycle
    /// through `ledger_free` and every stage writes the parked entry
    /// in place, so the per-I/O path neither allocates nor copies the
    /// ledger.
    ledger_slab: Vec<IoLedger>,
    ledger_free: Vec<LedgerId>,
    /// Speculative stage-fusion fast path (see
    /// [`fuse_submit`](Self::fuse_submit)); resolved per run from
    /// `AFA_NO_FUSION` / `FusionOverride`. Results are byte-identical
    /// either way — fusion only changes how many events the engine
    /// pops per I/O.
    fusion_enabled: bool,
    /// In-flight fused chains, one slot per job (QD1 is a fuse gate).
    fused: Vec<Option<FusedChain>>,
    /// Live chain count — the hooks' short-circuit.
    fused_live: usize,
    fused_tally: FusionTally,
    /// Jobs targeting each device (fusion requires a private device).
    device_job_count: Vec<u32>,
    /// Jobs owned by each worker LP (fusion requires a private LP:
    /// no foreign job's CPU state can interleave with the frozen
    /// completion preview).
    lp_job_count: [u32; WORKER_LPS],
}

/// The scheduling context every handler receives.
type Ctx<'a> = ShardCtx<'a, Local, Cross>;

impl IoPathWorld {
    /// Assembles a world from its parts (see `AfaSystem::run` for the
    /// construction of each). The caller clones the assembled world
    /// into one replica per shard and brands each with
    /// [`IoPathWorld::set_lps`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        host: HostModel,
        fabric: PcieFabric,
        devices: Vec<SsdDevice>,
        jobs: Vec<JobState>,
        geometry: CpuSsdGeometry,
        horizon: SimTime,
        afa_socket: u16,
        causes: Option<afa_sim::trace::CauseAccumulator>,
        tracer: Option<crate::blktrace::TraceRecorder>,
        ledger_log: Option<LedgerLog>,
        coalescing: Option<IrqCoalescing>,
        hybrid_sleep: SimDuration,
        per_cpu_queues: bool,
    ) -> Self {
        let n = devices.len();
        let job_lp: Vec<usize> = jobs
            .iter()
            .map(|j| lp_of_cpu(geometry.cpu_of_ssd(j.spec().device())))
            .collect();
        let mut job_of_device = vec![usize::MAX; n];
        for (j, job) in jobs.iter().enumerate() {
            job_of_device[job.spec().device()] = j;
        }
        let jobs_len = jobs.len();
        let mut device_job_count = vec![0u32; n];
        for job in &jobs {
            device_job_count[job.spec().device()] += 1;
        }
        let mut lp_job_count = [0u32; WORKER_LPS];
        for &lp in &job_lp {
            lp_job_count[lp] += 1;
        }
        IoPathWorld {
            host,
            fabric,
            devices,
            jobs,
            geometry,
            horizon,
            afa_socket,
            causes,
            tracers: tracer.map(|t| vec![t; WORKER_LPS]),
            ledger_logs: ledger_log.map(|l| vec![l; WORKER_LPS]),
            completions: vec![CompletionCounters::default(); WORKER_LPS],
            owned: 0,
            job_lp,
            job_of_device,
            next_allowed: vec![SimTime::ZERO; jobs_len],
            coalescing,
            hybrid_sleep,
            per_cpu_queues,
            pending_cq: vec![Vec::new(); n],
            ledger_slab: Vec::with_capacity(2 * n),
            ledger_free: Vec::with_capacity(2 * n),
            fusion_enabled: false,
            fused: (0..jobs_len).map(|_| None).collect(),
            fused_live: 0,
            fused_tally: FusionTally::default(),
            device_job_count,
            lp_job_count,
        }
    }

    /// Enables the fusion fast path for this replica (the run driver
    /// resolves the knob once per run).
    pub(crate) fn set_fusion(&mut self, enabled: bool) {
        self.fusion_enabled = enabled;
    }

    /// This replica's fusion tally, for the run harvest.
    pub(crate) fn fusion_tally(&self) -> FusionTally {
        self.fused_tally
    }

    /// Brands this replica with the set of logical processes it owns
    /// under the run's partition plan.
    pub(crate) fn set_lps(&mut self, owned: u16) {
        self.owned = owned;
    }

    /// True when this replica owns `lp`'s slice.
    fn owns(&self, lp: usize) -> bool {
        self.owned >> lp & 1 == 1
    }

    /// Worker lookahead: the minimum delay any worker send adds — a
    /// fabric hop for `FabricUp`, interrupt entry + handler floor for
    /// `WakeReap`.
    pub(crate) fn worker_lookahead(&self) -> SimDuration {
        let costs = self.host.costs();
        self.fabric
            .hop_latency()
            .min(costs.irq_entry + costs.irq_handler)
    }

    /// Hub lookahead: every hub send crosses the shared legs (≥ one
    /// hop) and an MSI write.
    pub(crate) fn hub_lookahead(&self) -> SimDuration {
        self.fabric.hop_latency() + self.fabric.msi_latency()
    }

    /// The completion model governing `job`'s I/Os — the one typed
    /// dispatch point every stage branches through.
    fn model_of(&self, job: usize) -> CompletionModel {
        CompletionModel::resolve(self.jobs[job].spec().engine(), self.hybrid_sleep)
    }

    /// Parks a fresh ledger in the slab, reusing a settled slot when
    /// one is free. The slot is written exactly once here; every
    /// stage mutates it in place through the slab.
    fn alloc_ledger(&mut self, queued_at: SimTime) -> LedgerId {
        match self.ledger_free.pop() {
            Some(id) => {
                self.ledger_slab[id as usize] = IoLedger::begin(queued_at);
                id
            }
            None => {
                self.ledger_slab.push(IoLedger::begin(queued_at));
                (self.ledger_slab.len() - 1) as LedgerId
            }
        }
    }

    /// Issues as many operations as the queue depth allows, starting
    /// with the thread running on its CPU at `now`. Each issue runs
    /// stages 1–3 inline and schedules the [`Local::DeviceDone`] that
    /// resumes the path. Runs only on the job's owning worker.
    fn issue_burst(&mut self, job: usize, mut now: SimTime, ctx: &mut Ctx<'_>) {
        debug_assert!(self.owns(self.job_lp[job]), "issue on a foreign shard");
        let cpu = self.geometry.cpu_of_ssd(self.jobs[job].spec().device());
        let issue_gap = self.jobs[job].spec().min_issue_gap();
        let mut busy_until = None;
        while self.jobs[job].can_issue(now) {
            // fio's rate_iops pacing: defer the issue if the job is
            // ahead of its rate budget.
            if now < self.next_allowed[job] {
                ctx.at(self.next_allowed[job], Local::Issue { job });
                break;
            }
            if !issue_gap.is_zero() {
                self.next_allowed[job] = now + issue_gap;
            }
            let device = self.jobs[job].spec().device();
            let op = self.jobs[job].issue(now);
            let id = self.alloc_ledger(now);
            let ledger = &mut self.ledger_slab[id as usize];
            let submit_end = submit::run(&mut self.host, cpu, now, ledger);
            busy_until = Some(submit_end);
            if let Some(tracers) = &mut self.tracers {
                let lp = self.job_lp[job];
                ledger.set_trace(tracers[lp].begin(device, op.lba, now));
            }
            // The doorbell slot on the shared down-legs is claimed
            // the moment the thread is *woken* (the driver's
            // submission pipeline commits its arbitration slot at CQ
            // time), while the SQE payload is only ready at
            // `submit_end`. The hub therefore reserves the hub-owned
            // down-FIFOs in wake order with payload-ready start
            // times: a thread delayed between wake and submit (CFS
            // queueing behind a daemon, C-state exit, tick preempts)
            // holds its committed slot back, and every later-claimed
            // slot queues behind it. That inversion push is the
            // µs-scale phase coupling behind the paper's
            // shared-fabric convoys — and it is fed by exactly the
            // delays chrt/isolcpus remove.
            //
            // Per-CPU NVMe SQ/CQ pairs (the ULL device class) have no
            // shared arbitration slot to commit early: each thread
            // rings a private doorbell, so the down-FIFOs are
            // reserved in payload-ready order and the wake-order
            // convoy coupling disappears. `submit_end >= now` keeps
            // the lookahead bound sound.
            let t_send = if self.per_cpu_queues {
                submit_end + self.worker_lookahead()
            } else {
                ctx.now() + self.worker_lookahead()
            };
            ctx.send(
                HUB_LP,
                t_send,
                Cross::SubmitDown {
                    job,
                    op,
                    ledger: id,
                    start: submit_end,
                },
            );
            if self.model_of(job).parks_thread() {
                // The thread parks on the CQ (spinning, or sleeping
                // then spinning) until the completion chain reaps it;
                // stop issuing here.
                break;
            }
            now = submit_end;
        }
        // Tell the hub how long this burst keeps the CPU busy, so
        // background placement stops seeing it as idle (§IV-C: a CPU
        // whose I/O task *sleeps* must look idle — one that is still
        // submitting must not).
        if let Some(until) = busy_until {
            let at = ctx.now() + self.worker_lookahead();
            ctx.send(HUB_LP, at, Cross::CpuBusy { cpu, until });
        }
    }

    /// The device posted a completion: reserve the device-side up-leg
    /// locally and hand the payload to the hub at the instant it
    /// reaches the leaf switch (one fabric hop of lookahead).
    fn on_device_done(&mut self, job: usize, issued_at: SimTime, id: LedgerId, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let bytes = self.jobs[job].spec().block_size() as u64;
        let cross_socket = self.host.topology().socket_of(cpu) != self.afa_socket;
        let model = self.model_of(job);
        let ledger = &mut self.ledger_slab[id as usize];
        ledger.stamp(IoStage::DeviceComplete, now);
        let t_leaf = fabric::device_leg(&mut self.fabric, device, now, bytes, model, ledger);
        ctx.send(
            HUB_LP,
            t_leaf,
            Cross::FabricUp {
                job,
                issued_at,
                ledger: id,
                cross_socket,
                model,
            },
        );
    }

    /// Hub: the payload reached the leaf switch. Reserve the shared
    /// legs in arrival order (they are FIFO resources — this is why
    /// the hub owns them), then route the interrupt — immediately, or
    /// held by the MSI coalescer.
    #[allow(clippy::too_many_arguments)]
    fn on_fabric_up(
        &mut self,
        src: usize,
        job: usize,
        issued_at: SimTime,
        id: LedgerId,
        cross_socket: bool,
        model: CompletionModel,
        ctx: &mut Ctx<'_>,
    ) {
        let t_leaf = ctx.now();
        // Hook B, pre-claim: settle the ordering between this arrival
        // and every pending fused reservation before touching the
        // legs.
        if self.fused_live > 0 {
            self.sync_fused_before_claim(src, t_leaf, ctx);
        }
        let device = self.jobs[job].spec().device();

        let bytes = self.jobs[job].spec().block_size() as u64;
        let at_host =
            fabric::shared_legs(&mut self.fabric, device, t_leaf, bytes, cross_socket, model);
        let fabric_shared = at_host.saturating_since(t_leaf);
        // Hook B, post-claim: de-fuse any pending reservation this
        // claim just stomped.
        if self.fused_live > 0 {
            self.defuse_stomped_after_claim(t_leaf, ctx);
        }
        if model.parks_thread() {
            // Without the MSI's trailing latency a tiny payload can
            // clear the shared legs inside the hub lookahead; the
            // event timestamp is clamped but the reap works off the
            // carried `at_host`.
            let at = at_host.max(ctx.now() + self.hub_lookahead());
            ctx.send(
                self.job_lp[job],
                at,
                Cross::PollComplete {
                    job,
                    issued_at,
                    ledger: id,
                    fabric_shared,
                    at_host,
                    model,
                },
            );
            return;
        }
        let entry = CqEntry {
            issued_at,
            ledger: id,
            fabric_shared,
        };
        match self.coalescing {
            None => self.fire_irq(job, device, at_host, CqBatch::One(entry), ctx),
            Some(c) => {
                // Hold the CQE; the MSI fires on batch-full or timeout
                // from the first pending completion.
                self.pending_cq[device].push(entry);
                let len = self.pending_cq[device].len();
                if len as u32 >= c.max_batch {
                    let batch = std::mem::take(&mut self.pending_cq[device]);
                    self.fire_irq(job, device, at_host, CqBatch::Many(batch), ctx);
                } else if len == 1 {
                    ctx.at(at_host + c.timeout, Local::Msi { device });
                }
            }
        }
    }

    /// Hub: routes one interrupt through the vector table and hands
    /// the batch to the worker owning the effective vector CPU.
    fn fire_irq(
        &mut self,
        job: usize,
        device: usize,
        at: SimTime,
        batch: CqBatch,
        ctx: &mut Ctx<'_>,
    ) {
        let (delivery, designated) = self.host.route_irq(device, at);
        ctx.send(
            lp_of_cpu(delivery.vector_cpu),
            at,
            Cross::IrqDeliver {
                job,
                delivery,
                designated,
                batch,
            },
        );
    }

    /// Hub: a coalescing timeout fired. Stale timers (the batch
    /// already fired full) find the queue empty and do nothing. The
    /// interrupt itself lands one hub-lookahead later — the MSI still
    /// has to cross the fabric to the host.
    fn on_msi(&mut self, device: usize, ctx: &mut Ctx<'_>) {
        if self.pending_cq[device].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending_cq[device]);
        let job = self.job_of_device[device];
        let at = ctx.now() + self.hub_lookahead();
        self.fire_irq(job, device, at, CqBatch::Many(batch), ctx);
    }

    /// Vector-CPU worker: execute the handler on the effective vector
    /// CPU (this shard owns its state) and hand the outcome to the
    /// origin worker at the wake-ready instant (≥ interrupt entry +
    /// handler floor of lookahead).
    fn on_irq_deliver(
        &mut self,
        job: usize,
        delivery: IrqDelivery,
        designated: CpuId,
        batch: CqBatch,
        ctx: &mut Ctx<'_>,
    ) {
        let at_host = ctx.now();
        let irq = self.host.deliver_irq_routed(delivery, designated, at_host);
        ctx.send(
            self.job_lp[job],
            irq.wake_ready,
            Cross::WakeReap {
                job,
                irq,
                at_host,
                batch,
            },
        );
    }

    /// Origin worker: the handler ran remotely; apply its slices to
    /// the parked ledgers, wake the fio thread and reap the batch.
    /// The shared IRQ + wake slices credit the first entry's ledger
    /// (that I/O is the one whose critical path they sit on); each
    /// entry then pays its own reap slice.
    fn on_wake_reap(
        &mut self,
        job: usize,
        irq: IrqOutcome,
        at_host: SimTime,
        batch: CqBatch,
        ctx: &mut Ctx<'_>,
    ) {
        debug_assert!(
            self.model_of(job).uses_irq_path(),
            "interrupt batch for a polled job"
        );
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let policy = self.jobs[job].spec().policy();
        let work = COMPLETE_COST + self.jobs[job].spec().logging_cpu_overhead();
        self.completions[self.job_lp[job]].interrupts += batch.as_slice().len() as u64;
        let first = batch.first();
        let run_start = {
            let led = &mut self.ledger_slab[first.ledger as usize];
            led.accrue(Cause::Fabric, first.fabric_shared);
            irq::apply(&irq, at_host, led);
            wake::run(&mut self.host, cpu, irq.wake_ready, policy, led)
        };
        let mut t = run_start;
        for (i, entry) in batch.as_slice().iter().enumerate() {
            {
                let led = &mut self.ledger_slab[entry.ledger as usize];
                if i > 0 {
                    // Later batch entries share the first I/O's
                    // handler instant (one MSI served them all).
                    led.accrue(Cause::Fabric, entry.fabric_shared);
                    led.stamp(IoStage::IrqHandled, irq.handler_done);
                }
                t = complete::reap(&mut self.host, cpu, t, work, led);
            }
            self.finish_io(job, entry.issued_at, t, entry.ledger);
        }
        self.issue_burst(job, t, ctx);
    }

    /// Origin worker: a polled completion's data is host-side; the
    /// parked thread (spinning, or sleeping then spinning) reaps it
    /// directly and keeps going.
    #[allow(clippy::too_many_arguments)]
    fn on_poll_complete(
        &mut self,
        job: usize,
        issued_at: SimTime,
        id: LedgerId,
        fabric_shared: SimDuration,
        at_host: SimTime,
        model: CompletionModel,
        ctx: &mut Ctx<'_>,
    ) {
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let work = COMPLETE_COST + self.jobs[job].spec().logging_cpu_overhead();
        let done = {
            let led = &mut self.ledger_slab[id as usize];
            led.accrue(Cause::Fabric, fabric_shared);
            complete::poll_reap(&mut self.host, cpu, model, issued_at, at_host, work, led)
        };
        let tally = &mut self.completions[self.job_lp[job]];
        tally.polls += 1;
        if let CompletionModel::Hybrid { sleep } = model {
            if issued_at + sleep > at_host {
                tally.hybrid_sleeps += 1;
            }
        }
        self.finish_io(job, issued_at, done, id);
        self.issue_burst(job, done, ctx);
    }

    // ------------------------------------------------------------------
    // Macro-event fusion (see DESIGN.md §6)
    // ------------------------------------------------------------------

    /// The cheap, declinable half of the fusion gate: conditions under
    /// which `job`'s new I/O *might* fuse, checkable before any state
    /// beyond the (already claimed) shared down-legs is touched.
    /// Failing any of these takes the plain per-stage path.
    fn fusion_candidate(&self, job: usize, device: usize) -> bool {
        self.fusion_enabled
            // A fused replica owning every LP (the single plan): the
            // eager legs and the settlement mutate worker- and
            // hub-owned state from one handler.
            && self.owned == (1 << LP_COUNT) - 1
            // Coalescing batches completions across I/Os on the hub.
            && self.coalescing.is_none()
            // Capture windows admit by per-LP arrival order, which a
            // macro-event would skew.
            && self.tracers.is_none()
            && self.ledger_logs.is_none()
            // QD1: no sibling I/O of the same job can interleave with
            // the frozen timeline.
            && self.jobs[job].spec().iodepth() == 1
            // Private device: its FIFO order and RNG stream are this
            // chain's alone.
            && self.device_job_count[device] == 1
            // Private worker LP: no foreign job's submit/wake/reap can
            // interleave with the completion-side state the preview
            // froze.
            && self.lp_job_count[self.job_lp[job]] == 1
            && self.fused[job].is_none()
    }

    /// The speculative fast path (hub, at `SubmitDown` time, after the
    /// real shared down-leg claim): run the private device-side legs
    /// eagerly, then — if the completion side is provably uncontended —
    /// freeze the rest of the timeline into a [`FusedChain`] and book
    /// one [`Local::Settle`] macro-event in place of the 4 (interrupt)
    /// or 3 (poll) per-stage events.
    ///
    /// The private legs are exact regardless of what the completion
    /// side decides: the device, its links and the parked ledger are
    /// this I/O's alone (QD1 + private device), and the full event
    /// drain guarantees the chain completes in every run. A
    /// completion-side decline therefore cannot back out — it falls
    /// back *partially*, replaying the real [`Cross::FabricUp`] at the
    /// leaf-arrival instant with the job's own channel sequence (the
    /// same relative order the un-fused send would have had), eliding
    /// just the two device-side events.
    fn fuse_submit(
        &mut self,
        job: usize,
        op: Op,
        id: LedgerId,
        start: SimTime,
        at_entry: SimTime,
        ctx: &mut Ctx<'_>,
    ) {
        let device = self.jobs[job].spec().device();
        let job_lp = self.job_lp[job];
        let cpu = self.geometry.cpu_of_ssd(device);
        let bytes = self.jobs[job].spec().block_size();
        let model = self.model_of(job);
        // Eager private legs — verbatim the CommandAtDevice and
        // DeviceDone handler bodies, minus the two events.
        let led = &mut self.ledger_slab[id as usize];
        let at_device =
            fabric::downstream_device_leg(&mut self.fabric, device, start, at_entry, led);
        let completes_at = device::serve(&mut self.devices[device], at_device, op, bytes, led);
        led.stamp(IoStage::DeviceComplete, completes_at);
        let t_leaf = fabric::device_leg(
            &mut self.fabric,
            device,
            completes_at,
            bytes as u64,
            model,
            led,
        );
        let cross_socket = self.host.topology().socket_of(cpu) != self.afa_socket;
        let polled = model.parks_thread();
        // Completion-side gate: every check is against state frozen
        // until the settlement by construction (the gates themselves
        // plus hooks A and B), so a pass makes the precomputed
        // timeline exact.
        let fused = 'gate: {
            let Some(r) =
                self.fabric
                    .preview_completion_shared_legs(device, t_leaf, bytes as u64, polled)
            else {
                break 'gate None;
            };
            // The shared up-legs must also clear every *pending*
            // reservation (their windows reach `free_at` only when
            // they commit). Busy windows may touch at a boundary but
            // not intersect.
            for other in self.fused.iter().flatten() {
                let o = &other.reservation;
                if (o.leaf == r.leaf
                    && o.leaf_start < r.leaf_busy_end
                    && r.leaf_start < o.leaf_busy_end)
                    || (o.spine == r.spine
                        && o.up_start < r.up_busy_end
                        && r.up_start < o.up_busy_end)
                {
                    break 'gate None;
                }
            }
            let mut at_host = r.at_host;
            if cross_socket {
                at_host += fabric::NUMA_CROSS_SOCKET;
            }
            let fabric_shared = at_host.saturating_since(t_leaf);
            let Some(vt) = self.host.vectors() else {
                break 'gate None;
            };
            let sib_c = self.host.topology().sibling_of(cpu);
            let irq = if model.uses_irq_path() {
                // The routing must be deterministic from current state
                // (no pending reshuffle) …
                let Some(delivery) = vt.preview_route(device, at_host) else {
                    break 'gate None;
                };
                // … and stay deterministic until the settlement: any
                // route processed before it carries a timestamp well
                // inside the guard margin, so none can trip the
                // balancer RNG the preview could not see.
                let designated = vt.designated(device);
                let v = delivery.vector_cpu;
                let sib_v = self.host.topology().sibling_of(v);
                let outcome = self
                    .host
                    .preview_irq_delivery(delivery, designated, at_host);
                if vt.is_balanced() && outcome.wake_ready + REBALANCE_GUARD >= vt.next_rebalance() {
                    break 'gate None;
                }
                // The vector core must host no foreign job: a foreign
                // wake on it could consume the RNG draws and busy
                // windows the preview froze.
                for (j2, other) in self.jobs.iter().enumerate() {
                    if j2 == job {
                        continue;
                    }
                    let c2 = self.geometry.cpu_of_ssd(other.spec().device());
                    if c2 == v || c2 == sib_v {
                        break 'gate None;
                    }
                }
                // No other interrupt-driven device may point its
                // effective vector at the chain's vector or reap core
                // pairs: a same-instant foreign delivery is keyed and
                // would sort *before* the plain settlement event,
                // diverging from the real (keyed) completion order.
                for d2 in 0..self.devices.len() {
                    if d2 == device {
                        continue;
                    }
                    let j2 = self.job_of_device[d2];
                    if j2 == usize::MAX || !self.model_of(j2).uses_irq_path() {
                        continue;
                    }
                    let eff = vt.effective(d2);
                    if eff == v || eff == sib_v || eff == cpu || eff == sib_c {
                        break 'gate None;
                    }
                }
                Some(FusedIrq {
                    delivery,
                    designated,
                    outcome,
                    delivered: false,
                })
            } else {
                // Polled chains still need the reap core pair clear of
                // foreign effective vectors (same keyed-vs-plain
                // ordering argument for the reaping CPU's state).
                for d2 in 0..self.devices.len() {
                    if d2 == device {
                        continue;
                    }
                    let j2 = self.job_of_device[d2];
                    if j2 == usize::MAX || !self.model_of(j2).uses_irq_path() {
                        continue;
                    }
                    let eff = vt.effective(d2);
                    if eff == cpu || eff == sib_c {
                        break 'gate None;
                    }
                }
                None
            };
            let settle_at = match &irq {
                Some(f) => f.outcome.wake_ready,
                // The instant the real `PollComplete` event would
                // fire (its handler works off the carried `at_host`).
                None => at_host.max(t_leaf + self.hub_lookahead()),
            };
            Some(FusedChain {
                settle_at,
                device,
                issued_at: start,
                ledger: id,
                t_leaf,
                at_host,
                fabric_shared,
                model,
                cross_socket,
                reservation: r,
                committed: false,
                irq,
            })
        };
        match fused {
            Some(chain) => {
                let settle_at = chain.settle_at;
                self.fused[job] = Some(chain);
                self.fused_live += 1;
                self.fused_tally.fused += 1;
                ctx.at_lp(job_lp, settle_at, Local::Settle { job });
            }
            None => {
                // Partial fallback: re-enter the plain path at the
                // leaf switch, exactly where the real `FabricUp`
                // would fire.
                ctx.send_from(
                    job_lp,
                    HUB_LP,
                    t_leaf,
                    Cross::FabricUp {
                        job,
                        issued_at: start,
                        ledger: id,
                        cross_socket,
                        model,
                    },
                );
            }
        }
    }

    /// Worker: a settlement macro-event fired. The instant guard
    /// drops stale pops — a re-preview moved the settlement, a
    /// background install flushed it early, or contention de-fused the
    /// chain entirely.
    fn on_settle(&mut self, job: usize, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        if self.fused[job].as_ref().is_none_or(|c| c.settle_at != now) {
            return;
        }
        self.settle_fused(job, ctx);
    }

    /// Replays a fused chain's completion side in one shot: commit the
    /// shared legs (if hook B hasn't already), run the real interrupt
    /// route + delivery (validated against the frozen preview), then
    /// the verbatim wake/reap — or poll-reap — handler.
    fn settle_fused(&mut self, job: usize, ctx: &mut Ctx<'_>) {
        let chain = self.fused[job].take().expect("settling job has a chain");
        self.fused_live -= 1;
        if !chain.committed {
            self.fabric
                .commit_completion_shared_legs(&chain.reservation);
        }
        self.fused_tally.elided += if chain.irq.is_some() { 4 } else { 3 };
        match chain.irq {
            Some(f) => {
                let irq = if f.delivered {
                    f.outcome
                } else {
                    let (delivery, designated) = self.host.route_irq(chain.device, chain.at_host);
                    debug_assert_eq!(delivery, f.delivery, "fused route diverged");
                    debug_assert_eq!(designated, f.designated, "fused designated CPU diverged");
                    let irq = self
                        .host
                        .deliver_irq_routed(delivery, designated, chain.at_host);
                    debug_assert_eq!(irq, f.outcome, "fused handler outcome diverged");
                    irq
                };
                let entry = CqEntry {
                    issued_at: chain.issued_at,
                    ledger: chain.ledger,
                    fabric_shared: chain.fabric_shared,
                };
                self.on_wake_reap(job, irq, chain.at_host, CqBatch::One(entry), ctx);
            }
            None => {
                self.on_poll_complete(
                    job,
                    chain.issued_at,
                    chain.ledger,
                    chain.fabric_shared,
                    chain.at_host,
                    chain.model,
                    ctx,
                );
            }
        }
    }

    /// Tears a pending chain back into per-stage events at the point
    /// of divergence: drop its (uncommitted) reservation and replay
    /// the real `FabricUp` at the leaf-arrival instant, on the job's
    /// own channel. The stale `Settle` pop is skipped by the instant
    /// guard.
    fn defuse(&mut self, job: usize, ctx: &mut Ctx<'_>) {
        let c = self.fused[job].take().expect("de-fusing a live chain");
        debug_assert!(!c.committed, "cannot de-fuse a committed chain");
        self.fused_live -= 1;
        self.fused_tally.defused += 1;
        ctx.send_from(
            self.job_lp[job],
            HUB_LP,
            c.t_leaf,
            Cross::FabricUp {
                job,
                issued_at: c.issued_at,
                ledger: c.ledger,
                cross_socket: c.cross_socket,
                model: c.model,
            },
        );
    }

    /// Hook B, pre-claim: every pending reservation whose window opens
    /// before this arrival was — in real time order — claimed first,
    /// so commit it and let the incoming claim queue behind it. A tie
    /// at the same leaf instant resolves by the merge key's source LP;
    /// a tie the chain loses de-fuses it (the replay, sent here with a
    /// later per-channel sequence, sorts exactly where the real event
    /// would).
    fn sync_fused_before_claim(&mut self, src: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let mut defuse: Vec<usize> = Vec::new();
        for (job, chain) in self.fused.iter_mut().enumerate() {
            let Some(c) = chain else { continue };
            if c.committed {
                continue;
            }
            if c.t_leaf < now || (c.t_leaf == now && self.job_lp[job] < src) {
                self.fabric.commit_completion_shared_legs(&c.reservation);
                c.committed = true;
            } else if c.t_leaf == now {
                defuse.push(job);
            }
        }
        for job in defuse {
            self.defuse(job, ctx);
        }
    }

    /// Hook B, post-claim: the claim just made may have pushed a
    /// shared leg's free instant into a pending reservation's window,
    /// invalidating the preview. De-fuse those chains — their replayed
    /// `FabricUp` re-queues through the real path. Because every claim
    /// runs this probe, surviving reservations are always valid.
    fn defuse_stomped_after_claim(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let mut stomped: Vec<usize> = Vec::new();
        for (job, chain) in self.fused.iter().enumerate() {
            let Some(c) = chain else { continue };
            if c.committed {
                continue;
            }
            debug_assert!(c.t_leaf > now, "pre-claim sync left a stale window");
            let r = &c.reservation;
            let (leaf_free, up_free) = self.fabric.shared_leg_free_at(r.leaf, r.spine);
            if leaf_free > r.leaf_start || up_free > r.up_start {
                stomped.push(job);
            }
        }
        for job in stomped {
            self.defuse(job, ctx);
        }
    }

    /// Hook A, pre-install: a background burst is about to land on
    /// `p_cpu`. Two real orderings must be replayed before it:
    ///
    /// 1. Chains whose interrupt handler already (logically) ran on
    ///    this core pair — `at_host` at or before this instant — get
    ///    their deferred delivery executed now, so its state
    ///    mutations land before the install exactly as the real
    ///    `IrqDeliver` did.
    /// 2. Chains settling at exactly this instant whose real
    ///    completion event precedes the keyed `BgPlace` in the merge
    ///    order are settled now, acting as their owning LP (interrupt
    ///    completions always precede it — their source LP is a
    ///    worker's; polled ones by the hub channel's dst/seq rule).
    fn flush_fused_before_install(&mut self, p_cpu: CpuId, now: SimTime, ctx: &mut Ctx<'_>) {
        let sib = self.host.topology().sibling_of(p_cpu);
        let mut deliver: Vec<usize> = Vec::new();
        for (job, chain) in self.fused.iter().enumerate() {
            let Some(c) = chain else { continue };
            let Some(f) = &c.irq else { continue };
            if f.delivered {
                continue;
            }
            let v = f.delivery.vector_cpu;
            if v != p_cpu && v != sib {
                continue;
            }
            if c.at_host < now || (c.at_host == now && c.t_leaf + BG_PLACE_LATENCY <= now) {
                deliver.push(job);
            }
        }
        for job in deliver {
            let (device, at_host) = {
                let c = self.fused[job].as_ref().expect("deferred delivery");
                (c.device, c.at_host)
            };
            let (delivery, designated) = self.host.route_irq(device, at_host);
            let irq = self.host.deliver_irq_routed(delivery, designated, at_host);
            let c = self.fused[job].as_mut().expect("deferred delivery");
            let f = c.irq.as_mut().expect("interrupt chain");
            debug_assert_eq!(delivery, f.delivery, "fused route diverged");
            debug_assert_eq!(designated, f.designated, "fused designated CPU diverged");
            debug_assert_eq!(irq, f.outcome, "fused handler outcome diverged");
            f.outcome = irq;
            f.delivered = true;
            if c.settle_at != irq.wake_ready {
                // Unreachable when the asserts hold; keep release
                // builds self-consistent anyway.
                c.settle_at = irq.wake_ready;
                ctx.at_lp(self.job_lp[job], c.settle_at, Local::Settle { job });
            }
        }
        let p_lp = lp_of_cpu(p_cpu);
        let mut flush: Vec<(usize, usize, u64, usize)> = Vec::new();
        for (job, chain) in self.fused.iter().enumerate() {
            let Some(c) = chain else { continue };
            if c.settle_at != now {
                continue;
            }
            let dst = self.job_lp[job];
            match &c.irq {
                // Real `WakeReap`: keyed, worker source — always
                // before the hub-sourced `BgPlace`.
                Some(f) => flush.push((
                    lp_of_cpu(f.delivery.vector_cpu),
                    dst,
                    c.t_leaf.as_nanos(),
                    job,
                )),
                // Real `PollComplete` shares the hub source: it
                // precedes the install iff its destination LP is
                // lower, or — same channel — iff it was sent (at
                // `t_leaf`) no later than the `BgPlace`.
                None => {
                    if dst < p_lp || (dst == p_lp && c.t_leaf + BG_PLACE_LATENCY <= now) {
                        flush.push((HUB_LP, dst, c.t_leaf.as_nanos(), job));
                    }
                }
            }
        }
        flush.sort_unstable();
        for (_, dst, _, job) in flush {
            let prev = ctx.set_acting_lp(dst);
            self.settle_fused(job, ctx);
            ctx.set_acting_lp(prev);
        }
    }

    /// Hook A, post-install: the burst on `p_cpu` changes the
    /// predicted handler outcome of any chain whose interrupt has not
    /// yet (logically) been delivered on this core pair — recompute
    /// the preview against post-install state and move the settlement
    /// (the stale event is skipped by the instant guard). Never
    /// de-fuses and never replays the delivery.
    fn repreview_fused_after_install(&mut self, p_cpu: CpuId, now: SimTime, ctx: &mut Ctx<'_>) {
        let sib = self.host.topology().sibling_of(p_cpu);
        let mut updates: Vec<(usize, IrqOutcome)> = Vec::new();
        for (job, chain) in self.fused.iter().enumerate() {
            let Some(c) = chain else { continue };
            let Some(f) = &c.irq else { continue };
            if f.delivered {
                continue;
            }
            let v = f.delivery.vector_cpu;
            if v != p_cpu && v != sib {
                continue;
            }
            debug_assert!(c.at_host >= now, "undelivered chain behind the clock");
            updates.push((
                job,
                self.host
                    .preview_irq_delivery(f.delivery, f.designated, c.at_host),
            ));
        }
        for (job, outcome) in updates {
            let c = self.fused[job].as_mut().expect("re-previewed chain");
            let f = c.irq.as_mut().expect("interrupt chain");
            f.outcome = outcome;
            if c.settle_at != outcome.wake_ready {
                c.settle_at = outcome.wake_ready;
                ctx.at_lp(self.job_lp[job], c.settle_at, Local::Settle { job });
            }
        }
    }
}

impl ShardWorld for IoPathWorld {
    type Local = Local;
    type Cross = Cross;

    fn handle_local(&mut self, event: Local, ctx: &mut Ctx<'_>) {
        match event {
            Local::Issue { job } => {
                let now = ctx.now();
                self.issue_burst(job, now, ctx);
            }
            Local::DeviceDone {
                job,
                issued_at,
                ledger,
            } => {
                self.on_device_done(job, issued_at, ledger, ctx);
            }
            Local::Msi { device } => {
                self.on_msi(device, ctx);
            }
            Local::Settle { job } => {
                self.on_settle(job, ctx);
            }
            Local::BgArrival => {
                let now = ctx.now();
                let start = now + BG_PLACE_LATENCY;
                if let Some(placement) = self.host.decide_background_remote(start) {
                    // Mirror the install on the hub-owned placement
                    // view so the next decision's idle test sees this
                    // burst; the CPU's owner performs the
                    // authoritative install at the same instant.
                    self.host.mirror_background(&placement, start);
                    ctx.send(
                        lp_of_cpu(placement.cpu),
                        start,
                        Cross::BgPlace { placement },
                    );
                }
                let next = self.host.next_background_arrival(now);
                if next < self.horizon {
                    ctx.at(next, Local::BgArrival);
                }
            }
        }
    }

    fn handle_cross(&mut self, src: usize, event: Cross, ctx: &mut Ctx<'_>) {
        match event {
            Cross::SubmitDown {
                job,
                op,
                ledger,
                start,
            } => {
                let device = self.jobs[job].spec().device();
                let at_entry = fabric::downstream_shared(&mut self.fabric, device, start);
                if self.fusion_candidate(job, device) {
                    self.fuse_submit(job, op, ledger, start, at_entry, ctx);
                    return;
                }
                let at = at_entry.max(ctx.now() + self.hub_lookahead());
                ctx.send(
                    self.job_lp[job],
                    at,
                    Cross::CommandAtDevice {
                        job,
                        op,
                        ledger,
                        issued_at: start,
                        at_entry,
                    },
                );
            }
            Cross::CommandAtDevice {
                job,
                op,
                ledger,
                issued_at,
                at_entry,
            } => {
                debug_assert!(self.owns(self.job_lp[job]), "device leg on a foreign shard");
                let device = self.jobs[job].spec().device();
                let bytes = self.jobs[job].spec().block_size();
                let led = &mut self.ledger_slab[ledger as usize];
                let at_device = fabric::downstream_device_leg(
                    &mut self.fabric,
                    device,
                    issued_at,
                    at_entry,
                    led,
                );
                let completes_at =
                    device::serve(&mut self.devices[device], at_device, op, bytes, led);
                ctx.at(
                    completes_at,
                    Local::DeviceDone {
                        job,
                        issued_at,
                        ledger,
                    },
                );
            }
            Cross::FabricUp {
                job,
                issued_at,
                ledger,
                cross_socket,
                model,
            } => {
                self.on_fabric_up(src, job, issued_at, ledger, cross_socket, model, ctx);
            }
            Cross::IrqDeliver {
                job,
                delivery,
                designated,
                batch,
            } => {
                self.on_irq_deliver(job, delivery, designated, batch, ctx);
            }
            Cross::PollComplete {
                job,
                issued_at,
                ledger,
                fabric_shared,
                at_host,
                model,
            } => {
                self.on_poll_complete(job, issued_at, ledger, fabric_shared, at_host, model, ctx);
            }
            Cross::WakeReap {
                job,
                irq,
                at_host,
                batch,
            } => {
                self.on_wake_reap(job, irq, at_host, batch, ctx);
            }
            Cross::BgPlace { placement } => {
                let now = ctx.now();
                let p_cpu = placement.cpu;
                // Hook A around the install: flush and deliver what
                // the real order puts before it, then re-preview what
                // the burst invalidates.
                if self.fused_live > 0 {
                    self.flush_fused_before_install(p_cpu, now, ctx);
                }
                self.host.install_background(placement, now);
                if self.fused_live > 0 {
                    self.repreview_fused_after_install(p_cpu, now, ctx);
                }
            }
            Cross::CpuBusy { cpu, until } => {
                self.host.note_io_busy(cpu, until);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_events_stay_small() {
        // The wheel copies events through its buckets; the cold
        // IoLedger payload must stay in the slab, not the event.
        assert!(
            std::mem::size_of::<Local>() <= 32,
            "Local grew to {} bytes",
            std::mem::size_of::<Local>()
        );
    }

    #[test]
    fn cross_events_stay_bounded() {
        // Cross events ride BTreeMap nodes and mailboxes, not the
        // wheel, so the budget is looser — but a regression to a
        // by-value ledger (~250 bytes) must still fail loudly.
        assert!(
            std::mem::size_of::<Cross>() <= 112,
            "Cross grew to {} bytes",
            std::mem::size_of::<Cross>()
        );
    }

    #[test]
    fn cpu_to_shard_map_keeps_cores_whole() {
        // Hyper-siblings (c, c+20) must land on the same worker so
        // sibling_busy reads stay shard-local, and no CPU may map to
        // the hub.
        for c in 0..40u16 {
            let lp = lp_of_cpu(CpuId(c));
            assert!(lp < WORKER_LPS, "cpu {c} mapped to the hub");
            assert_eq!(lp, lp_of_cpu(CpuId((c + 20) % 40)), "siblings split");
        }
        // All workers get work under the paper geometry.
        let owners: std::collections::BTreeSet<usize> =
            (0..40u16).map(|c| lp_of_cpu(CpuId(c))).collect();
        assert_eq!(owners.len(), WORKER_LPS);
    }
}
