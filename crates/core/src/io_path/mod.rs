//! The staged I/O path: one module per slice of an I/O's life, glued
//! by a thin event conductor, instrumented through one [`IoLedger`].
//!
//! ```text
//!  submit ──▶ fabric(down) ──▶ device ──▶ fabric(up) ──▶ irq ──▶ wake ──▶ complete
//!  (inline)    ╰── DeviceDone event ──╯   ╰───── Completion event ─────╯  (inline)
//!     │             │                │         │           │       │         │
//!     ╰──────┬──────┴────────────────┴────┬────┴───────────┴───┬───╯         │
//!            ▼                            ▼                    ▼             ▼
//!        IoLedger ···· accrue/credit per stage ····▶ settle ─▶ derived views
//!                                                    (causes, blktrace, log)
//! ```
//!
//! Matching §III of the paper:
//!
//! 1. [`submit`] — the fio thread (on its pinned CPU) pays the submit
//!    syscall cost and rings the doorbell,
//! 2. [`fabric`] (downstream) — the command crosses the switch tree,
//! 3. [`device`] — the SSD serves the read (controller + flash +
//!    possible SMART stall),
//! 4. [`fabric`] (upstream) — data + CQE + MSI cross back,
//! 5. [`irq`] — the host routes the interrupt, runs the handler, IPIs
//!    the submitter's CPU if remote,
//! 6. [`wake`] — the scheduler runs the fio thread again (CFS
//!    tick-granularity preemption, RT immediate preemption, C-state
//!    exit, …),
//! 7. [`complete`] — the thread reaps, the ledger settles, the views
//!    derive, and the next I/O issues.
//!
//! Stages 1–3 and 7 execute inline (the thread holds the CPU); the
//! device completion and the host-side interrupt are the only
//! simulation events, so a run costs ~2 events per I/O plus
//! background-workload arrivals. Splitting the completion into two
//! events is not an optimization but a correctness requirement: shared
//! fabric links are FIFO resources, so they must be reserved in global
//! time order — a device stalled in a SMART window must not
//! retroactively occupy the uplink for everyone else.
//!
//! Every stage writes its timing contribution into the I/O's
//! [`IoLedger`] (a fixed-size per-[`Cause`](afa_sim::trace::Cause)
//! table parked in an indexed slab, so events stay small and the hot
//! path never allocates). Cause attribution, blktrace stage records
//! and the optional ledger log are all derived from the settled ledger
//! in one place ([`IoPathWorld::finish_io`]) — adding a stage (an
//! io_uring engine, a multi-hop fabric) means writing one module that
//! takes `&mut IoLedger`, not synchronizing three instrumentation
//! paths.

mod complete;
mod device;
mod fabric;
mod irq;
mod ledger;
mod submit;
mod wake;

pub use ledger::{CompletedIo, IoLedger, LedgerLog};

use complete::COMPLETE_COST;

use afa_host::HostModel;
use afa_pcie::PcieFabric;
use afa_sim::{Scheduler, SimTime, World};
use afa_ssd::SsdDevice;
use afa_workload::{IoEngine, JobState};

use crate::blktrace::IoStage;
use crate::config::IrqCoalescing;
use crate::geometry::CpuSsdGeometry;

/// Slab handle for an I/O's in-flight [`IoLedger`] (see
/// [`IoPathWorld::ledger_slab`]).
pub(crate) type LedgerId = u32;

/// Simulation events. Kept small (32 bytes): the queue copies events
/// through its wheel buckets on every push/cascade/pop, so the cold
/// per-I/O ledger lives in an indexed slab on the world
/// ([`IoPathWorld::ledger_slab`]) and events carry only a [`LedgerId`].
#[derive(Debug)]
pub(crate) enum Event {
    /// Job's thread is running and ready to issue.
    Issue { job: usize },
    /// The device posts the completion; the upstream fabric transfer
    /// is reserved *now* so shared-link FIFOs are used in global time
    /// order (a stalled device must not block other devices' data).
    DeviceDone {
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
    },
    /// The completion interrupt reaches the host.
    Completion {
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
    },
    /// A coalesced MSI fires for the device's pending completions.
    Msi { device: usize },
    /// Background workload arrival.
    BgArrival,
}

/// A completion whose data has arrived but whose MSI is being held by
/// the coalescer.
#[derive(Clone, Copy, Debug)]
struct PendingCqe {
    job: usize,
    issued_at: SimTime,
    ledger: LedgerId,
}

/// The whole-array world: jobs × host × fabric × devices, driven by
/// [`Event`]s through the staged I/O path.
pub(crate) struct IoPathWorld {
    pub(crate) host: HostModel,
    pub(crate) fabric: PcieFabric,
    pub(crate) devices: Vec<SsdDevice>,
    pub(crate) jobs: Vec<JobState>,
    pub(crate) causes: Option<afa_sim::trace::CauseAccumulator>,
    pub(crate) tracer: Option<crate::blktrace::TraceRecorder>,
    pub(crate) ledger_log: Option<LedgerLog>,
    geometry: CpuSsdGeometry,
    horizon: SimTime,
    afa_socket: u16,
    /// Per-job earliest next issue instant (fio's `rate_iops` pacing).
    next_allowed: Vec<SimTime>,
    coalescing: Option<IrqCoalescing>,
    /// Per-device completions awaiting a coalesced MSI.
    pending_cq: Vec<Vec<PendingCqe>>,
    /// Reusable buffer the MSI handler swaps a device's pending queue
    /// into, so reaping a batch never allocates.
    cq_scratch: Vec<PendingCqe>,
    /// In-flight [`IoLedger`]s, indexed by [`LedgerId`]; entries
    /// recycle through `ledger_free`, so after warm-up the per-I/O
    /// path allocates nothing.
    ledger_slab: Vec<IoLedger>,
    ledger_free: Vec<LedgerId>,
}

impl IoPathWorld {
    /// Assembles a world from its parts (see `AfaSystem::run` for the
    /// construction of each).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        host: HostModel,
        fabric: PcieFabric,
        devices: Vec<SsdDevice>,
        jobs: Vec<JobState>,
        geometry: CpuSsdGeometry,
        horizon: SimTime,
        afa_socket: u16,
        causes: Option<afa_sim::trace::CauseAccumulator>,
        tracer: Option<crate::blktrace::TraceRecorder>,
        ledger_log: Option<LedgerLog>,
        coalescing: Option<IrqCoalescing>,
    ) -> Self {
        let n = devices.len();
        IoPathWorld {
            host,
            fabric,
            devices,
            jobs,
            geometry,
            horizon,
            afa_socket,
            causes,
            tracer,
            ledger_log,
            next_allowed: vec![SimTime::ZERO; n],
            coalescing,
            pending_cq: vec![Vec::new(); n],
            cq_scratch: Vec::new(),
            ledger_slab: Vec::with_capacity(2 * n),
            ledger_free: Vec::with_capacity(2 * n),
        }
    }

    /// Parks an in-flight ledger in the slab until its completion path
    /// reclaims it.
    fn alloc_ledger(&mut self, ledger: IoLedger) -> LedgerId {
        match self.ledger_free.pop() {
            Some(id) => {
                self.ledger_slab[id as usize] = ledger;
                id
            }
            None => {
                self.ledger_slab.push(ledger);
                (self.ledger_slab.len() - 1) as LedgerId
            }
        }
    }

    /// Reads back and releases a parked [`IoLedger`].
    fn free_ledger(&mut self, id: LedgerId) -> IoLedger {
        self.ledger_free.push(id);
        self.ledger_slab[id as usize]
    }

    /// Issues as many operations as the queue depth allows, starting
    /// with the thread running on its CPU at `now`. Each issue runs
    /// stages 1–3 inline and schedules the [`Event::DeviceDone`] that
    /// resumes the path.
    fn issue_burst(&mut self, job: usize, mut now: SimTime, sched: &mut Scheduler<'_, Event>) {
        let cpu = self.geometry.cpu_of_ssd(self.jobs[job].spec().device());
        let issue_gap = self.jobs[job].spec().min_issue_gap();
        while self.jobs[job].can_issue(now) {
            // fio's rate_iops pacing: defer the issue if the job is
            // ahead of its rate budget.
            if now < self.next_allowed[job] {
                sched.at(self.next_allowed[job], Event::Issue { job });
                return;
            }
            if !issue_gap.is_zero() {
                self.next_allowed[job] = now + issue_gap;
            }
            let device = self.jobs[job].spec().device();
            let bytes = self.jobs[job].spec().block_size();
            let op = self.jobs[job].issue(now);
            let mut ledger = IoLedger::begin(now);
            let submit_end = submit::run(&mut self.host, cpu, now, &mut ledger);
            let at_device = fabric::downstream(&mut self.fabric, device, submit_end, &mut ledger);
            let completes_at =
                device::serve(&mut self.devices[device], at_device, op, bytes, &mut ledger);
            if let Some(tracer) = &mut self.tracer {
                ledger.set_trace(tracer.begin(device, op.lba, now));
            }
            let ledger = self.alloc_ledger(ledger);
            sched.at(
                completes_at,
                Event::DeviceDone {
                    job,
                    issued_at: submit_end,
                    ledger,
                },
            );
            match self.jobs[job].spec().engine() {
                IoEngine::Libaio | IoEngine::Sync => {
                    now = submit_end;
                }
                IoEngine::Polling => {
                    // The thread spins on the CQ until the DeviceDone/
                    // Completion chain reaps it; stop issuing here.
                    return;
                }
            }
        }
    }

    /// The device posted a completion: run the upstream fabric leg
    /// (reserving shared links *now*) and schedule the host-side
    /// interrupt — immediately, or held by the MSI coalescer.
    fn on_device_done(
        &mut self,
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let now = sched.now();
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let bytes = self.jobs[job].spec().block_size() as u64;
        let cross_socket = self.host.topology().socket_of(cpu) != self.afa_socket;
        let entry = &mut self.ledger_slab[ledger as usize];
        entry.stamp(IoStage::DeviceComplete, now);
        let at_host = fabric::upstream(&mut self.fabric, device, now, bytes, cross_socket, entry);
        let coalesce = self
            .coalescing
            .filter(|_| !matches!(self.jobs[job].spec().engine(), IoEngine::Polling));
        match coalesce {
            None => sched.at(
                at_host,
                Event::Completion {
                    job,
                    issued_at,
                    ledger,
                },
            ),
            Some(c) => {
                // Hold the CQE; the MSI fires on batch-full or timeout
                // from the first pending completion.
                let pending = &mut self.pending_cq[device];
                pending.push(PendingCqe {
                    job,
                    issued_at,
                    ledger,
                });
                if pending.len() as u32 >= c.max_batch {
                    sched.at(at_host, Event::Msi { device });
                } else if pending.len() == 1 {
                    sched.at(at_host + c.timeout, Event::Msi { device });
                }
            }
        }
    }

    /// A coalesced MSI: one interrupt and one wake-up reap the whole
    /// pending batch. The shared IRQ + wake slices credit the first
    /// entry's ledger (that I/O is the one whose critical path they
    /// sit on); each entry then pays its own reap slice.
    fn on_msi(&mut self, device: usize, sched: &mut Scheduler<'_, Event>) {
        // Swap the pending queue against the reusable scratch buffer
        // (instead of `mem::take`, which would allocate a fresh Vec on
        // every MSI) — nothing below pushes to this device's queue.
        debug_assert!(self.cq_scratch.is_empty());
        std::mem::swap(&mut self.pending_cq[device], &mut self.cq_scratch);
        let Some(&first) = self.cq_scratch.first() else {
            // A stale timeout after a batch-full fire; both Vecs are
            // empty, so the swap was a no-op worth undoing for tidiness.
            std::mem::swap(&mut self.pending_cq[device], &mut self.cq_scratch);
            return;
        };
        let now = sched.now();
        let job = first.job;
        let cpu = self.geometry.cpu_of_ssd(device);
        let policy = self.jobs[job].spec().policy();
        let first_ledger = &mut self.ledger_slab[first.ledger as usize];
        let irq = irq::deliver(&mut self.host, device, now, first_ledger);
        let run_start = wake::run(&mut self.host, cpu, irq.wake_ready, policy, first_ledger);
        let work = COMPLETE_COST + self.jobs[job].spec().logging_cpu_overhead();
        let mut t = run_start;
        for i in 0..self.cq_scratch.len() {
            let entry = self.cq_scratch[i];
            let mut ledger = self.free_ledger(entry.ledger);
            // Later batch entries share the first I/O's handler
            // instant (one MSI served them all).
            ledger.stamp(IoStage::IrqHandled, irq.handler_done);
            t = complete::reap(&mut self.host, cpu, t, work, &mut ledger);
            self.finish_io(entry.job, entry.issued_at, t, ledger);
        }
        self.cq_scratch.clear();
        debug_assert!(self.pending_cq[device].is_empty());
        std::mem::swap(&mut self.pending_cq[device], &mut self.cq_scratch);
        self.issue_burst(job, t, sched);
    }

    /// The completion interrupt reached the host: run stages 5–7 for
    /// the interrupt engines, or reap directly for polling, then issue
    /// the next I/O (the thread holds the CPU after reaping).
    fn on_completion(
        &mut self,
        job: usize,
        issued_at: SimTime,
        ledger: LedgerId,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let mut ledger = self.free_ledger(ledger);
        let now = sched.now();
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let work = COMPLETE_COST + self.jobs[job].spec().logging_cpu_overhead();

        let done = match self.jobs[job].spec().engine() {
            IoEngine::Libaio | IoEngine::Sync => {
                let irq = irq::deliver(&mut self.host, device, now, &mut ledger);
                let policy = self.jobs[job].spec().policy();
                let run_start = wake::run(&mut self.host, cpu, irq.wake_ready, policy, &mut ledger);
                complete::reap(&mut self.host, cpu, run_start, work, &mut ledger)
            }
            IoEngine::Polling => {
                // The thread spun from issue to now; reap directly.
                complete::poll_reap(&mut self.host, cpu, issued_at, now, work, &mut ledger)
            }
        };
        self.finish_io(job, issued_at, done, ledger);
        self.issue_burst(job, done, sched);
    }
}

impl World for IoPathWorld {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut Scheduler<'_, Event>) {
        match event {
            Event::Issue { job } => {
                let now = sched.now();
                self.issue_burst(job, now, sched);
            }
            Event::DeviceDone {
                job,
                issued_at,
                ledger,
            } => {
                self.on_device_done(job, issued_at, ledger, sched);
            }
            Event::Completion {
                job,
                issued_at,
                ledger,
            } => {
                self.on_completion(job, issued_at, ledger, sched);
            }
            Event::Msi { device } => {
                self.on_msi(device, sched);
            }
            Event::BgArrival => {
                let now = sched.now();
                self.host.spawn_background(now);
                let next = self.host.next_background_arrival(now);
                if next < self.horizon {
                    sched.at(next, Event::BgArrival);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_small() {
        // The queue copies events through wheel buckets; the cold
        // IoLedger payload must stay in the slab, not the event.
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
    }
}
