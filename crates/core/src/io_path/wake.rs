//! Stage 6 — wake: the scheduler runs the fio thread again.
//!
//! This is the crux of the paper's §IV analysis: CFS tick-granularity
//! preemption vs. SCHED_FIFO, non-preemptible kernel sections, C-state
//! exits and context-switch costs. The host returns an exact breakdown
//! of the wake-to-run delay; each slice credits its cause.

use afa_host::{CpuId, HostModel, SchedPolicy};
use afa_sim::trace::Cause;
use afa_sim::SimTime;

use super::IoLedger;

/// Wakes the job's I/O task on `cpu` (ready at `wake_ready`, under
/// `policy`); returns when the thread actually starts running.
pub(crate) fn run(
    host: &mut HostModel,
    cpu: CpuId,
    wake_ready: SimTime,
    policy: SchedPolicy,
    ledger: &mut IoLedger,
) -> SimTime {
    let (run_start, breakdown) = host.wake_io_task(cpu, wake_ready, policy);
    ledger.credit(
        Cause::SchedulerDelay,
        breakdown.np_wait
            + breakdown.cfs_preempt_wait
            + breakdown.local_queue_wait
            + breakdown.softirq_wait,
    );
    ledger.credit(Cause::CStateExit, breakdown.cstate_exit);
    ledger.credit(Cause::ContextSwitch, breakdown.fixed_costs);
    run_start
}
