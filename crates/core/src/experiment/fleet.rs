//! Million-tenant serving fleet: the `fleet-arrival` experiment.
//!
//! The tailscale experiments serve three tenants; an NVMe-oF target in
//! production serves orders of magnitude more, and what breaks first
//! at that scale is not the data path but the *bookkeeping*: per-tenant
//! latency histograms (~50 KiB each), per-request allocations, and one
//! timer event per pending arrival. This experiment scales the serving
//! layer across a tenant ladder (10³ → 10⁶) at a **fixed aggregate
//! arrival rate** and measures what the scale costs:
//!
//! * per-tenant tail accounting runs on [`SloTracker::sketched`] —
//!   the fixed-size streaming quantile sketch (<1 KiB/tenant) — and
//!   the artifact records the sketch's p99/p99.9 against an exact
//!   all-tenant histogram kept alongside,
//! * open requests park on the [`RequestBook`]'s free-listed slab;
//!   peak live slots and resident bytes stand in for peak RSS,
//! * pending arrivals batch in an [`ArrivalWheel`]: the DES heap holds
//!   one tick event plus in-flight sub-I/Os, never the tenant count.
//!
//! Tenant arrival streams are *stateless*: the `k`-th gap of tenant
//! `t` is a pure function of `(seed, t, k)` (a single splitmix64
//! round feeding an exponential), so a million tenants cost no
//! per-tenant generator state, and arrivals at or past the deadline
//! are simply never inserted — the wheel holds
//! `O(aggregate rate × horizon)` entries regardless of the rung.
//!
//! Wall-clock throughput (events/sec) is table-only, like every other
//! wall-derived figure; the JSON artifact stays a pure function of
//! `(experiment, scale)`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use afa_frontend::{ArrivalEntry, ArrivalWheel, RequestBook, SloTarget, SloTracker, SubCompletion};
use afa_sim::metrics::FrontendCounters;
use afa_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulation, World};
use afa_stats::{Json, LatencyHistogram, LatencyProfile, NinesPoint};
use afa_volume::SubIo;

use crate::experiment::registry::ExperimentResult;
use crate::experiment::ExperimentScale;

/// Aggregate request rate across the whole tenant population,
/// requests/sec. Fixed across the ladder: each rung divides the same
/// offered load among more tenants, so events/sec should stay flat —
/// any droop is bookkeeping overhead, which is what the experiment
/// exists to measure.
const AGG_RATE: f64 = 24_000.0;
/// Arrival-wheel slot width and rotation size: 100 µs × 256 slots
/// covers one ~25.6 ms rotation; farther arrivals park in per-rotation
/// overflow buckets.
const SLOT_NS: u64 = 100_000;
const WHEEL_SLOTS: usize = 256;
/// Global admission cap on open requests (the slab's working set).
const MAX_INFLIGHT: usize = 4_096;
/// Per-sub-I/O service model: a floor plus an exponential tail. The
/// fleet experiment is about the serving layer's bookkeeping, not the
/// device model, so service times are drawn directly.
const SUB_FLOOR: SimDuration = SimDuration::micros(80);
const SUB_TAIL_MEAN_NS: f64 = 40_000.0;

/// RNG stream salts (one-shot streams, keyed by tenant and arrival
/// index so the generators carry no per-tenant state).
const ARRIVAL_SALT: u64 = 0xF1EE_7A00_0000_0000;
const SERVICE_SALT: u64 = 0xF1EE_5E00_0000_0000;

/// The tenant ladder a scale affords. Short runs (the golden/test
/// regime, under 0.5 s) stop at 10⁴ so the committed fixture pins the
/// 10k rung; anything longer climbs to the full million.
fn tenant_ladder(scale: ExperimentScale) -> Vec<u64> {
    let cap = if scale.runtime < SimDuration::millis(500) {
        10_000
    } else {
        1_000_000
    };
    [1_000u64, 10_000, 100_000, 1_000_000]
        .into_iter()
        .filter(|&t| t <= cap)
        .collect()
}

/// The 53-bit mantissa behind tenant `t`'s `k`-th uniform draw: one
/// splitmix64 round over the salted key. A full one-shot [`SimRng`]
/// costs five mixing rounds per draw, which the seeding scan pays once
/// per tenant of the rung — at the million-tenant rung that alone
/// rivals the whole simulation, so arrivals ride the single-round mix
/// instead. The `+ 1` shifts the mantissa to `[1, 2⁵³]` so the
/// derived uniform sits in `(0, 1]` and its `ln` stays finite without
/// a rejection loop.
fn arrival_bits(seed: u64, tenant: u32, k: u32) -> u64 {
    let mut key = seed ^ ARRIVAL_SALT ^ ((tenant as u64) << 27) ^ k as u64;
    (afa_sim::rng::splitmix64(&mut key) >> 11) + 1
}

/// [`arrival_bits`] mapped to a float in `(0, 1]`.
fn arrival_u(seed: u64, tenant: u32, k: u32) -> f64 {
    arrival_bits(seed, tenant, k) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The `k`-th inter-arrival gap of tenant `t`: exponential with the
/// per-tenant mean, stateless in `(seed, tenant, k)`.
fn arrival_gap(seed: u64, tenant: u32, k: u32, mean_ns: f64) -> SimDuration {
    SimDuration::nanos((-mean_ns * arrival_u(seed, tenant, k).ln()) as u64)
}

/// One rung of the ladder.
#[derive(Clone, Debug)]
pub struct FleetCell {
    /// Tenant population of the rung.
    pub tenants: u64,
    /// Arrivals drained from the wheel (admitted + shed).
    pub arrivals: u64,
    /// Requests admitted past the in-flight cap.
    pub admitted: u64,
    /// Requests shed at the cap.
    pub shed: u64,
    /// Requests that completed before the drain ended.
    pub finished: u64,
    /// Tenants that finished at least one request (the only ones that
    /// ever allocate a tracker — the ladder's memory is bounded by the
    /// *active* population, not the rung).
    pub active_tenants: u64,
    /// Request-book slab occupancy high-water mark.
    pub slab_peak_live: u64,
    /// Slab slots allocated (never exceeds the peak by design).
    pub slab_slots: u64,
    /// Resident bytes of the slab at the end of the run — the
    /// peak-RSS proxy the regression gate watches.
    pub slab_footprint_bytes: u64,
    /// Most entries the wheel ever held at a tick boundary.
    pub wheel_peak_entries: u64,
    /// Resident bytes of the wheel at the end of the run.
    pub wheel_footprint_bytes: u64,
    /// Per-tenant sketches folded into the cross-tenant rollup.
    pub sketch_merges: u64,
    /// Largest per-tenant tracker footprint, bytes.
    pub sketch_bytes_max: u64,
    /// All-tenant request-latency profile (from the exact histogram).
    pub client: LatencyProfile,
    /// Exact vs sketch-rollup tail estimates, nanoseconds.
    pub p99_exact_ns: u64,
    /// Sketch-rollup p99.
    pub p99_sketch_ns: u64,
    /// Exact p99.9.
    pub p999_exact_ns: u64,
    /// Sketch-rollup p99.9.
    pub p999_sketch_ns: u64,
    /// Simulation events the rung processed (deterministic).
    pub sim_events: u64,
    /// Host wall-clock of the rung. Table-only.
    pub wall: Duration,
}

impl FleetCell {
    /// Relative sketch error at p99 (deterministic — both estimates
    /// are pure functions of the seed).
    pub fn p99_err(&self) -> f64 {
        rel_err(self.p99_sketch_ns, self.p99_exact_ns)
    }

    /// Relative sketch error at p99.9.
    pub fn p999_err(&self) -> f64 {
        rel_err(self.p999_sketch_ns, self.p999_exact_ns)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("tenants", Json::u64(self.tenants)),
            ("arrivals", Json::u64(self.arrivals)),
            ("admitted", Json::u64(self.admitted)),
            ("shed", Json::u64(self.shed)),
            ("finished", Json::u64(self.finished)),
            ("active_tenants", Json::u64(self.active_tenants)),
            ("slab_peak_live", Json::u64(self.slab_peak_live)),
            ("slab_slots", Json::u64(self.slab_slots)),
            ("slab_footprint_bytes", Json::u64(self.slab_footprint_bytes)),
            ("wheel_peak_entries", Json::u64(self.wheel_peak_entries)),
            (
                "wheel_footprint_bytes",
                Json::u64(self.wheel_footprint_bytes),
            ),
            ("sketch_merges", Json::u64(self.sketch_merges)),
            ("sketch_bytes_max", Json::u64(self.sketch_bytes_max)),
            ("p99_exact_ns", Json::u64(self.p99_exact_ns)),
            ("p99_sketch_ns", Json::u64(self.p99_sketch_ns)),
            ("p99_err", Json::f64(self.p99_err())),
            ("p999_exact_ns", Json::u64(self.p999_exact_ns)),
            ("p999_sketch_ns", Json::u64(self.p999_sketch_ns)),
            ("p999_err", Json::f64(self.p999_err())),
            ("sim_events", Json::u64(self.sim_events)),
            ("client", self.client.to_json()),
        ])
    }
}

fn rel_err(approx: u64, exact: u64) -> f64 {
    if exact == 0 {
        return 0.0;
    }
    (approx as f64 - exact as f64).abs() / exact as f64
}

/// Result of the `fleet-arrival` ladder.
#[derive(Clone, Debug)]
pub struct FleetArrivalResult {
    /// Table heading.
    pub title: &'static str,
    /// One cell per rung, smallest population first.
    pub cells: Vec<FleetCell>,
}

impl FleetArrivalResult {
    /// The cell for a tenant population, if that rung ran.
    pub fn cell(&self, tenants: u64) -> Option<&FleetCell> {
        self.cells.iter().find(|c| c.tenants == tenants)
    }
}

impl ExperimentResult for FleetArrivalResult {
    fn to_table(&self) -> String {
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!(
            "{:<9} {:>8} {:>6} {:>8} {:>7} {:>9} {:>10} {:>9} {:>8} {:>9} {:>9} {:>11}\n",
            "tenants",
            "arrivals",
            "shed",
            "finished",
            "active",
            "peak-live",
            "slab(KiB)",
            "per-t(B)",
            "p99err%",
            "p999err%",
            "events",
            "events/sec"
        ));
        for c in &self.cells {
            let secs = c.wall.as_secs_f64().max(1e-9);
            out.push_str(&format!(
                "{:<9} {:>8} {:>6} {:>8} {:>7} {:>9} {:>10.1} {:>9} {:>8.2} {:>9.2} {:>9} {:>11.0}\n",
                c.tenants,
                c.arrivals,
                c.shed,
                c.finished,
                c.active_tenants,
                c.slab_peak_live,
                c.slab_footprint_bytes as f64 / 1024.0,
                c.sketch_bytes_max,
                c.p99_err() * 100.0,
                c.p999_err() * 100.0,
                c.sim_events,
                c.sim_events as f64 / secs,
            ));
        }
        out
    }

    fn to_csv(&self) -> String {
        let mut out = String::from(
            "tenants,arrivals,admitted,shed,finished,active_tenants,slab_peak_live,\
             slab_footprint_bytes,wheel_peak_entries,sketch_merges,sketch_bytes_max,\
             p99_exact_ns,p99_sketch_ns,p999_exact_ns,p999_sketch_ns,sim_events\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                c.tenants,
                c.arrivals,
                c.admitted,
                c.shed,
                c.finished,
                c.active_tenants,
                c.slab_peak_live,
                c.slab_footprint_bytes,
                c.wheel_peak_entries,
                c.sketch_merges,
                c.sketch_bytes_max,
                c.p99_exact_ns,
                c.p99_sketch_ns,
                c.p999_exact_ns,
                c.p999_sketch_ns,
                c.sim_events,
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([(
            "cells",
            Json::arr(self.cells.iter().map(FleetCell::to_json)),
        )])
    }

    fn samples(&self) -> u64 {
        self.cells.iter().map(|c| c.finished).sum()
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.cells
            .iter()
            .map(|c| c.client.get_micros(NinesPoint::Max))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// `fleet-arrival`: the serving layer across the tenant ladder at a
/// fixed aggregate rate.
pub fn fleet_arrival(scale: ExperimentScale) -> FleetArrivalResult {
    // Rungs run sequentially: per-rung wall clocks feed the table's
    // events/sec column, which overlapped runs would skew.
    let cells = tenant_ladder(scale)
        .into_iter()
        .map(|tenants| run_rung(scale, tenants))
        .collect();
    FleetArrivalResult {
        title: "Fleet arrivals — tenant ladder at fixed aggregate rate, sketched tails",
        cells,
    }
}

fn run_rung(scale: ExperimentScale, tenants: u64) -> FleetCell {
    let t0 = Instant::now();
    let mean_gap_ns = tenants as f64 / AGG_RATE * 1e9;
    let deadline = SimTime::ZERO + scale.runtime;
    let width = scale.ssds.clamp(1, 8);

    let mut wheel = ArrivalWheel::new(SLOT_NS, WHEEL_SLOTS);
    // Stateless seeding: only tenants whose first arrival lands before
    // the deadline ever enter the wheel, so its population is bounded
    // by the offered load, not the rung. The certain-skip threshold on
    // the raw uniform (0.1% margin past the deadline, far beyond any
    // float rounding) lets the scan drop the `ln` for the vast
    // majority of a million-tenant rung that cannot arrive inside the
    // horizon; survivors still take the exact gap-vs-deadline test, so
    // the seeded set is identical to the unfiltered loop.
    let deadline_ns = scale.runtime.as_nanos() as f64;
    let skip_below = (-(deadline_ns * 1.001) / mean_gap_ns).exp();
    // Integer form of the threshold: the draw's mantissa `m` maps to
    // `u = m × 2⁻⁵³` exactly, so `m < floor(skip_below × 2⁵³)` implies
    // `u < skip_below` — truncation only makes the skip more
    // conservative, never less.
    let skip_bits = (skip_below * (1u64 << 53) as f64) as u64;
    for t in 0..tenants as u32 {
        let m = arrival_bits(scale.seed, t, 0);
        if m < skip_bits {
            continue;
        }
        let u = m as f64 * (1.0 / (1u64 << 53) as f64);
        let first = SimTime::ZERO + SimDuration::nanos((-mean_gap_ns * u.ln()) as u64);
        if first < deadline {
            wheel.push(first, t, 0);
        }
    }

    // The active population is bounded by min(tenants, arrivals); size
    // the tracker table once so the hot path never rehashes or
    // reallocates mid-run. Pure capacity — invisible in the artifact.
    let active_cap = tenants.min((AGG_RATE * (deadline_ns / 1e9) * 1.25) as u64 + 64) as usize;

    let world = FleetWorld {
        seed: scale.seed,
        mean_gap_ns,
        width,
        deadline,
        wheel,
        book: RequestBook::new(),
        trackers: Vec::with_capacity(active_cap),
        index: HashMap::with_capacity(active_cap),
        exact: LatencyHistogram::new(),
        batch: Vec::new(),
        subs: Vec::new(),
        admitted: 0,
        shed: 0,
        arrivals: 0,
        wheel_peak: 0,
    };
    let mut sim = Simulation::new(world);
    sim.schedule_at(SimTime::ZERO, FleetEvent::Tick);
    sim.run_to_completion();
    let sim_events = sim.events_processed();
    let world = sim.into_world();

    // Cross-tenant rollup: O(1)-per-tenant sketch merges, in tracker
    // insertion order (deterministic — first-completion order).
    let mut rollup = SloTracker::sketched(SloTarget::default_read());
    for (_, tail) in &world.trackers {
        match tail {
            TenantTail::One(lat) => rollup.record(*lat),
            TenantTail::Many(tracker) => rollup.absorb(tracker),
        }
    }
    let sketch_merges = world.trackers.len() as u64;
    let sketch_bytes_max = world
        .trackers
        .iter()
        .map(|(_, tail)| tail.size_bytes() as u64)
        .max()
        .unwrap_or(0);
    let report = rollup.report();

    afa_sim::metrics::add_frontend(FrontendCounters {
        requests_admitted: world.admitted,
        requests_shed: world.shed,
        slab_peak_live: world.book.peak_in_flight() as u64,
        sketch_merges,
        ..FrontendCounters::default()
    });

    FleetCell {
        tenants,
        arrivals: world.arrivals,
        admitted: world.admitted,
        shed: world.shed,
        finished: world.exact.count(),
        active_tenants: world.trackers.len() as u64,
        slab_peak_live: world.book.peak_in_flight() as u64,
        slab_slots: world.book.slots() as u64,
        slab_footprint_bytes: world.book.footprint_bytes() as u64,
        wheel_peak_entries: world.wheel_peak,
        wheel_footprint_bytes: world.wheel.footprint_bytes() as u64,
        sketch_merges,
        sketch_bytes_max,
        client: world.exact.profile(),
        p99_exact_ns: world.exact.value_at_percentile(99.0),
        p99_sketch_ns: report.achieved_ns[1],
        p999_exact_ns: world.exact.value_at_percentile(99.9),
        p999_sketch_ns: report.achieved_ns[2],
        sim_events,
        wall: t0.elapsed(),
    }
}

#[derive(Debug)]
enum FleetEvent {
    /// The wheel's next slot boundary passed: drain due arrivals.
    Tick,
    /// One sub-I/O of an open request finished service.
    SubDone { request: u64, sub: usize },
}

/// Per-tenant tail state. At the million rung the vast majority of
/// active tenants finish exactly one request inside the horizon, so
/// the sketch only materializes on the *second* completion; a lone
/// sample stays inline. Rolling a one-sample tracker into the
/// cross-tenant sketch is state-identical to recording the raw value
/// (same bucket add, same min/max/sum/count), so the artifact cannot
/// tell the difference — only the allocator can.
enum TenantTail {
    One(SimDuration),
    Many(SloTracker),
}

impl TenantTail {
    /// Resident footprint, the per-tenant number the ladder budgets.
    fn size_bytes(&self) -> usize {
        match self {
            TenantTail::One(_) => std::mem::size_of::<Self>(),
            TenantTail::Many(tracker) => tracker.size_bytes(),
        }
    }
}

struct FleetWorld {
    seed: u64,
    mean_gap_ns: f64,
    width: usize,
    deadline: SimTime,
    wheel: ArrivalWheel,
    book: RequestBook,
    /// Lazily-allocated per-tenant trackers, in first-completion
    /// order; only active tenants pay for any state at all, and only
    /// repeat finishers pay for a sketch.
    trackers: Vec<(u32, TenantTail)>,
    index: HashMap<u32, u32>,
    /// Exact all-tenant histogram the sketch rollup is judged against.
    exact: LatencyHistogram,
    batch: Vec<ArrivalEntry>,
    subs: Vec<SubIo>,
    admitted: u64,
    shed: u64,
    arrivals: u64,
    wheel_peak: u64,
}

impl FleetWorld {
    fn on_arrival(&mut self, entry: ArrivalEntry, sched: &mut Scheduler<'_, FleetEvent>) {
        self.arrivals += 1;
        // Chain the tenant's next arrival before serving this one;
        // gaps are stateless one-shot draws, and at-or-past-deadline
        // arrivals are never inserted.
        let next = entry.at + arrival_gap(self.seed, entry.tenant, entry.k + 1, self.mean_gap_ns);
        if next < self.deadline {
            self.wheel.push(next, entry.tenant, entry.k + 1);
        }
        if self.book.in_flight() >= MAX_INFLIGHT {
            self.shed += 1;
            return;
        }
        self.admitted += 1;
        self.subs.clear();
        self.subs.extend((0..self.width).map(|m| SubIo {
            member: m,
            lba: ((entry.tenant as u64) << 24) | entry.k as u64,
            bytes: 4096,
        }));
        let request = self
            .book
            .begin(entry.tenant as usize, entry.at, entry.at, &self.subs);
        // Per-sub service: floor + exponential tail from a one-shot
        // stream keyed by the request, never scheduled into the past
        // (the batch drain can run a slot width behind the arrival).
        let now = sched.now();
        let stream = SERVICE_SALT ^ ((entry.tenant as u64) << 27) ^ entry.k as u64;
        let mut rng = SimRng::from_seed_and_stream(self.seed, stream);
        for sub in 0..self.width {
            let service = SUB_FLOOR + SimDuration::nanos(rng.exponential(SUB_TAIL_MEAN_NS) as u64);
            sched.at(
                (entry.at + service).max(now),
                FleetEvent::SubDone { request, sub },
            );
        }
    }
}

impl World for FleetWorld {
    type Event = FleetEvent;

    fn handle(&mut self, event: FleetEvent, sched: &mut Scheduler<'_, FleetEvent>) {
        match event {
            FleetEvent::Tick => {
                let now = sched.now();
                let mut batch = std::mem::take(&mut self.batch);
                // Chained pushes can land at or before `now`; loop
                // until the wheel has nothing due.
                loop {
                    batch.clear();
                    if self.wheel.drain_due(now, &mut batch) == 0 {
                        break;
                    }
                    for &entry in &batch {
                        self.on_arrival(entry, sched);
                    }
                }
                self.batch = batch;
                self.wheel_peak = self.wheel_peak.max(self.wheel.len() as u64);
                if let Some(due) = self.wheel.next_due() {
                    sched.at(due, FleetEvent::Tick);
                }
            }
            FleetEvent::SubDone { request, sub } => {
                let now = sched.now();
                if let SubCompletion::Finished(fin) =
                    self.book.complete_sub(request, sub, now, false)
                {
                    let latency = fin.latency();
                    self.exact.record(latency.as_nanos());
                    let tenant = fin.tenant as u32;
                    match self.index.entry(tenant) {
                        Entry::Vacant(v) => {
                            v.insert(self.trackers.len() as u32);
                            self.trackers.push((tenant, TenantTail::One(latency)));
                        }
                        Entry::Occupied(slot) => {
                            let tail = &mut self.trackers[*slot.get() as usize].1;
                            match tail {
                                TenantTail::One(prev) => {
                                    let mut tracker =
                                        SloTracker::sketched(SloTarget::default_read());
                                    tracker.record(*prev);
                                    tracker.record(latency);
                                    *tail = TenantTail::Many(tracker);
                                }
                                TenantTail::Many(tracker) => tracker.record(latency),
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale_quick() -> ExperimentScale {
        ExperimentScale::new(SimDuration::millis(250), 8, 42)
    }

    #[test]
    fn short_runs_stop_at_ten_thousand_tenants() {
        assert_eq!(tenant_ladder(scale_quick()), vec![1_000, 10_000]);
        let full = ExperimentScale::new(SimDuration::secs(1), 8, 42);
        assert_eq!(tenant_ladder(full), vec![1_000, 10_000, 100_000, 1_000_000]);
    }

    #[test]
    fn ladder_holds_rate_and_bounds_memory() {
        let result = fleet_arrival(scale_quick());
        assert_eq!(result.cells.len(), 2);
        let small = result.cell(1_000).expect("1k rung");
        let big = result.cell(10_000).expect("10k rung");
        // Fixed aggregate rate: the offered load (and the work) must
        // not scale with the population.
        let ratio = big.arrivals as f64 / small.arrivals.max(1) as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "arrivals must stay flat across rungs: {} vs {}",
            small.arrivals,
            big.arrivals
        );
        for c in &result.cells {
            assert!(
                c.finished > 1_000,
                "{} rung finished {}",
                c.tenants,
                c.finished
            );
            assert!(c.shed == 0, "cap must not shed at this load");
            // The slab never grows past the in-flight peak, and the
            // wheel never holds anywhere near the population.
            assert!(c.slab_slots <= c.slab_peak_live);
            assert!(c.wheel_peak_entries < c.tenants.max(2_000));
            // Per-tenant accounting stays under the 1 KiB sketch
            // budget.
            assert!(
                c.sketch_bytes_max < 1_024,
                "per-tenant tracker grew to {} bytes",
                c.sketch_bytes_max
            );
            assert_eq!(c.sketch_merges, c.active_tenants);
            // The sketch rollup tracks the exact tail within its
            // configured relative-error bound (plus bucketing slack).
            assert!(c.p99_err() < 0.10, "p99 err {}", c.p99_err());
            assert!(c.p999_err() < 0.10, "p99.9 err {}", c.p999_err());
        }
    }

    #[test]
    fn artifacts_are_deterministic_and_wall_free() {
        let scale = ExperimentScale::new(SimDuration::millis(60), 4, 9);
        let a = fleet_arrival(scale).to_json().to_string();
        let b = fleet_arrival(scale).to_json().to_string();
        assert_eq!(a, b, "same seed must serialize byte-identically");
        assert!(!a.contains("wall"), "wall-clock leaked into the artifact");
        assert!(!a.contains("events_per_sec"));
    }

    #[test]
    fn fleet_flushes_slab_and_sketch_counters() {
        let before = afa_sim::metrics::frontend_totals();
        let result = fleet_arrival(ExperimentScale::new(SimDuration::millis(60), 4, 11));
        let delta = afa_sim::metrics::frontend_totals().since(&before);
        assert!(delta.requests_admitted >= result.cells[0].admitted);
        assert!(delta.slab_peak_live > 0, "slab peak must flush");
        assert!(delta.sketch_merges > 0, "sketch merges must flush");
    }
}
