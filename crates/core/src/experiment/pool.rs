//! Bounded parallel map for experiment sweeps.
//!
//! Experiments fan out over independent configurations (Fig. 12's four
//! kernels, Fig. 13's run matrix, the ablation sweeps). Spawning one OS
//! thread per configuration oversubscribes the machine as soon as a
//! sweep is wider than the core count, so this module provides
//! [`map_bounded`]: a work-stealing map over at most
//! [`worker_cap`] worker threads that preserves input order. Each item
//! still runs exactly once with whatever seed its configuration
//! carries, so results are identical to a sequential map.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

/// Maximum worker threads a sweep may occupy: the machine's available
/// parallelism (1 if it cannot be determined).
pub fn worker_cap() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a bounded worker pool and returns the
/// results **in input order**.
///
/// At most `min(worker_cap(), items.len())` threads run concurrently;
/// idle workers steal the next unclaimed item, so a sweep of 64
/// configurations on a 12-core machine keeps all cores busy without
/// spawning 64 threads.
pub fn map_bounded<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_cap().min(n);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let slots = &slots;
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    return;
                }
                let item = slots[idx]
                    .lock()
                    .expect("pool slot poisoned")
                    .take()
                    .expect("pool slot claimed twice");
                let _ = tx.send((idx, f(item)));
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (idx, result) in rx {
            out[idx] = Some(result);
        }
        out.into_iter()
            .map(|r| r.expect("worker delivered every claimed item"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicIsize;

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map_bounded(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = map_bounded(items, |x| x * 3);
        assert_eq!(out, (0..200).map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrency_never_exceeds_the_cap() {
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let out = map_bounded((0..256).collect::<Vec<u64>>(), |x| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(out.len(), 256);
        let peak = peak.load(Ordering::SeqCst);
        assert!(
            peak as usize <= worker_cap(),
            "peak concurrency {peak} exceeded cap {}",
            worker_cap()
        );
        assert!(peak >= 1);
    }

    #[test]
    fn single_item_runs_inline_shape() {
        let out = map_bounded(vec![41u64], |x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn worker_cap_is_positive() {
        assert!(worker_cap() >= 1);
    }
}
