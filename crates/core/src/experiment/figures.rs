//! Runners for Fig. 6 – Fig. 14.

use afa_sim::SimDuration;
use afa_stats::series::{median_spike_gap, LogPoint};
use afa_stats::{Json, LatencyProfile, NinesPoint, OnlineStats, ProfileSummary};

use crate::config::AfaConfig;
use crate::experiment::registry::ExperimentResult;
use crate::experiment::{run_parallel, ExperimentScale};
use crate::geometry::Table2Row;
use crate::system::{AfaSystem, RunResult};
use crate::tuning::TuningStage;

/// Per-device latency distributions for one configuration — the data
/// behind one of the paper's distribution figures (Fig. 6–9, 11, 13).
#[derive(Clone, Debug)]
pub struct FigureDistributions {
    /// Figure label.
    pub label: String,
    /// One latency profile per SSD.
    pub profiles: Vec<LatencyProfile>,
    /// Cross-device mean ± std per metric.
    pub summary: ProfileSummary,
}

impl FigureDistributions {
    fn from_profiles(label: impl Into<String>, profiles: Vec<LatencyProfile>) -> Self {
        let summary = ProfileSummary::from_profiles(&profiles);
        FigureDistributions {
            label: label.into(),
            profiles,
            summary,
        }
    }

    /// Largest per-device maximum, µs.
    pub fn worst_max_us(&self) -> f64 {
        self.profiles
            .iter()
            .map(|p| p.get_micros(NinesPoint::Max))
            .fold(0.0, f64::max)
    }

    /// Renders the distribution envelope: per metric, the min / mean /
    /// max across devices (the visual spread of the figure's 64
    /// lines).
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{} — {} devices, {} samples/device\n",
            self.label,
            self.profiles.len(),
            self.profiles.first().map_or(0, LatencyProfile::samples)
        );
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}\n",
            "metric", "lo(us)", "mean(us)", "hi(us)", "std(us)"
        ));
        for (point, m) in self.summary.iter() {
            out.push_str(&format!(
                "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>12.1}\n",
                point.label(),
                m.min_us,
                m.mean_us,
                m.max_us,
                m.std_us
            ));
        }
        out
    }

    /// Renders one CSV row per device (columns: the seven metrics in
    /// µs), like the 64 lines of the paper's plots.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("device,avg,p99,p999,p9999,p99999,p999999,max\n");
        for (d, p) in self.profiles.iter().enumerate() {
            out.push_str(&format!("{d},{}\n", p.to_csv_row()));
        }
        out
    }

    /// Total samples behind the figure.
    pub fn total_samples(&self) -> u64 {
        self.profiles.iter().map(LatencyProfile::samples).sum()
    }

    /// Serializes the figure: label, summary, per-device profiles.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            ("devices", Json::u64(self.profiles.len() as u64)),
            ("summary", self.summary.to_json()),
            (
                "profiles",
                Json::arr(self.profiles.iter().map(LatencyProfile::to_json)),
            ),
        ])
    }
}

impl ExperimentResult for FigureDistributions {
    fn to_table(&self) -> String {
        FigureDistributions::to_table(self)
    }

    fn to_csv(&self) -> String {
        FigureDistributions::to_csv(self)
    }

    fn to_json(&self) -> Json {
        FigureDistributions::to_json(self)
    }

    fn samples(&self) -> u64 {
        self.total_samples()
    }

    fn headline_max_us(&self) -> Option<f64> {
        Some(self.worst_max_us())
    }
}

/// Runs one tuning stage at the given scale and returns its
/// distribution figure.
pub fn run_stage(stage: TuningStage, scale: ExperimentScale) -> FigureDistributions {
    let config = AfaConfig::paper(stage)
        .with_ssds(scale.ssds)
        .with_runtime(scale.runtime)
        .with_seed(scale.seed);
    let result = AfaSystem::run(&config);
    figure_from_result(format!("{stage}"), &result)
}

fn figure_from_result(label: String, result: &RunResult) -> FigureDistributions {
    let profiles = result.reports.iter().map(|r| r.profile()).collect();
    FigureDistributions::from_profiles(label, profiles)
}

/// Fig. 6: latency distributions of 64 SSDs, default configuration.
pub fn fig6(scale: ExperimentScale) -> FigureDistributions {
    run_stage(TuningStage::Default, scale)
}

/// Fig. 7: + fio at SCHED_FIFO 99 (`chrt`).
pub fn fig7(scale: ExperimentScale) -> FigureDistributions {
    run_stage(TuningStage::Chrt, scale)
}

/// Fig. 8: + CPU isolation boot options.
pub fn fig8(scale: ExperimentScale) -> FigureDistributions {
    run_stage(TuningStage::Isolcpus, scale)
}

/// Fig. 9: + IRQ affinity pinned for all 2,560 vectors.
pub fn fig9(scale: ExperimentScale) -> FigureDistributions {
    run_stage(TuningStage::IrqAffinity, scale)
}

/// Fig. 11: + experimental firmware (SMART disabled).
pub fn fig11(scale: ExperimentScale) -> FigureDistributions {
    run_stage(TuningStage::ExperimentalFirmware, scale)
}

/// The Fig. 10 scatter data: per-sample latency logs from 32 SSDs
/// under the Fig. 9 configuration, showing periodic SMART spikes.
#[derive(Clone, Debug)]
pub struct Fig10Scatter {
    /// Retained `(sample index, latency)` points per device.
    pub points_per_device: Vec<Vec<LogPoint>>,
    /// Spikes (> 200 µs) per device.
    pub spikes_per_device: Vec<usize>,
    /// Median gap between consecutive spikes, in samples, per device
    /// (where ≥ 2 spikes were seen).
    pub spike_gaps: Vec<u64>,
    /// Mean completion latency, ns (to convert gaps to seconds).
    pub mean_latency_ns: f64,
}

impl Fig10Scatter {
    /// Estimated housekeeping period in seconds from the spike gaps.
    pub fn estimated_period_secs(&self) -> Option<f64> {
        if self.spike_gaps.is_empty() {
            return None;
        }
        let mut gaps = self.spike_gaps.clone();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        Some(median as f64 * self.mean_latency_ns / 1e9)
    }

    /// Renders a summary table.
    pub fn to_table(&self) -> String {
        let total_points: usize = self.points_per_device.iter().map(Vec::len).sum();
        let total_spikes: usize = self.spikes_per_device.iter().sum();
        let mut out = String::from("Fig. 10 — latency scatter, 32 SSDs, production firmware\n");
        out.push_str(&format!("retained points : {total_points}\n"));
        out.push_str(&format!("spikes > 200 us : {total_spikes}\n"));
        match self.estimated_period_secs() {
            Some(p) => out.push_str(&format!(
                "spike period    : ~{p:.1} s (SMART housekeeping)\n"
            )),
            None => out.push_str("spike period    : run too short to estimate\n"),
        }
        out
    }

    /// CSV of all retained points (`device,index,latency_us`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("device,index,latency_us\n");
        for (d, points) in self.points_per_device.iter().enumerate() {
            for p in points {
                out.push_str(&format!(
                    "{d},{},{:.1}\n",
                    p.index,
                    p.latency_ns as f64 / 1e3
                ));
            }
        }
        out
    }
}

impl ExperimentResult for Fig10Scatter {
    fn to_table(&self) -> String {
        Fig10Scatter::to_table(self)
    }

    fn to_csv(&self) -> String {
        Fig10Scatter::to_csv(self)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("devices", Json::u64(self.points_per_device.len() as u64)),
            (
                "retained_points",
                Json::u64(self.points_per_device.iter().map(Vec::len).sum::<usize>() as u64),
            ),
            (
                "spikes_per_device",
                Json::arr(self.spikes_per_device.iter().map(|&n| Json::u64(n as u64))),
            ),
            (
                "spike_gaps",
                Json::arr(self.spike_gaps.iter().map(|&g| Json::u64(g))),
            ),
            ("mean_latency_ns", Json::f64(self.mean_latency_ns)),
            (
                "estimated_period_secs",
                self.estimated_period_secs().map_or(Json::Null, Json::f64),
            ),
        ])
    }

    fn samples(&self) -> u64 {
        self.points_per_device.iter().map(Vec::len).sum::<usize>() as u64
    }
}

/// Fig. 10: run 32 SSDs (the paper halves the count because latency
/// logging itself perturbs a 64-SSD run) with per-sample logging under
/// the Fig. 9 kernel and production firmware.
pub fn fig10(scale: ExperimentScale) -> Fig10Scatter {
    let ssds = scale.ssds.min(32);
    let config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_ssds(ssds)
        .with_runtime(scale.runtime)
        .with_seed(scale.seed)
        .with_logging(true);
    let result = AfaSystem::run(&config);

    let mut points_per_device = Vec::with_capacity(ssds);
    let mut spikes_per_device = Vec::with_capacity(ssds);
    let mut spike_gaps = Vec::new();
    let mut mean = OnlineStats::new();
    for report in &result.reports {
        mean.push(report.histogram().mean());
        let log = report.latency_log().expect("logging enabled");
        let spikes = log.spike_indices(200_000);
        spikes_per_device.push(spikes.len());
        if let Some(gap) = median_spike_gap(&spikes) {
            spike_gaps.push(gap);
        }
        points_per_device.push(log.points().to_vec());
    }
    Fig10Scatter {
        points_per_device,
        spikes_per_device,
        spike_gaps,
        mean_latency_ns: mean.mean(),
    }
}

/// Fig. 12: the four kernel configurations side by side — mean and
/// std of each latency metric across the array, plus the headline
/// improvement factors.
#[derive(Clone, Debug)]
pub struct Fig12Comparison {
    /// `(stage, summary)` per kernel configuration, in ladder order.
    pub stages: Vec<(TuningStage, ProfileSummary)>,
}

impl Fig12Comparison {
    /// Mean of the per-device max for `stage`, µs.
    pub fn mean_max_us(&self, stage: TuningStage) -> f64 {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, sum)| sum.get(NinesPoint::Max).mean_us)
            .unwrap_or(0.0)
    }

    /// Std of the per-device max for `stage`, µs.
    pub fn std_max_us(&self, stage: TuningStage) -> f64 {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, sum)| sum.get(NinesPoint::Max).std_us)
            .unwrap_or(0.0)
    }

    /// The abstract's headline: improvement of mean(max) from default
    /// to the fully tuned kernel (paper: ×8).
    pub fn mean_max_improvement(&self) -> f64 {
        let base = self.mean_max_us(TuningStage::Default);
        let tuned = self.mean_max_us(TuningStage::IrqAffinity);
        if tuned <= 0.0 {
            0.0
        } else {
            base / tuned
        }
    }

    /// The abstract's headline: improvement of std(max) (paper: ×400,
    /// 1 644 → 4).
    pub fn std_max_improvement(&self) -> f64 {
        let base = self.std_max_us(TuningStage::Default);
        let tuned = self.std_max_us(TuningStage::IrqAffinity);
        if tuned <= 0.0 {
            0.0
        } else {
            base / tuned
        }
    }

    /// Renders the two Fig. 12 charts (average and standard deviation
    /// per metric, one column per configuration) as tables.
    pub fn to_table(&self) -> String {
        let mut out = String::from("Fig. 12 — comparison of four system configurations\n\n");
        for (title, pick) in [
            ("average (us)", 0usize),
            ("standard deviation (us)", 1usize),
        ] {
            out.push_str(&format!("{title}:\n{:<10}", "metric"));
            for (stage, _) in &self.stages {
                out.push_str(&format!(" {:>12}", stage.label()));
            }
            out.push('\n');
            for point in NinesPoint::ALL {
                out.push_str(&format!("{:<10}", point.label()));
                for (_, summary) in &self.stages {
                    let m = summary.get(point);
                    let v = if pick == 0 { m.mean_us } else { m.std_us };
                    out.push_str(&format!(" {v:>12.1}"));
                }
                out.push('\n');
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "mean(max) improvement default→irq : x{:.1} (paper: x8)\n",
            self.mean_max_improvement()
        ));
        out.push_str(&format!(
            "std(max)  improvement default→irq : x{:.0} (paper: x400, 1644→4)\n",
            self.std_max_improvement()
        ));
        out
    }

    /// One CSV row per `(stage, metric)`: cross-device mean and std.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stage,metric,mean_us,std_us\n");
        for (stage, summary) in &self.stages {
            for point in NinesPoint::ALL {
                let m = summary.get(point);
                out.push_str(&format!(
                    "{},{},{:.3},{:.3}\n",
                    stage.label(),
                    point.key(),
                    m.mean_us,
                    m.std_us
                ));
            }
        }
        out
    }
}

impl ExperimentResult for Fig12Comparison {
    fn to_table(&self) -> String {
        Fig12Comparison::to_table(self)
    }

    fn to_csv(&self) -> String {
        Fig12Comparison::to_csv(self)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "stages",
                Json::arr(self.stages.iter().map(|(stage, summary)| {
                    Json::obj([
                        ("stage", Json::str(stage.label())),
                        ("summary", summary.to_json()),
                    ])
                })),
            ),
            (
                "mean_max_improvement",
                Json::f64(self.mean_max_improvement()),
            ),
            ("std_max_improvement", Json::f64(self.std_max_improvement())),
        ])
    }

    fn headline_max_us(&self) -> Option<f64> {
        Some(self.mean_max_us(TuningStage::Default))
    }
}

/// Fig. 12: runs the four kernel-configuration stages (in parallel)
/// and aggregates.
pub fn fig12(scale: ExperimentScale) -> Fig12Comparison {
    let configs: Vec<AfaConfig> = TuningStage::KERNEL_LADDER
        .iter()
        .map(|&stage| {
            AfaConfig::paper(stage)
                .with_ssds(scale.ssds)
                .with_runtime(scale.runtime)
                .with_seed(scale.seed)
        })
        .collect();
    let results = run_parallel(configs);
    let stages = TuningStage::KERNEL_LADDER
        .iter()
        .zip(results.iter())
        .map(|(&stage, result)| {
            let profiles: Vec<LatencyProfile> =
                result.reports.iter().map(|r| r.profile()).collect();
            (stage, ProfileSummary::from_profiles(&profiles))
        })
        .collect();
    Fig12Comparison { stages }
}

/// Results of the Fig. 13 sweep (and the data Fig. 14 aggregates).
#[derive(Clone, Debug)]
pub struct Fig13Results {
    /// Per Table II row: merged distributions over all 64 SSDs.
    pub rows: Vec<(Table2Row, FigureDistributions)>,
    /// Aggregate QD1 throughput of the row-(a) run, GB/s (§IV-G's
    /// 8.3 GB/s < 16 GB/s uplink argument).
    pub row_a_aggregate_gbps: f64,
}

impl Fig13Results {
    /// Fig. 14's view: `(row, summary)` per configuration.
    pub fn summaries(&self) -> Vec<(Table2Row, ProfileSummary)> {
        self.rows
            .iter()
            .map(|(row, fig)| (*row, fig.summary.clone()))
            .collect()
    }

    /// Renders all four rows.
    pub fn to_table(&self) -> String {
        let mut out = String::from("Fig. 13 — latency vs. SSDs per physical CPU core\n\n");
        for (row, fig) in &self.rows {
            out.push_str(&format!(
                "{} — {} SSDs/core, {} threads/run, {} run(s):\n",
                row.label(),
                row.ssds_per_core(),
                row.threads_per_run(),
                row.runs()
            ));
            out.push_str(&fig.to_table());
            out.push('\n');
        }
        out.push_str(&format!(
            "row (a) aggregate: {:.1} GB/s issued by 64 QD1 threads (paper: 8.3 GB/s; \
             uplink 16 GB/s, devices 108 GB/s)\n",
            self.row_a_aggregate_gbps
        ));
        out
    }

    /// One CSV row per `(Table II row, device)`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("row,device,avg,p99,p999,p9999,p99999,p999999,max\n");
        for (row, fig) in &self.rows {
            for (d, p) in fig.profiles.iter().enumerate() {
                out.push_str(&format!("{},{d},{}\n", row.label(), p.to_csv_row()));
            }
        }
        out
    }
}

impl ExperimentResult for Fig13Results {
    fn to_table(&self) -> String {
        Fig13Results::to_table(self)
    }

    fn to_csv(&self) -> String {
        Fig13Results::to_csv(self)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "rows",
                Json::arr(self.rows.iter().map(|(row, fig)| {
                    Json::obj([
                        ("row", Json::str(row.label())),
                        ("distributions", fig.to_json()),
                    ])
                })),
            ),
            ("row_a_aggregate_gbps", Json::f64(self.row_a_aggregate_gbps)),
        ])
    }

    fn samples(&self) -> u64 {
        self.rows.iter().map(|(_, fig)| fig.total_samples()).sum()
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.rows
            .iter()
            .map(|(_, fig)| fig.worst_max_us())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// The Fig. 14 aggregation as a first-class result (the Fig. 13 runs'
/// mean/std summaries per Table II row).
#[derive(Clone, Debug)]
pub struct Fig14Result {
    /// `(row, summary)` per configuration.
    pub summaries: Vec<(Table2Row, ProfileSummary)>,
}

impl ExperimentResult for Fig14Result {
    fn to_table(&self) -> String {
        render_fig14(&self.summaries)
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("row,metric,mean_us,std_us\n");
        for (row, summary) in &self.summaries {
            for point in NinesPoint::ALL {
                let m = summary.get(point);
                out.push_str(&format!(
                    "{},{},{:.3},{:.3}\n",
                    row.label(),
                    point.key(),
                    m.mean_us,
                    m.std_us
                ));
            }
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::arr(self.summaries.iter().map(|(row, summary)| {
            Json::obj([
                ("row", Json::str(row.label())),
                ("summary", summary.to_json()),
            ])
        }))
    }
}

/// Fig. 13: the Table II sweep under the fully tuned kernel. Each row
/// runs its disjoint SSD sets (in parallel) and merges the per-device
/// profiles of all 64 SSDs.
pub fn fig13(scale: ExperimentScale) -> Fig13Results {
    let mut rows = Vec::new();
    let mut row_a_gbps = 0.0;
    for row in Table2Row::ALL {
        let geometries = row.run_geometries();
        let configs: Vec<AfaConfig> = geometries
            .iter()
            .enumerate()
            .map(|(i, (_, geometry))| {
                AfaConfig::paper(TuningStage::IrqAffinity)
                    .with_geometry(geometry.clone())
                    .with_runtime(scale.runtime)
                    .with_seed(scale.seed.wrapping_add(i as u64 * 7_919))
            })
            .collect();
        let results = run_parallel(configs);
        if row == Table2Row::A {
            row_a_gbps = results[0].aggregate_gbps(scale.runtime);
        }
        let mut profiles = vec![None; 64];
        for ((ssds, _), result) in geometries.iter().zip(results.iter()) {
            for (slot, &global) in ssds.iter().enumerate() {
                profiles[global] = Some(result.reports[slot].profile());
            }
        }
        let profiles: Vec<LatencyProfile> = profiles.into_iter().flatten().collect();
        rows.push((
            row,
            FigureDistributions::from_profiles(row.label().to_owned(), profiles),
        ));
    }
    Fig13Results {
        rows,
        row_a_aggregate_gbps: row_a_gbps,
    }
}

/// Fig. 13 and Fig. 14 share the same runs; this returns both views.
pub fn fig13_and_14(scale: ExperimentScale) -> (Fig13Results, Vec<(Table2Row, ProfileSummary)>) {
    let results = fig13(scale);
    let summaries = results.summaries();
    (results, summaries)
}

/// Fig. 14: mean and std of each metric for the Fig. 13 setups.
pub fn fig14(scale: ExperimentScale) -> Vec<(Table2Row, ProfileSummary)> {
    fig13(scale).summaries()
}

/// Renders the Fig. 14 charts as a table.
pub fn render_fig14(summaries: &[(Table2Row, ProfileSummary)]) -> String {
    let mut out = String::from("Fig. 14 — comparison of SSDs-per-core setups\n\n");
    for (title, pick) in [("average (us)", 0usize), ("standard deviation (us)", 1)] {
        out.push_str(&format!("{title}:\n{:<10}", "metric"));
        for (row, _) in summaries {
            out.push_str(&format!(" {:>12}", row.label()));
        }
        out.push('\n');
        for point in NinesPoint::ALL {
            out.push_str(&format!("{:<10}", point.label()));
            for (_, summary) in summaries {
                let m = summary.get(point);
                let v = if pick == 0 { m.mean_us } else { m.std_us };
                out.push_str(&format!(" {v:>12.1}"));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

// Keep the scale-dependent runtime accessible for fig13's fraction of
// a second logic if needed later.
#[allow(dead_code)]
fn min_runtime() -> SimDuration {
    SimDuration::millis(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentScale {
        ExperimentScale::quick()
    }

    #[test]
    fn fig6_produces_profiles_for_all_devices() {
        let fig = fig6(quick());
        assert_eq!(fig.profiles.len(), quick().ssds);
        assert!(fig.worst_max_us() > 30.0);
        assert!(fig.to_table().contains("default"));
        assert!(fig.to_csv().lines().count() == quick().ssds + 1);
    }

    #[test]
    fn fig12_has_four_stages_in_order() {
        let cmp = fig12(quick());
        let stages: Vec<TuningStage> = cmp.stages.iter().map(|(s, _)| *s).collect();
        assert_eq!(stages, TuningStage::KERNEL_LADDER.to_vec());
        let table = cmp.to_table();
        assert!(table.contains("default"));
        assert!(table.contains("irq"));
        assert!(table.contains("improvement"));
    }

    #[test]
    fn fig10_collects_scatter_points() {
        let scatter = fig10(ExperimentScale::new(SimDuration::millis(100), 4, 42));
        assert_eq!(scatter.points_per_device.len(), 4);
        for points in &scatter.points_per_device {
            assert!(!points.is_empty());
        }
        assert!(scatter.to_csv().starts_with("device,index,latency_us"));
    }
}
