//! Uplink-saturation check (§III-B's preliminary evaluation).
//!
//! "In our preliminary evaluation, we observed the throughput of
//! sequential reads was high enough all the time to fully saturate
//! available PCIe bandwidths." This experiment reproduces that
//! observation: many-deep sequential reads from all devices must pin
//! the Gen3 x16 uplink (~15.75 GB/s usable), while 4 KiB QD1 random
//! reads stay well below it (§IV-G's 8.3 GB/s argument).

use afa_sim::SimDuration;
use afa_stats::Json;
use afa_workload::RwPattern;

use crate::config::AfaConfig;
use crate::experiment::registry::ExperimentResult;
use crate::experiment::ExperimentScale;
use crate::system::AfaSystem;
use crate::tuning::TuningStage;

/// Result of the saturation check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SaturationResult {
    /// Aggregate sequential-read throughput, GB/s.
    pub seq_read_gbps: f64,
    /// Usable uplink bandwidth, GB/s.
    pub uplink_gbps: f64,
    /// Aggregate 4 KiB QD1 random-read throughput, GB/s (the §IV-G
    /// 8.3 GB/s figure).
    pub qd1_rand_gbps: f64,
}

impl SaturationResult {
    /// Sequential utilization of the uplink (1.0 = saturated).
    pub fn seq_utilization(&self) -> f64 {
        self.seq_read_gbps / self.uplink_gbps
    }

    /// Renders the check.
    pub fn to_table(&self) -> String {
        format!(
            "Uplink saturation (§III-B preliminary / §IV-G):\n\
             sequential reads : {:.2} GB/s ({:.0}% of the {:.2} GB/s uplink)\n\
             QD1 random reads : {:.2} GB/s (paper: 8.3 GB/s, comfortably below)\n",
            self.seq_read_gbps,
            self.seq_utilization() * 100.0,
            self.uplink_gbps,
            self.qd1_rand_gbps
        )
    }
}

impl ExperimentResult for SaturationResult {
    fn to_table(&self) -> String {
        SaturationResult::to_table(self)
    }

    fn to_csv(&self) -> String {
        format!(
            "metric,gbps\nseq_read,{:.3}\nuplink,{:.3}\nqd1_rand,{:.3}\n",
            self.seq_read_gbps, self.uplink_gbps, self.qd1_rand_gbps
        )
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("seq_read_gbps", Json::f64(self.seq_read_gbps)),
            ("uplink_gbps", Json::f64(self.uplink_gbps)),
            ("qd1_rand_gbps", Json::f64(self.qd1_rand_gbps)),
            ("seq_utilization", Json::f64(self.seq_utilization())),
        ])
    }
}

/// Runs both workloads at the given scale.
pub fn uplink_saturation(scale: ExperimentScale) -> SaturationResult {
    // Sequential: big blocks, deep queues — the paper's "preliminary"
    // test. 128 KiB at QD8 per device; 16 devices already out-supply
    // the uplink several times over.
    let runtime = scale.runtime.min(SimDuration::secs(2));
    let seq_config = {
        let mut config = AfaConfig::paper(TuningStage::IrqAffinity)
            .with_ssds(scale.ssds)
            .with_runtime(runtime)
            .with_seed(scale.seed)
            .with_rw(RwPattern::SeqRead);
        config.block_size = 131_072;
        config.iodepth = 8;
        config
    };
    let seq = AfaSystem::run(&seq_config);

    let rand_config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_ssds(scale.ssds)
        .with_runtime(runtime)
        .with_seed(scale.seed);
    let rand = AfaSystem::run(&rand_config);

    SaturationResult {
        seq_read_gbps: seq.aggregate_gbps(runtime),
        uplink_gbps: 15.75,
        qd1_rand_gbps: rand.aggregate_gbps(runtime),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_saturates_and_qd1_does_not() {
        let scale = ExperimentScale::new(SimDuration::millis(150), 32, 42);
        let result = uplink_saturation(scale);
        assert!(
            result.seq_utilization() > 0.85,
            "sequential reads must pin the uplink: {:.2} GB/s",
            result.seq_read_gbps
        );
        assert!(
            result.seq_utilization() <= 1.02,
            "cannot exceed the physical link: {:.2} GB/s",
            result.seq_read_gbps
        );
        // Half the array at QD1 → roughly half of 8.3 GB/s.
        assert!(
            result.qd1_rand_gbps < result.seq_read_gbps / 2.0,
            "QD1 random must sit far below saturation"
        );
        assert!(result.to_table().contains("saturation"));
    }
}
