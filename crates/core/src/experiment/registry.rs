//! The experiment registry: every figure, table and ablation of the
//! reproduction as a first-class, named, runnable object.
//!
//! Three layers:
//!
//! * [`ExperimentResult`] — what every experiment returns: a paper
//!   table ([`ExperimentResult::to_table`]), a plotting CSV
//!   ([`ExperimentResult::to_csv`]) and a machine-readable JSON
//!   document ([`ExperimentResult::to_json`]).
//! * [`Experiment`] / [`ExperimentDef`] — a named, described runner.
//!   The static [`registry`] lists one [`ExperimentDef`] per artifact;
//!   [`find`] resolves a name.
//! * [`run_experiment`] — runs a definition at an [`ExperimentScale`]
//!   and wraps the result with a [`RunManifest`]: seed, scale, stage,
//!   wall-clock, sample count and a per-[`Cause`] latency budget
//!   measured by a deterministic attribution probe.
//!
//! Everything in the JSON artifact is a pure function of
//! `(experiment, scale)` — host wall-clock is carried in the manifest
//! struct and rendered in tables, but serialized as `null` so two runs
//! with the same seed emit byte-identical JSON.

use std::time::Duration;
use std::time::Instant;

use afa_sim::metrics::{CompletionCounters, FleetCounters, FrontendCounters, FusionCounters};
use afa_sim::trace::{Cause, CauseBudget};
use afa_sim::SimDuration;
use afa_stats::Json;

use crate::config::AfaConfig;
use crate::experiment::{self, ExperimentScale};
use crate::system::AfaSystem;
use crate::tuning::TuningStage;

/// Uniform interface over every experiment's result object.
pub trait ExperimentResult {
    /// Paper-style human-readable table.
    fn to_table(&self) -> String;
    /// CSV for plotting.
    fn to_csv(&self) -> String;
    /// Machine-readable JSON document. Must be a pure function of the
    /// experiment inputs (no wall-clock, no host state) so same-seed
    /// runs serialize byte-identically.
    fn to_json(&self) -> Json;
    /// Latency samples behind the result (0 when the experiment has no
    /// per-I/O sample notion).
    fn samples(&self) -> u64 {
        0
    }
    /// Headline worst-case latency in µs, when the experiment has one.
    fn headline_max_us(&self) -> Option<f64> {
        None
    }
}

/// A named experiment that can run at any [`ExperimentScale`].
pub trait Experiment {
    /// Registry name (`afactl exp <name>`).
    fn name(&self) -> &'static str;
    /// One-line description (`afactl list`).
    fn description(&self) -> &'static str;
    /// The tuning stage the experiment is *about*, when it has a
    /// single one (sweeps over stages return `None`).
    fn stage(&self) -> Option<TuningStage> {
        None
    }
    /// Runs the experiment.
    fn run(&self, scale: ExperimentScale) -> Box<dyn ExperimentResult>;
}

/// A registry entry: a name, a description and a runner fn.
#[derive(Clone, Copy)]
pub struct ExperimentDef {
    /// Registry name (`afactl exp <name>`).
    pub name: &'static str,
    /// One-line description (`afactl list`).
    pub description: &'static str,
    /// The single tuning stage the experiment runs at, if any.
    pub stage: Option<TuningStage>,
    /// Whether the experiment's simulations run on the sharded
    /// conservative engine and may honor `AFA_THREADS`. Experiments
    /// that drive their own single-world event loops (the serving
    /// layer, multi-host fabric) set this to `false`; `run_experiment`
    /// then holds a [`SequentialGuard`](crate::system) for the run.
    /// Either way the artifact bytes are identical — the flag only
    /// controls whether extra cores can be used.
    pub parallel: bool,
    runner: fn(ExperimentScale) -> Box<dyn ExperimentResult>,
}

impl Experiment for ExperimentDef {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn stage(&self) -> Option<TuningStage> {
        self.stage
    }

    fn run(&self, scale: ExperimentScale) -> Box<dyn ExperimentResult> {
        (self.runner)(scale)
    }
}

static REGISTRY: [ExperimentDef; 33] = [
    ExperimentDef {
        name: "fig06",
        description: "Fig. 6: per-SSD latency distributions, default configuration",
        stage: Some(TuningStage::Default),
        parallel: true,
        runner: |s| Box::new(experiment::fig6(s)),
    },
    ExperimentDef {
        name: "fig07",
        description: "Fig. 7: + fio under chrt -f 99",
        stage: Some(TuningStage::Chrt),
        parallel: true,
        runner: |s| Box::new(experiment::fig7(s)),
    },
    ExperimentDef {
        name: "fig08",
        description: "Fig. 8: + isolcpus/nohz_full/rcu_nocbs/idle=poll",
        stage: Some(TuningStage::Isolcpus),
        parallel: true,
        runner: |s| Box::new(experiment::fig8(s)),
    },
    ExperimentDef {
        name: "fig09",
        description: "Fig. 9: + all NVMe vectors pinned to designated CPUs",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::fig9(s)),
    },
    ExperimentDef {
        name: "fig10",
        description: "Fig. 10: per-sample latency scatter, SMART spikes visible",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::fig10(s)),
    },
    ExperimentDef {
        name: "fig11",
        description: "Fig. 11: + experimental firmware (SMART disabled)",
        stage: Some(TuningStage::ExperimentalFirmware),
        parallel: true,
        runner: |s| Box::new(experiment::fig11(s)),
    },
    ExperimentDef {
        name: "fig12",
        description: "Fig. 12: the four kernel configurations side by side",
        stage: None,
        parallel: true,
        runner: |s| Box::new(experiment::fig12(s)),
    },
    ExperimentDef {
        name: "fig13",
        description: "Fig. 13: latency vs. SSDs per physical core (Table II sweep)",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::fig13(s)),
    },
    ExperimentDef {
        name: "fig14",
        description: "Fig. 14: mean/std aggregation of the Fig. 13 sweep",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| {
            Box::new(experiment::Fig14Result {
                summaries: experiment::fig14(s),
            })
        },
    },
    ExperimentDef {
        name: "table1",
        description: "Table I: device model, rated vs. measured",
        stage: None,
        parallel: true,
        runner: |s| Box::new(experiment::table1(s.seed)),
    },
    ExperimentDef {
        name: "table2",
        description: "Table II: the Fig. 13 run matrix, derived from the geometry",
        stage: None,
        parallel: true,
        runner: |_| Box::new(experiment::table2_matrix()),
    },
    ExperimentDef {
        name: "ablate-tick",
        description: "Ablation: timer-tick rate vs. CFS wake-up tail",
        stage: Some(TuningStage::Default),
        parallel: true,
        runner: |s| Box::new(experiment::ablate_tick(s)),
    },
    ExperimentDef {
        name: "ablate-cstate",
        description: "Ablation: idle C-state policy vs. latency",
        stage: Some(TuningStage::Chrt),
        parallel: true,
        runner: |s| Box::new(experiment::ablate_cstate(s)),
    },
    ExperimentDef {
        name: "ablate-smart-period",
        description: "Ablation: SMART housekeeping protocol sweep",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::ablate_smart_period(s)),
    },
    ExperimentDef {
        name: "ablate-poll",
        description: "Ablation: interrupt vs. polling completions",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::ablate_poll(s)),
    },
    ExperimentDef {
        name: "ablate-coalescing",
        description: "Ablation: NVMe interrupt coalescing at QD4",
        stage: Some(TuningStage::ExperimentalFirmware),
        parallel: true,
        runner: |s| Box::new(experiment::ablate_coalescing(s)),
    },
    ExperimentDef {
        name: "ablate-rcu",
        description: "Ablation: rcu_nocbs callback offloading",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::ablate_rcu(s)),
    },
    ExperimentDef {
        name: "ablate-numa",
        description: "Ablation: NUMA placement of fio threads",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::ablate_numa(s)),
    },
    ExperimentDef {
        name: "ablate-gc",
        description: "Ablation: FOB vs. aged device (GC interference)",
        stage: None,
        parallel: true,
        runner: |s| Box::new(experiment::ablate_gc(s.seed)),
    },
    ExperimentDef {
        name: "rootcause",
        description: "Per-cause latency budget across the whole tuning ladder",
        stage: None,
        parallel: true,
        runner: |s| Box::new(experiment::root_cause_ladder(s)),
    },
    ExperimentDef {
        name: "tailscale",
        description: "Tail at scale: client latency over a striped volume",
        stage: None,
        parallel: false,
        runner: |s| Box::new(experiment::tail_at_scale(s)),
    },
    ExperimentDef {
        name: "tailscale-fanout",
        description: "Tail at scale, request level: open-loop serving, fan-out sweep per stage",
        stage: None,
        parallel: false,
        runner: |s| Box::new(experiment::tailscale_fanout(s)),
    },
    ExperimentDef {
        name: "tailscale-hedge",
        description: "Tail at scale, request level: hedged reads on/off, mixed load, tuned kernel",
        stage: Some(TuningStage::IrqAffinity),
        parallel: false,
        runner: |s| Box::new(experiment::tailscale_hedge(s)),
    },
    ExperimentDef {
        name: "fleet-arrival",
        description: "Serving fleet: tenant ladder at fixed rate, sketched tails, slab book",
        stage: Some(TuningStage::IrqAffinity),
        parallel: false,
        runner: |s| Box::new(experiment::fleet_arrival(s)),
    },
    ExperimentDef {
        name: "fleet-failover",
        description:
            "Replicated fleet: kill one array at t=50%, failover + re-replication, per stage",
        stage: None,
        parallel: false,
        runner: |s| Box::new(experiment::fleet_failover(s)),
    },
    ExperimentDef {
        name: "fleet-replication",
        description: "Replicated fleet: R x read-policy grid, write tax vs hedged-read tail win",
        stage: Some(TuningStage::IrqAffinity),
        parallel: false,
        runner: |s| Box::new(experiment::fleet_replication(s)),
    },
    ExperimentDef {
        name: "saturation",
        description: "Uplink saturation: sequential vs. QD1 random throughput",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::uplink_saturation(s)),
    },
    ExperimentDef {
        name: "pts",
        description: "SNIA PTS-E style steady-state random-write rounds",
        stage: None,
        parallel: true,
        runner: |s| Box::new(experiment::pts_random_write(s.seed, 30)),
    },
    ExperimentDef {
        name: "qdsweep",
        description: "Queue-depth sweep: the device's latency/IOPS knee",
        stage: None,
        parallel: true,
        runner: |s| Box::new(experiment::qd_sweep(s.seed)),
    },
    ExperimentDef {
        name: "multihost",
        description: "Multi-host enclosure isolation across the shared fabric",
        stage: None,
        parallel: false,
        runner: |s| Box::new(experiment::multi_host_isolation(s)),
    },
    ExperimentDef {
        name: "futurework",
        description: "Future-work prototypes vs. the paper's manual tuning",
        stage: None,
        parallel: true,
        runner: |s| Box::new(experiment::future_schedulers(s)),
    },
    ExperimentDef {
        name: "ull-crossover",
        description: "Completion model x tuning ladder on Table-I vs. ultra-low-latency devices",
        stage: None,
        parallel: true,
        runner: |s| Box::new(experiment::ull_crossover(s)),
    },
    ExperimentDef {
        name: "blktrace",
        description: "blktrace-style per-I/O stage timestamps, slowest sample",
        stage: Some(TuningStage::IrqAffinity),
        parallel: true,
        runner: |s| Box::new(experiment::io_trace(s)),
    },
];

/// All registered experiments, in presentation order.
pub fn registry() -> &'static [ExperimentDef] {
    &REGISTRY
}

/// Resolves a registry name.
pub fn find(name: &str) -> Option<&'static ExperimentDef> {
    REGISTRY.iter().find(|def| def.name == name)
}

/// Provenance of one experiment run.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// Registry name of the experiment.
    pub experiment: &'static str,
    /// The scale the experiment ran at.
    pub scale: ExperimentScale,
    /// The experiment's single tuning stage, if it has one.
    pub stage: Option<TuningStage>,
    /// Latency samples behind the result.
    pub samples: u64,
    /// Host wall-clock time of the run. Rendered in tables only —
    /// serialized as `null` so same-seed JSON is byte-identical.
    pub wall: Duration,
    /// Simulation events processed while the experiment ran (delta of
    /// the process-wide [`afa_sim::metrics`] counter, excluding the
    /// attribution probe). Wall-dependent siblings (`events_per_sec`)
    /// are table-only for the same reason `wall` is: the JSON artifact
    /// must stay a pure function of `(experiment, scale)`.
    pub events_processed: u64,
    /// DES throughput (`events_processed / wall`). Table-only.
    pub events_per_sec: f64,
    /// Past-time schedules clamped to the clock while the experiment
    /// (and its attribution probe) ran — delta of the process-wide
    /// [`afa_sim::metrics::clamped_past_total`] counter. Always 0 for
    /// a healthy model, so unlike the throughput counters it *is*
    /// serialized: a non-zero value in an artifact is a red flag worth
    /// failing CI over.
    pub clamped_past_schedules: u64,
    /// Frontend serving-layer counters flushed while the experiment
    /// ran (delta of the process-wide [`afa_sim::metrics`] totals).
    /// All-zero for experiments that never touch the serving layer —
    /// and then omitted from the JSON artifact, so pre-frontend
    /// goldens stay byte-identical.
    pub frontend: FrontendCounters,
    /// Completion-model counters flushed while the experiment itself
    /// ran (the attribution probe is excluded — it would otherwise
    /// add its own interrupt-reaped I/Os). Serialized only when a
    /// non-interrupt model reaped something
    /// ([`CompletionCounters::any_polled`]): every pre-existing golden
    /// reaps via MSI-X, so keying on plain interrupt counts would
    /// rewrite them all.
    pub completion: CompletionCounters,
    /// Fleet-layer fault counters flushed while the experiment ran
    /// (delta of the process-wide [`afa_sim::metrics`] totals).
    /// All-zero for every non-fleet experiment — and then omitted
    /// from the JSON artifact, so pre-fleet goldens stay
    /// byte-identical.
    pub fleet: FleetCounters,
    /// Event-chain fusion counters flushed while the experiment ran
    /// (delta of the process-wide [`afa_sim::metrics`] totals). Like
    /// `events_per_sec` these are table-only: fusion is a scheduling
    /// optimization whose whole contract is that artifacts are
    /// byte-identical with it on or off, so serializing its counters
    /// would violate the very invariant it promises.
    pub fusion: FusionCounters,
    /// Per-cause latency budget from the attribution probe.
    pub budget: CauseBudget,
    /// Scale the attribution probe ran at (reduced from `scale` to
    /// keep the probe cheap).
    pub probe_scale: ExperimentScale,
    /// Tuning stage the attribution probe ran at
    /// (`stage.unwrap_or(IrqAffinity)`).
    pub probe_stage: TuningStage,
}

impl RunManifest {
    /// Renders the manifest for humans (includes wall-clock).
    pub fn to_table(&self) -> String {
        let mut out = format!("run manifest — {}\n", self.experiment);
        out.push_str(&format!(
            "scale   : {:.3}s per job, {} SSDs, seed {}\n",
            self.scale.runtime.as_secs_f64(),
            self.scale.ssds,
            self.scale.seed
        ));
        out.push_str(&format!(
            "stage   : {}\n",
            self.stage.map_or("(multi)", TuningStage::label)
        ));
        out.push_str(&format!("samples : {}\n", self.samples));
        out.push_str(&format!("wall    : {:.2}s\n", self.wall.as_secs_f64()));
        out.push_str(&format!(
            "events  : {} ({:.0} events/sec)\n",
            self.events_processed, self.events_per_sec
        ));
        out.push_str(&format!(
            "clamped : {} past-time schedules\n",
            self.clamped_past_schedules
        ));
        if self.frontend.any() {
            out.push_str(&format!(
                "frontend: {} admitted, {} shed, {} hedges fired, {} won\n",
                self.frontend.requests_admitted,
                self.frontend.requests_shed,
                self.frontend.hedges_fired,
                self.frontend.hedges_won
            ));
            if self.frontend.slab_peak_live > 0 || self.frontend.sketch_merges > 0 {
                out.push_str(&format!(
                    "serving : {} peak live slab slots, {} sketch merges\n",
                    self.frontend.slab_peak_live, self.frontend.sketch_merges
                ));
            }
        }
        if self.fleet.any() {
            out.push_str(&format!(
                "fleet   : {} arrays failed, {} failovers, {} retries, {} re-replication I/Os\n",
                self.fleet.arrays_failed,
                self.fleet.failovers,
                self.fleet.retries,
                self.fleet.rereplication_ios
            ));
        }
        if self.completion.any() {
            out.push_str(&format!(
                "reaps   : {} interrupt, {} polled ({} hybrid oversleeps)\n",
                self.completion.interrupts, self.completion.polls, self.completion.hybrid_sleeps
            ));
        }
        if self.fusion.any() {
            out.push_str(&format!(
                "fusion  : {} chains fused, {} defused, {} events elided\n",
                self.fusion.fused_chains, self.fusion.defused_chains, self.fusion.elided_events
            ));
        }
        out.push_str(&format!(
            "latency budget (probe: '{}' at {:.3}s x {} SSDs):\n",
            self.probe_stage.label(),
            self.probe_scale.runtime.as_secs_f64(),
            self.probe_scale.ssds
        ));
        out.push_str(&format!(
            "  {:<20} {:>12} {:>12}\n",
            "cause", "total(ms)", "events"
        ));
        for &(cause, total, events) in self.budget.rows() {
            out.push_str(&format!(
                "  {:<20} {:>12.2} {:>12}\n",
                cause.label(),
                total.as_micros_f64() / 1_000.0,
                events
            ));
        }
        out
    }

    /// Serializes the manifest. `wall_ms` is always `null`: wall-clock
    /// is the one non-deterministic field, and the JSON artifact must
    /// be byte-identical across same-seed runs.
    pub fn to_json(&self) -> Json {
        let mut doc = self.base_json();
        // Conditional so experiments that never touch the serving
        // layer keep their pre-frontend byte-identical artifacts.
        if self.frontend.any() {
            let mut fe = Json::obj([
                (
                    "requests_admitted",
                    Json::u64(self.frontend.requests_admitted),
                ),
                ("requests_shed", Json::u64(self.frontend.requests_shed)),
                ("hedges_fired", Json::u64(self.frontend.hedges_fired)),
                ("hedges_won", Json::u64(self.frontend.hedges_won)),
            ]);
            // Per-field conditional: the fleet experiment's slab/sketch
            // counters appear only when they moved, so the tailscale
            // artifacts keep their original four-key object.
            if self.frontend.slab_peak_live > 0 {
                fe.push("slab_peak_live", Json::u64(self.frontend.slab_peak_live));
            }
            if self.frontend.sketch_merges > 0 {
                fe.push("sketch_merges", Json::u64(self.frontend.sketch_merges));
            }
            doc.push("frontend", fe);
        }
        // Gated on any_polled(), not any(): every interrupt-only
        // golden predates this key and must keep its exact bytes.
        if self.completion.any_polled() {
            let mut cm = Json::obj([
                ("interrupts", Json::u64(self.completion.interrupts)),
                ("polls", Json::u64(self.completion.polls)),
            ]);
            if self.completion.hybrid_sleeps > 0 {
                cm.push("hybrid_sleeps", Json::u64(self.completion.hybrid_sleeps));
            }
            doc.push("completion", cm);
        }
        // Only fleet experiments move these counters; everything else
        // keeps its pre-fleet artifact bytes.
        if self.fleet.any() {
            doc.push(
                "fleet",
                Json::obj([
                    ("arrays_failed", Json::u64(self.fleet.arrays_failed)),
                    ("failovers", Json::u64(self.fleet.failovers)),
                    ("retries", Json::u64(self.fleet.retries)),
                    ("rereplication_ios", Json::u64(self.fleet.rereplication_ios)),
                ]),
            );
        }
        // `fusion` is deliberately absent: its counters depend on
        // whether the fast path engaged, and the artifact must be
        // byte-identical with fusion on or off.
        doc
    }

    fn base_json(&self) -> Json {
        let causes = Json::arr(self.budget.rows().iter().map(|&(cause, total, events)| {
            Json::obj([
                ("cause", Json::str(cause.label())),
                ("total_us", Json::f64(total.as_micros_f64())),
                ("events", Json::u64(events)),
            ])
        }));
        Json::obj([
            ("experiment", Json::str(self.experiment)),
            ("seed", Json::u64(self.scale.seed)),
            (
                "scale",
                Json::obj([
                    (
                        "runtime_ms",
                        Json::f64(self.scale.runtime.as_secs_f64() * 1e3),
                    ),
                    ("ssds", Json::u64(self.scale.ssds as u64)),
                ]),
            ),
            ("stage", stage_json(self.stage)),
            ("samples", Json::u64(self.samples)),
            (
                "clamped_past_schedules",
                Json::u64(self.clamped_past_schedules),
            ),
            ("wall_ms", Json::Null),
            (
                "budget",
                Json::obj([
                    (
                        "probe",
                        Json::obj([
                            ("stage", Json::str(self.probe_stage.label())),
                            (
                                "runtime_ms",
                                Json::f64(self.probe_scale.runtime.as_secs_f64() * 1e3),
                            ),
                            ("ssds", Json::u64(self.probe_scale.ssds as u64)),
                            ("seed", Json::u64(self.probe_scale.seed)),
                        ]),
                    ),
                    ("total_us", Json::f64(self.budget.total().as_micros_f64())),
                    ("causes", causes),
                ]),
            ),
        ])
    }
}

fn stage_json(stage: Option<TuningStage>) -> Json {
    stage.map_or(Json::Null, |s| Json::str(s.label()))
}

/// One experiment run: the result plus its provenance manifest.
pub struct ExperimentRun {
    /// Provenance: seed, scale, wall-clock, latency budget.
    pub manifest: RunManifest,
    /// The experiment's result object.
    pub result: Box<dyn ExperimentResult>,
}

impl ExperimentRun {
    /// The full JSON artifact: manifest + data. Byte-identical across
    /// runs with the same `(experiment, scale)`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("manifest", self.manifest.to_json()),
            ("data", self.result.to_json()),
        ])
    }
}

/// Runs `def` at `scale` and attaches a [`RunManifest`].
///
/// The per-cause latency budget comes from a separate deterministic
/// *probe* run with attribution enabled, at the experiment's stage
/// (or the fully tuned kernel for multi-stage experiments) and a
/// reduced scale, so the budget is cheap and reproducible even for
/// experiments that don't attribute causes themselves.
pub fn run_experiment(def: &ExperimentDef, scale: ExperimentScale) -> ExperimentRun {
    let events_before = afa_sim::metrics::events_processed_total();
    let clamped_before = afa_sim::metrics::clamped_past_total();
    let frontend_before = afa_sim::metrics::frontend_totals();
    let completion_before = afa_sim::metrics::completion_totals();
    let fleet_before = afa_sim::metrics::fleet_totals();
    let fusion_before = afa_sim::metrics::fusion_totals();
    let t0 = Instant::now();
    // Experiments that drive their own single-world event loops must
    // not observe AFA_THREADS; the guard pins every AfaSystem::run in
    // scope (e.g. calibration sub-runs) to the sequential driver.
    let sequential = (!def.parallel).then(crate::system::SequentialGuard::acquire);
    let result = def.run(scale);
    drop(sequential);
    let wall = t0.elapsed();
    // Process-wide counter: the delta includes any simulations that ran
    // concurrently (e.g. the pool runs experiments in parallel), so it
    // is an honest throughput figure for this run only when the caller
    // runs one experiment at a time — which is why it stays out of the
    // byte-stable JSON and only appears in the human table.
    let events_processed = afa_sim::metrics::events_processed_total() - events_before;
    let events_per_sec = events_processed as f64 / wall.as_secs_f64().max(1e-9);
    // Before the probe: the probe's interrupt-reaped I/Os are not
    // part of the experiment's completion-model story.
    let completion = afa_sim::metrics::completion_totals().since(&completion_before);

    let probe_runtime = if scale.runtime > SimDuration::millis(250) {
        SimDuration::millis(250)
    } else {
        scale.runtime
    };
    let probe_scale = ExperimentScale::new(probe_runtime, scale.ssds.min(8), scale.seed);
    let probe_stage = def.stage.unwrap_or(TuningStage::IrqAffinity);
    let probe = AfaSystem::run(
        &AfaConfig::paper(probe_stage)
            .with_ssds(probe_scale.ssds)
            .with_runtime(probe_scale.runtime)
            .with_seed(probe_scale.seed)
            .with_cause_attribution(true),
    );
    let budget = probe.causes.expect("attribution enabled").budget();
    // Measured after the probe so a past-time schedule anywhere in the
    // run (experiment or probe) taints the artifact. Deterministic —
    // and expected to be exactly 0 — for a single experiment at a
    // time; the parallel pool may attribute a sibling's clamps here,
    // which is fine for a tripwire.
    let clamped_past_schedules = afa_sim::metrics::clamped_past_total() - clamped_before;
    let frontend = afa_sim::metrics::frontend_totals().since(&frontend_before);
    let fleet = afa_sim::metrics::fleet_totals().since(&fleet_before);
    // Measured after the probe on purpose: the probe fuses too, and
    // the table row should reflect everything this run scheduled.
    let fusion = afa_sim::metrics::fusion_totals().since(&fusion_before);

    let samples = result.samples();
    ExperimentRun {
        manifest: RunManifest {
            experiment: def.name,
            scale,
            stage: def.stage,
            samples,
            wall,
            events_processed,
            events_per_sec,
            clamped_past_schedules,
            frontend,
            completion,
            fleet,
            fusion,
            budget,
            probe_scale,
            probe_stage,
        },
        result,
    }
}

/// Convenience: JSON rows for a per-cause budget (used by result
/// serializers that carry their own [`Cause`] tables).
pub fn cause_rows_json(rows: &[(Cause, f64, u64, f64)]) -> Json {
    Json::arr(rows.iter().map(|&(cause, total_us, events, per_io)| {
        Json::obj([
            ("cause", Json::str(cause.label())),
            ("total_us", Json::f64(total_us)),
            ("events", Json::u64(events)),
            ("us_per_io", Json::f64(per_io)),
        ])
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_twenty_unique_names() {
        let names: Vec<&str> = registry().iter().map(|d| d.name).collect();
        assert!(names.len() >= 20, "only {} experiments", names.len());
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names");
    }

    #[test]
    fn find_resolves_known_names_and_rejects_unknown() {
        assert_eq!(find("fig12").unwrap().name, "fig12");
        assert!(find("fig12").unwrap().stage.is_none());
        assert_eq!(find("fig06").unwrap().stage, Some(TuningStage::Default));
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn descriptions_are_nonempty_and_single_line() {
        for def in registry() {
            assert!(!def.description.is_empty(), "{} undescribed", def.name);
            assert!(
                !def.description.contains('\n'),
                "{} description spans lines",
                def.name
            );
        }
    }

    #[test]
    fn manifest_json_has_null_wall_clock() {
        let def = find("table2").expect("table2 registered");
        let run = run_experiment(def, ExperimentScale::quick());
        let manifest = run.manifest.to_json();
        let rendered = manifest.to_string();
        assert!(rendered.contains("\"wall_ms\":null"), "{rendered}");
        assert!(rendered.contains("\"experiment\":\"table2\""));
        assert!(!run.manifest.budget.is_empty(), "probe budget missing");
        assert!(run.manifest.to_table().contains("latency budget"));
    }

    #[test]
    fn clamped_schedules_are_zero_and_serialized() {
        let def = find("fig06").expect("fig06 registered");
        let run = run_experiment(def, ExperimentScale::quick());
        assert_eq!(
            run.manifest.clamped_past_schedules, 0,
            "model scheduled into the past"
        );
        let rendered = run.manifest.to_json().to_string();
        assert!(
            rendered.contains("\"clamped_past_schedules\":0"),
            "{rendered}"
        );
        assert!(run.manifest.to_table().contains("clamped : 0"));
    }

    #[test]
    fn frontend_counters_reach_the_manifest() {
        let def = find("tailscale-hedge").expect("tailscale-hedge registered");
        let run = run_experiment(def, ExperimentScale::new(SimDuration::millis(60), 4, 11));
        assert!(
            run.manifest.frontend.any(),
            "serving layer must flush counters"
        );
        assert!(run.manifest.frontend.requests_admitted > 0);
        let rendered = run.manifest.to_json().to_string();
        assert!(
            rendered.contains("\"frontend\":{\"requests_admitted\":"),
            "{rendered}"
        );
        assert!(run.manifest.to_table().contains("frontend: "));
    }

    #[test]
    fn fleet_counters_reach_the_manifest_only_for_fleet_runs() {
        let def = find("fleet-failover").expect("fleet-failover registered");
        let run = run_experiment(def, ExperimentScale::new(SimDuration::millis(60), 6, 11));
        assert!(
            run.manifest.fleet.any(),
            "fleet layer must flush fault counters"
        );
        assert_eq!(
            run.manifest.fleet.arrays_failed,
            TuningStage::ALL.len() as u64,
            "one kill per stage cell"
        );
        let rendered = run.manifest.to_json().to_string();
        assert!(
            rendered.contains("\"fleet\":{\"arrays_failed\":"),
            "{rendered}"
        );
        assert!(run.manifest.to_table().contains("fleet   : "));
        // Secondary-array work is stitched into the completion totals
        // even though the manifest omits the interrupt-only key.
        assert!(run.manifest.completion.interrupts > 0);

        // A non-fleet experiment must not grow the key.
        let fig = find("fig06").expect("fig06 registered");
        let fig_run = run_experiment(fig, ExperimentScale::quick());
        assert!(!fig_run.manifest.fleet.any());
        let fig_json = fig_run.manifest.to_json().to_string();
        assert!(!fig_json.contains("\"fleet\""), "{fig_json}");
    }

    #[test]
    fn events_per_sec_is_table_only() {
        // fig06 actually drives a simulation, so the event delta must
        // be non-zero; the JSON schema must not grow a key for it.
        let def = find("fig06").expect("fig06 registered");
        let run = run_experiment(def, ExperimentScale::quick());
        assert!(
            run.manifest.events_processed > 0,
            "no events counted for a simulation-backed experiment"
        );
        assert!(run.manifest.events_per_sec > 0.0);
        let table = run.manifest.to_table();
        assert!(table.contains("events/sec"), "{table}");
        let rendered = run.manifest.to_json().to_string();
        assert!(
            !rendered.contains("events_per_sec") && !rendered.contains("events_processed"),
            "throughput leaked into the byte-stable artifact: {rendered}"
        );
    }

    #[test]
    fn fusion_counters_are_table_only() {
        // fig06 at quick scale runs the single-shard plan with one job
        // per LP, so the fusion fast path must engage — and its
        // counters must stay out of the byte-stable JSON, because the
        // fusion contract is that artifacts are identical with fusion
        // on or off (a `fusion` key would differ between the two).
        let def = find("fig06").expect("fig06 registered");
        let run = run_experiment(def, ExperimentScale::quick());
        assert!(
            run.manifest.fusion.fused_chains > 0,
            "fusion never engaged on a QD1 single-plan run"
        );
        assert!(
            run.manifest.fusion.elided_events > 0,
            "fused chains must elide per-stage events"
        );
        let table = run.manifest.to_table();
        assert!(table.contains("fusion  :"), "{table}");
        let rendered = run.manifest.to_json().to_string();
        assert!(
            !rendered.contains("fused_chains")
                && !rendered.contains("defused_chains")
                && !rendered.contains("elided_events"),
            "fusion counters leaked into the byte-stable artifact: {rendered}"
        );
    }
}
