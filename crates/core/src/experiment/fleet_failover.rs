//! Fleet-level failover and replication: N arrays behind a network
//! hop, one DES clock.
//!
//! The `afa-fleet` crate supplies the substrate — [`NetHop`] paired
//! network legs, rendezvous [`place_among`] placement,
//! [`ArrayInstance`] serving stacks and the retry/heal machinery —
//! and this module composes them into a single [`FleetWorld`] driving
//! two registry experiments:
//!
//! * `fleet-failover` — 3–8 arrays at R=2, one array killed at
//!   t=50 %: p99/p99.9 before/during/after the failover window and the
//!   time-to-tail-recovery, per tuning stage. Open requests on the
//!   dead array back off and retry on the surviving replica;
//!   background re-replication restores R while competing with
//!   foreground I/O.
//! * `fleet-replication` — R ∈ {1,2,3} × read policy ∈ {primary,
//!   hedged-secondary, read-any} under a 80/20 read/write mix: the
//!   replication tax on the median (writes wait for the slowest of R
//!   replicas) against the hedge win on the deep read tail.
//!
//! Every finished request is attributed through a [`RequestLedger`]
//! including the new [`Cause::Network`], and the attribution is exact:
//! client CPU + (backoff/hedge wait) + network out + array CPU +
//! fabric + device + IRQ + scheduler + array reap + network back +
//! client reap tile the measured latency to the nanosecond
//! ([`FailoverCell::ledger_mismatches`] is always zero).

use afa_fleet::{
    heal_jobs, place_among, ArrayInstance, HealJob, HopSpec, NetHop, ReadPolicy, RetryPolicy,
};
use afa_frontend::{HedgePolicy, RequestBook, RequestLedger, SubCompletion};
use afa_host::{BackgroundConfig, CpuTopology, HostModel, SchedPolicy};
use afa_pcie::PcieFabric;
use afa_sim::metrics::{CompletionCounters, FleetCounters, FrontendCounters};
use afa_sim::trace::Cause;
use afa_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulation, World};
use afa_ssd::{NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::{Json, LatencyHistogram, LatencyProfile, NinesPoint, SketchRollup};
use afa_volume::SubIo;

use crate::experiment::registry::ExperimentResult;
use crate::experiment::{pool, ExperimentScale};
use crate::geometry::CpuSsdGeometry;
use crate::tuning::{Tuning, TuningStage};

/// Client-side submit cost per request (frontend CPU).
const CLIENT_SUBMIT: SimDuration = SimDuration::nanos(1_500);
/// Client-side completion processing per request.
const CLIENT_REAP: SimDuration = SimDuration::nanos(1_000);
/// Array-side submission-path CPU cost per sub-I/O.
const ARRAY_SUBMIT: SimDuration = SimDuration::nanos(1_500);
/// Array-side completion-reap CPU cost per sub-I/O.
const ARRAY_REAP: SimDuration = SimDuration::nanos(1_300);
/// RPC envelope bytes (header + NVMe command capsule).
const RPC_ENVELOPE: u64 = 256;
/// Payload of one fleet read/write.
const DATA_BYTES: u32 = 4096;
/// Aggregate open-loop Poisson arrival rate across the fleet.
const ARRIVAL_RATE: f64 = 12_000.0;
/// Frontend volumes placed across the fleet.
const VOLUMES: u64 = 128;
/// LBA pages addressable per volume draw.
const LBA_SPACE: u64 = 2_000_000;
/// One re-replication copy unit (read source + write target).
const HEAL_BYTES: u32 = 65_536;
/// Sub-settle percentile a warm cross-array hedge duplicates after.
const HEDGE_PERCENTILE: f64 = 95.0;
/// How long the frontend keeps routing by the stale (pre-kill)
/// placement map after an array dies: requests dispatched to the dead
/// primary inside this window burn an RPC timeout and fail over.
const ROUTING_STALE: SimDuration = SimDuration::millis(2);

/// Arrays a scale affords: half the device budget, one array per two
/// SSDs, within the issue's 3–8 band.
fn fleet_arrays(scale: ExperimentScale) -> usize {
    (scale.ssds / 2).clamp(3, 8)
}

/// Devices per array once the fleet size is fixed.
fn devices_per_array(scale: ExperimentScale) -> usize {
    (scale.ssds / fleet_arrays(scale)).max(1)
}

/// One cell's configuration.
#[derive(Clone, Copy, Debug)]
struct FleetConfig {
    stage: TuningStage,
    r: usize,
    policy: ReadPolicy,
    /// Percentage of arrivals that are replicated writes (0–100).
    write_percent: u64,
    /// Kill one array at this fraction of the runtime.
    kill_frac: Option<f64>,
}

/// One `(stage)` cell of the `fleet-failover` sweep.
#[derive(Clone, Debug)]
pub struct FailoverCell {
    /// Tuning stage of the run.
    pub stage: TuningStage,
    /// Fleet size (arrays).
    pub arrays: usize,
    /// Replication factor.
    pub r: usize,
    /// Request-latency profile before the kill.
    pub before: LatencyProfile,
    /// Profile between the kill and the end of re-replication.
    pub during: LatencyProfile,
    /// Profile after the fleet healed.
    pub after: LatencyProfile,
    /// Kill-to-healed duration, when the kill happened.
    pub time_to_recovery: Option<SimDuration>,
    /// Whether re-replication drained before the run ended.
    pub recovered_within_run: bool,
    /// Per-array `(completions, p99.9 µs)` rollup — completions count
    /// every reap on the array, secondaries included.
    pub per_array: Vec<(u64, f64)>,
    /// Fleet fault counters for this cell.
    pub fleet: FleetCounters,
    /// Requests admitted / shed (no surviving replica).
    pub admitted: u64,
    /// Requests settled as shed.
    pub shed: u64,
    /// Stale completions fenced by the attempt guard.
    pub stale_drops: u64,
    /// Cross-request cause totals from the per-request ledgers.
    pub causes: Vec<(Cause, SimDuration)>,
    /// Requests whose ledger did not tile measured latency exactly.
    /// Always zero — non-zero is a model bug.
    pub ledger_mismatches: u64,
}

impl FailoverCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("stage", Json::str(self.stage.label())),
            ("arrays", Json::u64(self.arrays as u64)),
            ("r", Json::u64(self.r as u64)),
            ("before", self.before.to_json()),
            ("during", self.during.to_json()),
            ("after", self.after.to_json()),
            (
                "time_to_recovery_us",
                self.time_to_recovery
                    .map_or(Json::Null, |d| Json::f64(d.as_micros_f64())),
            ),
            (
                "recovered_within_run",
                Json::Bool(self.recovered_within_run),
            ),
            (
                "per_array",
                Json::arr(self.per_array.iter().enumerate().map(
                    |(array, &(completions, p999_us))| {
                        Json::obj([
                            ("array", Json::u64(array as u64)),
                            ("completions", Json::u64(completions)),
                            ("p999_us", Json::f64(p999_us)),
                        ])
                    },
                )),
            ),
            (
                "counters",
                Json::obj([
                    ("arrays_failed", Json::u64(self.fleet.arrays_failed)),
                    ("failovers", Json::u64(self.fleet.failovers)),
                    ("retries", Json::u64(self.fleet.retries)),
                    ("rereplication_ios", Json::u64(self.fleet.rereplication_ios)),
                    ("admitted", Json::u64(self.admitted)),
                    ("shed", Json::u64(self.shed)),
                    ("stale_drops", Json::u64(self.stale_drops)),
                ]),
            ),
            (
                "causes",
                Json::Obj(
                    self.causes
                        .iter()
                        .map(|&(c, d)| (c.label().to_owned(), Json::u64(d.as_nanos())))
                        .collect(),
                ),
            ),
            ("ledger_mismatches", Json::u64(self.ledger_mismatches)),
        ])
    }
}

/// Result of the `fleet-failover` sweep.
#[derive(Clone, Debug)]
pub struct FleetFailoverResult {
    /// One cell per tuning stage.
    pub cells: Vec<FailoverCell>,
}

impl FleetFailoverResult {
    /// The cell for `stage`.
    pub fn cell(&self, stage: TuningStage) -> Option<&FailoverCell> {
        self.cells.iter().find(|c| c.stage == stage)
    }
}

impl ExperimentResult for FleetFailoverResult {
    fn to_table(&self) -> String {
        let mut out = String::from(
            "Fleet failover — kill one array at t=50%, replicas absorb, re-replication heals\n",
        );
        out.push_str(&format!(
            "{:<12} {:>10} {:>12} {:>12} {:>12} {:>10} {:>9} {:>8} {:>7}\n",
            "stage",
            "pre99(us)",
            "pre999(us)",
            "dur999(us)",
            "post999(us)",
            "ttr(ms)",
            "failover",
            "retries",
            "rerepl"
        ));
        for cell in &self.cells {
            out.push_str(&format!(
                "{:<12} {:>10.1} {:>12.1} {:>12.1} {:>12.1} {:>10.2} {:>9} {:>8} {:>7}\n",
                cell.stage.label(),
                cell.before.get_micros(NinesPoint::Nines2),
                cell.before.get_micros(NinesPoint::Nines3),
                cell.during.get_micros(NinesPoint::Nines3),
                cell.after.get_micros(NinesPoint::Nines3),
                cell.time_to_recovery
                    .map_or(f64::NAN, |d| d.as_micros_f64() / 1_000.0),
                cell.fleet.failovers,
                cell.fleet.retries,
                cell.fleet.rereplication_ios,
            ));
        }
        out
    }

    fn to_csv(&self) -> String {
        let mut out = String::from(
            "stage,arrays,r,pre_p99_us,pre_p999_us,during_p999_us,post_p999_us,ttr_us,\
             failovers,retries,rereplication_ios,admitted,shed\n",
        );
        for cell in &self.cells {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{},{},{}\n",
                cell.stage.label(),
                cell.arrays,
                cell.r,
                cell.before.get_micros(NinesPoint::Nines2),
                cell.before.get_micros(NinesPoint::Nines3),
                cell.during.get_micros(NinesPoint::Nines3),
                cell.after.get_micros(NinesPoint::Nines3),
                cell.time_to_recovery
                    .map_or(f64::NAN, |d| d.as_micros_f64()),
                cell.fleet.failovers,
                cell.fleet.retries,
                cell.fleet.rereplication_ios,
                cell.admitted,
                cell.shed,
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([(
            "cells",
            Json::arr(self.cells.iter().map(FailoverCell::to_json)),
        )])
    }

    fn samples(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.before.samples() + c.during.samples() + c.after.samples())
            .sum()
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.cells
            .iter()
            .flat_map(|c| [&c.before, &c.during, &c.after])
            .map(|p| p.get_micros(NinesPoint::Max))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// One `(r, policy)` cell of the `fleet-replication` grid.
#[derive(Clone, Debug)]
pub struct ReplicationCell {
    /// Replication factor.
    pub r: usize,
    /// Read policy for the replica set.
    pub policy: ReadPolicy,
    /// Median request latency in µs across the whole mix.
    pub median_us: f64,
    /// Median *write* latency in µs — the replication tax metric: a
    /// write settles at the slowest of its R replicas.
    pub write_median_us: f64,
    /// Full request-latency profile.
    pub client: LatencyProfile,
    /// Requests admitted.
    pub admitted: u64,
    /// Cross-array hedges fired / won.
    pub hedges_fired: u64,
    /// Hedges whose secondary-array duplicate won.
    pub hedges_won: u64,
    /// Cross-request cause totals.
    pub causes: Vec<(Cause, SimDuration)>,
    /// Requests whose ledger did not tile latency. Always zero.
    pub ledger_mismatches: u64,
}

impl ReplicationCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("r", Json::u64(self.r as u64)),
            ("policy", Json::str(self.policy.label())),
            ("median_us", Json::f64(self.median_us)),
            ("write_median_us", Json::f64(self.write_median_us)),
            ("client", self.client.to_json()),
            ("admitted", Json::u64(self.admitted)),
            ("hedges_fired", Json::u64(self.hedges_fired)),
            ("hedges_won", Json::u64(self.hedges_won)),
            (
                "causes",
                Json::Obj(
                    self.causes
                        .iter()
                        .map(|&(c, d)| (c.label().to_owned(), Json::u64(d.as_nanos())))
                        .collect(),
                ),
            ),
            ("ledger_mismatches", Json::u64(self.ledger_mismatches)),
        ])
    }
}

/// Result of the `fleet-replication` grid.
#[derive(Clone, Debug)]
pub struct FleetReplicationResult {
    /// One cell per `(r, policy)`.
    pub cells: Vec<ReplicationCell>,
}

impl FleetReplicationResult {
    /// The cell for `(r, policy)`.
    pub fn cell(&self, r: usize, policy: ReadPolicy) -> Option<&ReplicationCell> {
        self.cells.iter().find(|c| c.r == r && c.policy == policy)
    }
}

impl ExperimentResult for FleetReplicationResult {
    fn to_table(&self) -> String {
        let mut out = String::from(
            "Fleet replication — the R-way tax on the median vs. the hedge win on the tail\n",
        );
        out.push_str(&format!(
            "{:<3} {:<17} {:>11} {:>9} {:>9} {:>11} {:>9} {:>9} {:>7} {:>7}\n",
            "r",
            "policy",
            "median(us)",
            "wmed(us)",
            "p99(us)",
            "p99.9(us)",
            "max(us)",
            "admitted",
            "hedges",
            "won"
        ));
        for cell in &self.cells {
            out.push_str(&format!(
                "{:<3} {:<17} {:>11.1} {:>9.1} {:>9.1} {:>11.1} {:>9.1} {:>9} {:>7} {:>7}\n",
                cell.r,
                cell.policy.label(),
                cell.median_us,
                cell.write_median_us,
                cell.client.get_micros(NinesPoint::Nines2),
                cell.client.get_micros(NinesPoint::Nines3),
                cell.client.get_micros(NinesPoint::Max),
                cell.admitted,
                cell.hedges_fired,
                cell.hedges_won,
            ));
        }
        out
    }

    fn to_csv(&self) -> String {
        let mut out =
            String::from(
                "r,policy,median_us,write_median_us,p99_us,p999_us,max_us,admitted,hedges_fired,hedges_won\n",
            );
        for cell in &self.cells {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{}\n",
                cell.r,
                cell.policy.label(),
                cell.median_us,
                cell.write_median_us,
                cell.client.get_micros(NinesPoint::Nines2),
                cell.client.get_micros(NinesPoint::Nines3),
                cell.client.get_micros(NinesPoint::Max),
                cell.admitted,
                cell.hedges_fired,
                cell.hedges_won,
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([(
            "cells",
            Json::arr(self.cells.iter().map(ReplicationCell::to_json)),
        )])
    }

    fn samples(&self) -> u64 {
        self.cells.iter().map(|c| c.client.samples()).sum()
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.cells
            .iter()
            .map(|c| c.client.get_micros(NinesPoint::Max))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// `fleet-failover`: one cell per tuning stage, R=2, primary reads,
/// one array killed at t=50 %.
pub fn fleet_failover(scale: ExperimentScale) -> FleetFailoverResult {
    let cells = pool::map_bounded(TuningStage::ALL.to_vec(), |stage| {
        let (cell, _) = run_cell(
            FleetConfig {
                stage,
                r: 2,
                policy: ReadPolicy::Primary,
                write_percent: 0,
                kill_frac: Some(0.5),
            },
            scale,
        );
        cell
    });
    FleetFailoverResult { cells }
}

/// `fleet-replication`: R × read-policy grid on the tuned kernel,
/// 80/20 read/write mix, no faults.
pub fn fleet_replication(scale: ExperimentScale) -> FleetReplicationResult {
    let mut jobs = Vec::new();
    for r in [1usize, 2, 3] {
        for policy in [
            ReadPolicy::Primary,
            ReadPolicy::HedgedSecondary,
            ReadPolicy::ReadAny,
        ] {
            jobs.push((r, policy));
        }
    }
    let cells = pool::map_bounded(jobs, |(r, policy)| {
        let (cell, extras) = run_cell(
            FleetConfig {
                stage: TuningStage::IrqAffinity,
                r,
                policy,
                write_percent: 20,
                kill_frac: None,
            },
            scale,
        );
        ReplicationCell {
            r,
            policy,
            median_us: extras.median_us,
            write_median_us: extras.write_median_us,
            client: extras.client,
            admitted: cell.admitted,
            hedges_fired: extras.hedges_fired,
            hedges_won: extras.hedges_won,
            causes: cell.causes,
            ledger_mismatches: cell.ledger_mismatches,
        }
    });
    FleetReplicationResult { cells }
}

/// Exactly-once accounting of one probe run, for the property suite.
#[derive(Clone, Copy, Debug)]
pub struct FleetProbeOutcome {
    /// Requests admitted into the book.
    pub admitted: u64,
    /// Requests settled with a served completion.
    pub settled: u64,
    /// Requests settled as shed (no surviving replica).
    pub shed: u64,
    /// Stale completions fenced by the attempt guard.
    pub stale_drops: u64,
    /// Requests whose ledger did not tile measured latency.
    pub ledger_mismatches: u64,
    /// Requests still open after the event queue drained. Always zero.
    pub in_flight_at_end: u64,
}

/// Runs a small fleet (R=2, primary reads) killing one array at
/// `kill_frac` of the runtime, and returns the exactly-once
/// accounting. The property suite sweeps `kill_frac` and seeds; a
/// double settle panics inside the book, an unsettled request shows up
/// in `in_flight_at_end`, and a mis-tiled ledger increments
/// `ledger_mismatches`.
pub fn fleet_failover_probe(seed: u64, kill_frac: f64) -> FleetProbeOutcome {
    let scale = ExperimentScale::new(SimDuration::millis(40), 6, seed);
    let (cell, extras) = run_cell(
        FleetConfig {
            stage: TuningStage::IrqAffinity,
            r: 2,
            policy: ReadPolicy::Primary,
            write_percent: 0,
            kill_frac: Some(kill_frac.clamp(0.05, 0.95)),
        },
        scale,
    );
    FleetProbeOutcome {
        admitted: cell.admitted,
        settled: extras.settled,
        shed: cell.shed,
        stale_drops: cell.stale_drops,
        ledger_mismatches: cell.ledger_mismatches,
        in_flight_at_end: extras.in_flight_at_end,
    }
}

/// Extra outcome figures surfaced by [`run_cell`] alongside the cell.
struct RunExtras {
    median_us: f64,
    write_median_us: f64,
    client: LatencyProfile,
    hedges_fired: u64,
    hedges_won: u64,
    settled: u64,
    in_flight_at_end: u64,
}

fn run_cell(cfg: FleetConfig, scale: ExperimentScale) -> (FailoverCell, RunExtras) {
    let arrays_n = fleet_arrays(scale);
    let devices_per = devices_per_array(scale);
    let tuning = Tuning::new(cfg.stage);
    let geometry = CpuSsdGeometry::paper(devices_per);

    let arrays: Vec<ArrayInstance> = (0..arrays_n)
        .map(|a| {
            let array_seed = scale
                .seed
                .wrapping_add((a as u64 + 1).wrapping_mul(0xA11A_D00D_9E37_79B9));
            let topo = CpuTopology::xeon_e5_2690_v2_dual();
            let mut host = HostModel::new(
                topo,
                tuning.kernel_config(geometry.io_cpu_set()),
                BackgroundConfig::centos7_desktop(),
                array_seed,
            );
            let cpus: Vec<_> = (0..devices_per).map(|d| geometry.cpu_of_ssd(d)).collect();
            host.init_vectors(cpus.clone(), array_seed);
            let devices = (0..devices_per)
                .map(|d| {
                    SsdDevice::new(
                        SsdSpec::table1(),
                        tuning.firmware(),
                        array_seed ^ (d as u64).wrapping_mul(0x61C8_8646),
                    )
                })
                .collect();
            ArrayInstance::new(
                host,
                PcieFabric::paper_single_host(devices_per),
                devices,
                cpus,
            )
        })
        .collect();
    let hops = (0..arrays_n)
        .map(|a| NetHop::new(HopSpec::datacenter(), scale.seed ^ 0x0F1E_E700, a as u64))
        .collect();

    let kill_at = cfg.kill_frac.map(|frac| {
        SimTime::ZERO + SimDuration::nanos((scale.runtime.as_nanos() as f64 * frac) as u64)
    });
    let deadline = SimTime::ZERO + scale.runtime;
    let world = FleetWorld {
        arrays,
        hops,
        devices_per,
        r: cfg.r,
        policy: cfg.policy,
        write_percent: cfg.write_percent,
        book: RequestBook::new(),
        routes: Vec::new(),
        retry: RetryPolicy::fleet_default(),
        heal_plan: Vec::new(),
        rng_arrival: SimRng::from_seed_and_stream(scale.seed, 0xF1EE_7A00),
        rng_volume: SimRng::from_seed_and_stream(scale.seed, 0xF1EE_7A01),
        rng_lba: SimRng::from_seed_and_stream(scale.seed, 0xF1EE_7A02),
        rng_write: SimRng::from_seed_and_stream(scale.seed, 0xF1EE_7A03),
        hedge: (cfg.policy == ReadPolicy::HedgedSecondary && cfg.r > 1)
            .then(|| HedgePolicy::at_percentile(HEDGE_PERCENTILE)),
        sched_policy: tuning.fio_policy(),
        rotate: 0,
        kill_array: 0,
        dead: None,
        routing_stale_until: None,
        heal_outstanding: 0,
        recovered_at: None,
        hist: LatencyHistogram::new(),
        write_hist: LatencyHistogram::new(),
        before: LatencyHistogram::new(),
        during: LatencyHistogram::new(),
        after: LatencyHistogram::new(),
        rollup: SketchRollup::new(arrays_n),
        ledger: RequestLedger::new(),
        req_ledger: RequestLedger::new(),
        ledger_mismatches: 0,
        admitted: 0,
        settled: 0,
        shed: 0,
        stale_drops: 0,
        arrays_failed: 0,
        failovers: 0,
        retries: 0,
        rereplication_ios: 0,
        hedges_fired: 0,
        hedges_won: 0,
        deadline,
        horizon: deadline + SimDuration::millis(50),
    };
    let mut sim = Simulation::new(world);
    sim.schedule_at(SimTime::ZERO, FlEvent::Arrival);
    for array in 0..arrays_n {
        sim.schedule_at(SimTime::ZERO, FlEvent::BgArrival { array });
    }
    if let Some(at) = kill_at {
        sim.schedule_at(at, FlEvent::Kill);
    }
    sim.run_to_completion();
    let world = sim.into_world();

    let (_merged, sketch_merges) = world.rollup.merged();
    let fleet = FleetCounters {
        arrays_failed: world.arrays_failed,
        failovers: world.failovers,
        retries: world.retries,
        rereplication_ios: world.rereplication_ios,
    };
    afa_sim::metrics::add_fleet(fleet);
    afa_sim::metrics::add_frontend(FrontendCounters {
        requests_admitted: world.admitted,
        requests_shed: world.shed,
        hedges_fired: world.hedges_fired,
        hedges_won: world.hedges_won,
        slab_peak_live: world.book.peak_in_flight() as u64,
        sketch_merges,
    });
    // Secondary arrays' reaps are interrupt completions too: sum every
    // array instance so the stitched manifest sees the whole fleet,
    // not just one world's flush.
    afa_sim::metrics::add_completion(CompletionCounters {
        interrupts: world.arrays.iter().map(ArrayInstance::completions).sum(),
        ..CompletionCounters::default()
    });
    let cell = FailoverCell {
        stage: cfg.stage,
        arrays: arrays_n,
        r: cfg.r,
        before: world.before.profile(),
        during: world.during.profile(),
        after: world.after.profile(),
        time_to_recovery: match (kill_at, world.recovered_at) {
            (Some(kill), Some(healed)) => Some(healed.saturating_since(kill)),
            _ => None,
        },
        recovered_within_run: world
            .recovered_at
            .is_some_and(|healed| healed <= world.deadline + SimDuration::millis(50)),
        per_array: (0..arrays_n)
            .map(|a| {
                (
                    world.arrays[a].completions(),
                    world.rollup.array(a).value_at_percentile(99.9) as f64 / 1_000.0,
                )
            })
            .collect(),
        fleet,
        admitted: world.admitted,
        shed: world.shed,
        stale_drops: world.stale_drops,
        causes: world.ledger.iter().collect(),
        ledger_mismatches: world.ledger_mismatches,
    };
    let extras = RunExtras {
        median_us: world.hist.value_at_percentile(50.0) as f64 / 1_000.0,
        write_median_us: world.write_hist.value_at_percentile(50.0) as f64 / 1_000.0,
        client: world.hist.profile(),
        hedges_fired: world.hedges_fired,
        hedges_won: world.hedges_won,
        settled: world.settled,
        in_flight_at_end: world.book.in_flight() as u64,
    };
    (cell, extras)
}

/// Per-sub routing state for one open request.
#[derive(Clone, Copy, Debug)]
struct SubRoute {
    /// Array currently serving this sub's live attempt.
    array: usize,
    /// Attempt fence: only events carrying the current attempt may
    /// touch the sub, so a retry can never double-settle.
    attempt: u32,
    lba: u64,
    done: bool,
}

/// The winning (latest-settling) sub's full timeline, for exact
/// ledger attribution.
#[derive(Clone, Copy, Debug)]
struct FleetTimeline {
    array: usize,
    sent_at: SimTime,
    at_array: SimTime,
    arr_submit_end: SimTime,
    at_device: SimTime,
    dev_done: SimTime,
    at_host: SimTime,
    wake_ready: SimTime,
    run_start: SimTime,
    reap_end: SimTime,
    client_rx: SimTime,
    settle_end: SimTime,
}

/// One open request's fleet-side state, shadow-indexed by the book's
/// dense slot index.
#[derive(Clone, Debug)]
struct RouteState {
    /// Full generation-checked id — a recycled slot with a different
    /// id means this route is stale.
    id: u64,
    volume: u64,
    write: bool,
    arrived_at: SimTime,
    submit_end: SimTime,
    /// Marked when failover ran out of replicas; the request still
    /// settles (exactly once) but is excluded from latency stats.
    shed: bool,
    subs: Vec<SubRoute>,
    best: Option<FleetTimeline>,
}

#[derive(Debug)]
enum FlEvent {
    /// One open-loop fleet request arrives.
    Arrival,
    /// A sub-I/O's RPC landed at its array.
    NetArrive {
        request: u64,
        sub: usize,
        attempt: u32,
        array: usize,
        from_hedge: bool,
        sent_at: SimTime,
    },
    /// The device finished; the completion crosses the array's PCIe
    /// fabric next.
    DevDone {
        request: u64,
        sub: usize,
        attempt: u32,
        array: usize,
        device: usize,
        from_hedge: bool,
        sent_at: SimTime,
        at_array: SimTime,
        arr_submit_end: SimTime,
        at_device: SimTime,
    },
    /// The completion reached the array host: IRQ, wake, reap, then
    /// the network leg home.
    ArrayReap {
        request: u64,
        sub: usize,
        attempt: u32,
        array: usize,
        device: usize,
        from_hedge: bool,
        sent_at: SimTime,
        at_array: SimTime,
        arr_submit_end: SimTime,
        at_device: SimTime,
        dev_done: SimTime,
    },
    /// The completion RPC landed back at the frontend.
    NetReturn {
        request: u64,
        sub: usize,
        attempt: u32,
        from_hedge: bool,
        timeline: FleetTimeline,
    },
    /// The cross-array hedge timer for a read fired.
    HedgeFire { request: u64 },
    /// A failed-over sub-I/O's backoff expired; re-issue it.
    Retry {
        request: u64,
        sub: usize,
        attempt: u32,
    },
    /// The fault plan kills an array now.
    Kill,
    /// One paced re-replication copy starts.
    Rerepl { job: usize },
    /// One re-replication copy's target write finished.
    RereplDone,
    /// Background host noise on one array.
    BgArrival { array: usize },
}

struct FleetWorld {
    arrays: Vec<ArrayInstance>,
    hops: Vec<NetHop>,
    devices_per: usize,
    r: usize,
    policy: ReadPolicy,
    write_percent: u64,
    book: RequestBook,
    /// Open-route state, shadow-indexed by the request handle's dense
    /// slot index (slots recycle with the book's slab).
    routes: Vec<Option<RouteState>>,
    retry: RetryPolicy,
    heal_plan: Vec<HealJob>,
    rng_arrival: SimRng,
    rng_volume: SimRng,
    rng_lba: SimRng,
    rng_write: SimRng,
    hedge: Option<HedgePolicy>,
    sched_policy: SchedPolicy,
    /// Read-any round-robin cursor.
    rotate: u64,
    kill_array: usize,
    dead: Option<usize>,
    /// Until when the frontend still routes by the pre-kill placement
    /// map (dispatches to the dead primary fail over via RPC timeout).
    routing_stale_until: Option<SimTime>,
    heal_outstanding: u64,
    recovered_at: Option<SimTime>,
    hist: LatencyHistogram,
    /// Writes only: the replication-tax view (slowest-of-R settles).
    write_hist: LatencyHistogram,
    before: LatencyHistogram,
    during: LatencyHistogram,
    after: LatencyHistogram,
    rollup: SketchRollup,
    ledger: RequestLedger,
    req_ledger: RequestLedger,
    ledger_mismatches: u64,
    admitted: u64,
    settled: u64,
    shed: u64,
    stale_drops: u64,
    arrays_failed: u64,
    failovers: u64,
    retries: u64,
    rereplication_ios: u64,
    hedges_fired: u64,
    hedges_won: u64,
    deadline: SimTime,
    horizon: SimTime,
}

impl FleetWorld {
    fn alive_ids(&self) -> Vec<usize> {
        (0..self.arrays.len())
            .filter(|&a| self.arrays[a].is_alive())
            .collect()
    }

    fn device_of(&self, volume: u64) -> usize {
        (volume % self.devices_per as u64) as usize
    }

    fn route(&self, request: u64) -> Option<&RouteState> {
        let slot = (request & 0xffff_ffff) as usize;
        self.routes
            .get(slot)?
            .as_ref()
            .filter(|route| route.id == request)
    }

    fn route_mut(&mut self, request: u64) -> Option<&mut RouteState> {
        let slot = (request & 0xffff_ffff) as usize;
        self.routes
            .get_mut(slot)?
            .as_mut()
            .filter(|route| route.id == request)
    }

    /// Sends one sub-I/O attempt across the network to its array.
    #[allow(clippy::too_many_arguments)]
    fn send_sub(
        &mut self,
        request: u64,
        sub: usize,
        attempt: u32,
        array: usize,
        write: bool,
        from_hedge: bool,
        sent_at: SimTime,
        sched: &mut Scheduler<'_, FlEvent>,
    ) {
        let req_bytes = RPC_ENVELOPE + if write { DATA_BYTES as u64 } else { 0 };
        let at_array = self.hops[array].request.reserve(sent_at, req_bytes);
        sched.at(
            at_array,
            FlEvent::NetArrive {
                request,
                sub,
                attempt,
                array,
                from_hedge,
                sent_at,
            },
        );
    }

    /// Whether an event's `(request, sub, attempt)` still addresses
    /// the live attempt of an open route.
    fn attempt_live(&self, request: u64, sub: usize, attempt: u32) -> bool {
        self.route(request)
            .and_then(|route| route.subs.get(sub))
            .is_some_and(|s| s.attempt == attempt && !s.done)
    }

    /// Settles a sub completion into the book and, on finish, tiles
    /// the request's latency through the cause ledger.
    fn settle(
        &mut self,
        request: u64,
        sub: usize,
        from_hedge: bool,
        timeline: Option<FleetTimeline>,
        settle_end: SimTime,
    ) {
        if let Some(policy) = self.hedge.as_mut() {
            if let Some(dispatched) = self.book.dispatched_at(request) {
                policy.observe(settle_end.saturating_since(dispatched));
            }
        }
        match self.book.complete_sub(request, sub, settle_end, from_hedge) {
            SubCompletion::Duplicate => {}
            SubCompletion::Pending => {
                let route = self.route_mut(request).expect("book says request is live");
                route.subs[sub].done = true;
                if let Some(t) = timeline {
                    match &mut route.best {
                        Some(best) if best.settle_end >= t.settle_end => {}
                        slot => *slot = Some(t),
                    }
                }
            }
            SubCompletion::Finished(fin) => {
                let slot = (request & 0xffff_ffff) as usize;
                let mut route = self.routes[slot]
                    .take()
                    .expect("route for finished request");
                debug_assert_eq!(route.id, request);
                route.subs[sub].done = true;
                if let Some(t) = timeline {
                    match &mut route.best {
                        Some(best) if best.settle_end >= t.settle_end => {}
                        slot => *slot = Some(t),
                    }
                }
                if fin.hedge_won {
                    self.hedges_won += 1;
                }
                if route.shed {
                    self.shed += 1;
                    return;
                }
                self.settled += 1;
                let best = route.best.expect("finished request has a timeline");
                let latency = fin.latency();
                self.hist.record(latency.as_nanos());
                if route.write {
                    self.write_hist.record(latency.as_nanos());
                }
                self.rollup.record(best.array, latency.as_nanos());
                let phase = match self.dead {
                    None => &mut self.before,
                    Some(_) if self.heal_outstanding > 0 || self.recovered_at.is_none() => {
                        &mut self.during
                    }
                    Some(_) => &mut self.after,
                };
                phase.record(latency.as_nanos());
                // Exact attribution: every segment between adjacent
                // timestamps of the winning sub's timeline, client
                // clock to client clock. Telescopes to `latency`.
                let ledger = &mut self.req_ledger;
                ledger.reset();
                ledger.charge(
                    Cause::CpuWork,
                    route.submit_end.saturating_since(route.arrived_at)
                        + best.arr_submit_end.saturating_since(best.at_array)
                        + best.reap_end.saturating_since(best.run_start)
                        + best.settle_end.saturating_since(best.client_rx),
                );
                // Backoff / hedge wait between client submit and the
                // winning attempt's network send.
                ledger.charge(
                    Cause::Other,
                    best.sent_at.saturating_since(route.submit_end),
                );
                ledger.charge(
                    Cause::Network,
                    best.at_array.saturating_since(best.sent_at)
                        + best.client_rx.saturating_since(best.reap_end),
                );
                ledger.charge(
                    Cause::Fabric,
                    best.at_device.saturating_since(best.arr_submit_end)
                        + best.at_host.saturating_since(best.dev_done),
                );
                ledger.charge(
                    Cause::DeviceService,
                    best.dev_done.saturating_since(best.at_device),
                );
                ledger.charge(
                    Cause::IrqHandling,
                    best.wake_ready.saturating_since(best.at_host),
                );
                ledger.charge(
                    Cause::SchedulerDelay,
                    best.run_start.saturating_since(best.wake_ready),
                );
                if ledger.total() != latency {
                    self.ledger_mismatches += 1;
                }
                for (cause, d) in ledger.iter() {
                    self.ledger.charge(cause, d);
                }
            }
        }
    }

    /// Settles a sub as shed: the request still completes exactly
    /// once, but the latency is excluded from the serving stats.
    fn shed_sub(&mut self, request: u64, sub: usize, now: SimTime) {
        if let Some(route) = self.route_mut(request) {
            route.shed = true;
        }
        self.settle(request, sub, false, None, now);
    }
}

impl World for FleetWorld {
    type Event = FlEvent;

    fn handle(&mut self, event: FlEvent, sched: &mut Scheduler<'_, FlEvent>) {
        match event {
            FlEvent::Arrival => {
                let now = sched.now();
                let gap = self.rng_arrival.exponential(1.0 / ARRIVAL_RATE);
                let next = now + SimDuration::from_secs_f64(gap);
                if next < self.deadline {
                    sched.at(next, FlEvent::Arrival);
                }
                let volume = self.rng_volume.below(VOLUMES);
                let write =
                    self.write_percent > 0 && self.rng_write.below(100) < self.write_percent;
                let lba = self.rng_lba.below(LBA_SPACE);
                let alive = self.alive_ids();
                let placement = place_among(volume, &alive, self.r);
                // While the routing map is stale (just after a kill),
                // reads still dispatch by the pre-kill placement; one
                // aimed at the dead primary burns the RPC timeout and
                // fails over through the retry path.
                let mut dead_dispatch = false;
                let targets: Vec<usize> = if write {
                    placement
                } else {
                    let stale = match (self.dead, self.routing_stale_until) {
                        (Some(dead), Some(until)) if now < until => {
                            let all: Vec<usize> = (0..self.arrays.len()).collect();
                            let pre = place_among(volume, &all, self.r);
                            let target = match self.policy {
                                ReadPolicy::Primary | ReadPolicy::HedgedSecondary => pre[0],
                                ReadPolicy::ReadAny => {
                                    self.rotate += 1;
                                    pre[(self.rotate % pre.len() as u64) as usize]
                                }
                            };
                            dead_dispatch = target == dead;
                            Some(target)
                        }
                        _ => None,
                    };
                    let target = stale.unwrap_or_else(|| match self.policy {
                        ReadPolicy::Primary | ReadPolicy::HedgedSecondary => placement[0],
                        ReadPolicy::ReadAny => {
                            self.rotate += 1;
                            placement[(self.rotate % placement.len() as u64) as usize]
                        }
                    });
                    vec![target]
                };
                let subs: Vec<SubIo> = targets
                    .iter()
                    .map(|&array| SubIo {
                        member: array,
                        lba,
                        bytes: DATA_BYTES,
                    })
                    .collect();
                let submit_end = now + CLIENT_SUBMIT;
                let id = self.book.begin(0, now, now, &subs);
                self.admitted += 1;
                let slot = (id & 0xffff_ffff) as usize;
                if slot >= self.routes.len() {
                    self.routes.resize_with(slot + 1, || None);
                }
                let attempt = if dead_dispatch { 2 } else { 1 };
                self.routes[slot] = Some(RouteState {
                    id,
                    volume,
                    write,
                    arrived_at: now,
                    submit_end,
                    shed: false,
                    subs: targets
                        .iter()
                        .map(|&array| SubRoute {
                            array,
                            attempt,
                            lba,
                            done: false,
                        })
                        .collect(),
                    best: None,
                });
                if dead_dispatch {
                    // The dispatch went to a corpse: nothing was sent,
                    // the client waits out the RPC timeout and retries
                    // on a surviving replica.
                    self.failovers += 1;
                    let backoff = self.retry.delay(2).expect("first retry is in budget");
                    sched.at(
                        submit_end + backoff,
                        FlEvent::Retry {
                            request: id,
                            sub: 0,
                            attempt: 2,
                        },
                    );
                } else {
                    for (i, &array) in targets.iter().enumerate() {
                        self.send_sub(id, i, 1, array, write, false, submit_end, sched);
                    }
                }
                if !write && self.policy == ReadPolicy::HedgedSecondary {
                    if let Some(delay) = self.hedge.as_ref().and_then(HedgePolicy::delay) {
                        sched.at(submit_end + delay, FlEvent::HedgeFire { request: id });
                    }
                }
            }
            FlEvent::NetArrive {
                request,
                sub,
                attempt,
                array,
                from_hedge,
                sent_at,
            } => {
                if !self.attempt_live(request, sub, attempt) {
                    self.stale_drops += 1;
                    return;
                }
                let now = sched.now();
                let route = self.route(request).expect("attempt_live checked");
                let (write, lba, volume) = (route.write, route.subs[sub].lba, route.volume);
                let device = self.device_of(volume);
                let cmd = if write {
                    NvmeCommand::write(lba, DATA_BYTES)
                } else {
                    NvmeCommand::read(lba, DATA_BYTES)
                };
                let times = self.arrays[array].ingest(now, device, cmd, ARRAY_SUBMIT);
                sched.at(
                    times.dev_done,
                    FlEvent::DevDone {
                        request,
                        sub,
                        attempt,
                        array,
                        device,
                        from_hedge,
                        sent_at,
                        at_array: now,
                        arr_submit_end: times.submit_end,
                        at_device: times.at_device,
                    },
                );
            }
            FlEvent::DevDone {
                request,
                sub,
                attempt,
                array,
                device,
                from_hedge,
                sent_at,
                at_array,
                arr_submit_end,
                at_device,
            } => {
                if !self.attempt_live(request, sub, attempt) {
                    self.stale_drops += 1;
                    return;
                }
                let now = sched.now();
                let write = self.route(request).expect("attempt_live checked").write;
                let payload = if write { 64 } else { DATA_BYTES as u64 };
                let at_host = self.arrays[array].completion_to_host(device, now, payload);
                sched.at(
                    at_host,
                    FlEvent::ArrayReap {
                        request,
                        sub,
                        attempt,
                        array,
                        device,
                        from_hedge,
                        sent_at,
                        at_array,
                        arr_submit_end,
                        at_device,
                        dev_done: now,
                    },
                );
            }
            FlEvent::ArrayReap {
                request,
                sub,
                attempt,
                array,
                device,
                from_hedge,
                sent_at,
                at_array,
                arr_submit_end,
                at_device,
                dev_done,
            } => {
                if !self.attempt_live(request, sub, attempt) {
                    self.stale_drops += 1;
                    return;
                }
                let now = sched.now();
                let policy = self.sched_policy;
                let reap = self.arrays[array].reap(device, now, policy, ARRAY_REAP);
                let write = self.route(request).expect("attempt_live checked").write;
                let ret_bytes = RPC_ENVELOPE + if write { 0 } else { DATA_BYTES as u64 };
                let client_rx = self.hops[array]
                    .completion
                    .reserve(reap.reap_end, ret_bytes);
                sched.at(
                    client_rx,
                    FlEvent::NetReturn {
                        request,
                        sub,
                        attempt,
                        from_hedge,
                        timeline: FleetTimeline {
                            array,
                            sent_at,
                            at_array,
                            arr_submit_end,
                            at_device,
                            dev_done,
                            at_host: now,
                            wake_ready: reap.wake_ready,
                            run_start: reap.run_start,
                            reap_end: reap.reap_end,
                            client_rx,
                            settle_end: client_rx + CLIENT_REAP,
                        },
                    },
                );
            }
            FlEvent::NetReturn {
                request,
                sub,
                attempt,
                from_hedge,
                timeline,
            } => {
                let settle_end = sched.now() + CLIENT_REAP;
                if !self.attempt_live(request, sub, attempt) {
                    // In a hedged cell a completion addressed to a
                    // finished request (or to a done sub of a live
                    // one) is the hedge race's loser, and the book is
                    // owed its cancellation. Hedged cells never
                    // inject faults, so nothing else can land here.
                    // In a faulted cell the only late completions are
                    // pre-failover attempts fenced by the attempt
                    // guard: drop them, the retry owns the sub.
                    let loser = self.hedge.is_some()
                        && (self.route(request).is_none()
                            || self
                                .route(request)
                                .and_then(|route| route.subs.get(sub))
                                .is_some_and(|s| s.attempt == attempt && s.done));
                    if loser {
                        self.settle(request, sub, from_hedge, None, settle_end);
                    } else {
                        self.stale_drops += 1;
                    }
                    return;
                }
                self.settle(request, sub, from_hedge, Some(timeline), settle_end);
            }
            FlEvent::HedgeFire { request } => {
                let now = sched.now();
                let Some((sub, _io)) = self.book.hedge_straggler(request) else {
                    return;
                };
                let route = self.route(request).expect("book says request is live");
                let (volume, attempt, primary, write) = (
                    route.volume,
                    route.subs[sub].attempt,
                    route.subs[sub].array,
                    route.write,
                );
                let alive = self.alive_ids();
                let placement = place_among(volume, &alive, self.r);
                let Some(&secondary) = placement.iter().find(|&&a| a != primary) else {
                    return;
                };
                self.hedges_fired += 1;
                self.send_sub(request, sub, attempt, secondary, write, true, now, sched);
            }
            FlEvent::Retry {
                request,
                sub,
                attempt,
            } => {
                if !self.attempt_live(request, sub, attempt) {
                    return;
                }
                let now = sched.now();
                if self.book.retry_sub(request, sub).is_none() {
                    return;
                }
                let route = self.route(request).expect("attempt_live checked");
                let (volume, write) = (route.volume, route.write);
                let alive = self.alive_ids();
                if alive.is_empty() {
                    self.shed_sub(request, sub, now);
                    return;
                }
                let placement = place_among(volume, &alive, self.r);
                let target = placement[0];
                self.retries += 1;
                let route = self.route_mut(request).expect("attempt_live checked");
                route.subs[sub].array = target;
                self.send_sub(request, sub, attempt, target, write, false, now, sched);
            }
            FlEvent::Kill => {
                let now = sched.now();
                let dead = self.kill_array;
                self.arrays[dead].kill();
                self.arrays_failed += 1;
                self.dead = Some(dead);
                self.routing_stale_until = Some(now + ROUTING_STALE);
                // Fail open attempts over: bump the attempt fence and
                // schedule backed-off retries on the survivors.
                let mut sweeps = Vec::new();
                for route in self.routes.iter_mut().flatten() {
                    for (i, s) in route.subs.iter_mut().enumerate() {
                        if !s.done && s.array == dead {
                            s.attempt += 1;
                            sweeps.push((route.id, i, s.attempt));
                        }
                    }
                }
                for (request, sub, attempt) in sweeps {
                    self.failovers += 1;
                    match self.retry.delay(attempt) {
                        Some(backoff) => sched.at(
                            now + backoff,
                            FlEvent::Retry {
                                request,
                                sub,
                                attempt,
                            },
                        ),
                        None => self.shed_sub(request, sub, now),
                    }
                }
                // Plan re-replication, paced to drain over half the
                // remaining runtime so it competes with (instead of
                // swamping) foreground I/O.
                let all: Vec<usize> = (0..self.arrays.len()).collect();
                self.heal_plan = heal_jobs(VOLUMES, &all, dead, self.r);
                self.heal_outstanding = self.heal_plan.len() as u64;
                if self.heal_plan.is_empty() {
                    self.recovered_at = Some(now);
                    return;
                }
                let window_ns = self.deadline.saturating_since(now).as_nanos() / 2;
                let gap_ns = (window_ns / self.heal_plan.len() as u64).max(1);
                for job in 0..self.heal_plan.len() {
                    sched.at(
                        now + SimDuration::nanos(gap_ns * (job as u64 + 1)),
                        FlEvent::Rerepl { job },
                    );
                }
            }
            FlEvent::Rerepl { job } => {
                let now = sched.now();
                let HealJob {
                    volume,
                    source,
                    target,
                } = self.heal_plan[job];
                if !self.arrays[source].is_alive() || !self.arrays[target].is_alive() {
                    self.heal_outstanding -= 1;
                    if self.heal_outstanding == 0 {
                        self.recovered_at = Some(now);
                    }
                    return;
                }
                let device = self.device_of(volume);
                let lba = (volume * 16) % (LBA_SPACE - 16);
                let read = self.arrays[source].ingest(
                    now,
                    device,
                    NvmeCommand::read(lba, HEAL_BYTES),
                    ARRAY_SUBMIT,
                );
                // Ship the copy source→frontend→target on the same
                // paired legs foreground traffic uses: the heal
                // genuinely competes for network and device time.
                let relay = self.hops[source]
                    .completion
                    .reserve(read.dev_done, HEAL_BYTES as u64);
                let at_target = self.hops[target].request.reserve(relay, HEAL_BYTES as u64);
                let write = self.arrays[target].ingest(
                    at_target,
                    device,
                    NvmeCommand::write(lba, HEAL_BYTES),
                    ARRAY_SUBMIT,
                );
                self.rereplication_ios += 2;
                sched.at(write.dev_done, FlEvent::RereplDone);
            }
            FlEvent::RereplDone => {
                self.heal_outstanding -= 1;
                if self.heal_outstanding == 0 {
                    self.recovered_at = Some(sched.now());
                }
            }
            FlEvent::BgArrival { array } => {
                let now = sched.now();
                self.arrays[array].spawn_background(now);
                let next = self.arrays[array].next_background_arrival(now);
                if next < self.horizon {
                    sched.at(next, FlEvent::BgArrival { array });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_spikes_the_tail_then_recovers() {
        let scale = ExperimentScale::new(SimDuration::millis(400), 8, 42);
        let result = fleet_failover(scale);
        assert_eq!(result.cells.len(), TuningStage::ALL.len());
        for cell in &result.cells {
            assert_eq!(
                cell.ledger_mismatches, 0,
                "{:?} ledger must tile",
                cell.stage
            );
            assert_eq!(cell.fleet.arrays_failed, 1);
            assert!(
                cell.fleet.failovers > 0,
                "{:?}: open requests failed over",
                cell.stage
            );
            assert!(
                cell.fleet.retries > 0,
                "{:?}: retries re-issued",
                cell.stage
            );
            assert!(cell.fleet.rereplication_ios > 0);
            assert!(
                cell.recovered_within_run,
                "{:?}: heal must drain",
                cell.stage
            );
            let ttr = cell.time_to_recovery.expect("kill happened");
            assert!(ttr > SimDuration::ZERO);
            let pre999 = cell.before.get_micros(NinesPoint::Nines3);
            let dur999 = cell.during.get_micros(NinesPoint::Nines3);
            assert!(
                dur999 > pre999,
                "{:?}: failover window p99.9 ({dur999:.1}us) must exceed steady state ({pre999:.1}us)",
                cell.stage
            );
            assert!(
                cell.before.samples() > 200,
                "{:?}: thin pre-kill phase",
                cell.stage
            );
            assert!(cell.during.samples() > 0);
            assert_eq!(
                cell.shed, 0,
                "{:?}: R=2 with one kill never sheds",
                cell.stage
            );
            // Secondary arrays reap their share: every array completes
            // something, dead array included (it served before t=50%).
            for (array, &(completions, _)) in cell.per_array.iter().enumerate() {
                assert!(
                    completions > 0,
                    "{:?}: array {array} reaped nothing",
                    cell.stage
                );
            }
            assert!(
                cell.causes.iter().any(|&(c, _)| c == Cause::Network),
                "{:?}: the network hop must appear in the cause totals",
                cell.stage
            );
        }
    }

    #[test]
    fn replication_taxes_the_median_and_hedging_trims_the_tail() {
        let scale = ExperimentScale::new(SimDuration::millis(400), 8, 42);
        let result = fleet_replication(scale);
        assert_eq!(result.cells.len(), 9);
        for cell in &result.cells {
            assert_eq!(cell.ledger_mismatches, 0);
            assert!(cell.admitted > 0);
        }
        let wmed = |r, policy| {
            result
                .cell(r, policy)
                .unwrap_or_else(|| panic!("missing cell r={r}"))
                .write_median_us
        };
        // A write settles at the slowest of its R replicas: the
        // write median must rise with R under the primary policy.
        assert!(
            wmed(3, ReadPolicy::Primary) > wmed(1, ReadPolicy::Primary),
            "R=3 write median {:.1}us !> R=1 write median {:.1}us",
            wmed(3, ReadPolicy::Primary),
            wmed(1, ReadPolicy::Primary)
        );
        let hedged = result
            .cell(2, ReadPolicy::HedgedSecondary)
            .expect("hedged cell");
        assert!(hedged.hedges_fired > 0, "warm policy must hedge");
        assert!(hedged.hedges_won <= hedged.hedges_fired);
        // At R=1 there is no secondary to hedge onto.
        let solo = result.cell(1, ReadPolicy::HedgedSecondary).expect("r=1");
        assert_eq!(solo.hedges_fired, 0);
    }

    #[test]
    fn probe_settles_every_admitted_request_exactly_once() {
        for (seed, frac) in [(1u64, 0.3), (2, 0.5), (3, 0.8)] {
            let out = fleet_failover_probe(seed, frac);
            assert!(out.admitted > 0);
            assert_eq!(
                out.admitted,
                out.settled + out.shed,
                "seed {seed}: every admitted request settles exactly once"
            );
            assert_eq!(out.in_flight_at_end, 0, "seed {seed}: book drained");
            assert_eq!(out.ledger_mismatches, 0, "seed {seed}: ledgers tile");
        }
    }

    #[test]
    fn artifacts_are_deterministic() {
        let scale = ExperimentScale::new(SimDuration::millis(60), 8, 9);
        let a = fleet_failover(scale).to_json().to_string();
        let b = fleet_failover(scale).to_json().to_string();
        assert_eq!(a, b, "same seed must serialize byte-identically");
        let c = fleet_replication(scale).to_json().to_string();
        let d = fleet_replication(scale).to_json().to_string();
        assert_eq!(c, d);
    }
}
