//! Root-cause analysis: the simulated LTTng pass of §IV-B/§IV-D.
//!
//! The paper finds its tail causes by tracing kernel events with LTTng
//! and attributing delays to interfering processes, IRQ misrouting and
//! firmware housekeeping. The simulator can attribute *every*
//! nanosecond on the completion path directly; this experiment runs a
//! configuration with attribution enabled and reports the per-cause
//! latency budget.

use afa_sim::trace::Cause;
use afa_stats::Json;

use crate::config::AfaConfig;
use crate::experiment::registry::{cause_rows_json, ExperimentResult};
use crate::experiment::{pool, ExperimentScale};
use crate::system::AfaSystem;
use crate::tuning::TuningStage;

/// Per-cause latency budget of one configuration.
#[derive(Clone, Debug)]
pub struct RootCauseReport {
    /// The analyzed tuning stage.
    pub stage: TuningStage,
    /// `(cause, total µs, events, µs per completed I/O)` rows, sorted
    /// by total descending.
    pub rows: Vec<(Cause, f64, u64, f64)>,
    /// Completed I/Os across the array.
    pub completed: u64,
}

impl RootCauseReport {
    /// The dominant cause (largest total).
    pub fn dominant(&self) -> Option<Cause> {
        self.rows.first().map(|&(c, _, _, _)| c)
    }

    /// Total attributed per I/O for `cause`, µs.
    pub fn per_io_us(&self, cause: Cause) -> f64 {
        self.rows
            .iter()
            .find(|&&(c, _, _, _)| c == cause)
            .map(|&(_, _, _, per_io)| per_io)
            .unwrap_or(0.0)
    }

    /// Renders the budget table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Root cause analysis — '{}' configuration, {} I/Os\n",
            self.stage.label(),
            self.completed
        );
        out.push_str(&format!(
            "{:<20} {:>14} {:>12} {:>12}\n",
            "cause", "total(ms)", "events", "us/io"
        ));
        for (cause, total_us, events, per_io) in &self.rows {
            out.push_str(&format!(
                "{:<20} {:>14.1} {:>12} {:>12.3}\n",
                cause.label(),
                total_us / 1_000.0,
                events,
                per_io
            ));
        }
        out
    }

    /// One CSV row per cause.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stage,cause,total_us,events,us_per_io\n");
        for (cause, total_us, events, per_io) in &self.rows {
            out.push_str(&format!(
                "{},{},{total_us:.3},{events},{per_io:.4}\n",
                self.stage.label(),
                cause.label()
            ));
        }
        out
    }

    /// Serializes the budget.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stage", Json::str(self.stage.label())),
            ("completed", Json::u64(self.completed)),
            ("causes", cause_rows_json(&self.rows)),
        ])
    }
}

impl ExperimentResult for RootCauseReport {
    fn to_table(&self) -> String {
        RootCauseReport::to_table(self)
    }

    fn to_csv(&self) -> String {
        RootCauseReport::to_csv(self)
    }

    fn to_json(&self) -> Json {
        RootCauseReport::to_json(self)
    }

    fn samples(&self) -> u64 {
        self.completed
    }
}

/// Per-cause budgets across the whole tuning ladder — the registry's
/// `rootcause` experiment.
#[derive(Clone, Debug)]
pub struct RootCauseLadder {
    /// One report per [`TuningStage::ALL`] entry, in ladder order.
    pub reports: Vec<RootCauseReport>,
}

impl ExperimentResult for RootCauseLadder {
    fn to_table(&self) -> String {
        let mut out = String::new();
        for report in &self.reports {
            out.push_str(&report.to_table());
            out.push('\n');
        }
        out
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("stage,cause,total_us,events,us_per_io\n");
        for report in &self.reports {
            for line in report.to_csv().lines().skip(1) {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::arr(self.reports.iter().map(RootCauseReport::to_json))
    }

    fn samples(&self) -> u64 {
        self.reports.iter().map(|r| r.completed).sum()
    }
}

/// Runs [`root_cause`] for every stage of the ladder (on the bounded
/// pool), in ladder order.
pub fn root_cause_ladder(scale: ExperimentScale) -> RootCauseLadder {
    let reports = pool::map_bounded(TuningStage::ALL.to_vec(), |stage| root_cause(stage, scale));
    RootCauseLadder { reports }
}

/// Runs `stage` with cause attribution on and reports the budget.
pub fn root_cause(stage: TuningStage, scale: ExperimentScale) -> RootCauseReport {
    let config = AfaConfig::paper(stage)
        .with_ssds(scale.ssds)
        .with_runtime(scale.runtime)
        .with_seed(scale.seed)
        .with_cause_attribution(true);
    let result = AfaSystem::run(&config);
    let completed: u64 = result.reports.iter().map(|r| r.completed()).sum();
    let causes = result.causes.expect("attribution enabled");
    let mut rows: Vec<(Cause, f64, u64, f64)> = causes
        .iter()
        .map(|(cause, total, count)| {
            let total_us = total.as_micros_f64();
            (cause, total_us, count, total_us / completed.max(1) as f64)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    RootCauseReport {
        stage,
        rows,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_sim::SimDuration;

    fn scale() -> ExperimentScale {
        ExperimentScale::new(SimDuration::millis(150), 6, 42)
    }

    #[test]
    fn device_service_dominates_when_tuned() {
        let report = root_cause(TuningStage::ExperimentalFirmware, scale());
        assert_eq!(report.dominant(), Some(Cause::DeviceService));
        assert!(report.per_io_us(Cause::DeviceService) > 15.0);
        assert_eq!(report.per_io_us(Cause::Housekeeping), 0.0);
        assert!(report.to_table().contains("device_service"));
    }

    #[test]
    fn scheduler_delay_appears_under_default() {
        // The paper's interference needs the paper's geometry: with
        // most CPUs hosting fio threads, stock placement has nowhere
        // clean to put the daemons (§IV-C). Few-device runs leave too
        // many genuinely idle CPUs for the effect to show.
        let scale = ExperimentScale::new(SimDuration::millis(150), 48, 42);
        let report = root_cause(TuningStage::Default, scale);
        // Interference must be visible in the budget even if it does
        // not dominate the (much larger) base service time.
        assert!(
            report.per_io_us(Cause::SchedulerDelay) > 0.5,
            "sched delay {} us/io",
            report.per_io_us(Cause::SchedulerDelay)
        );
        let tuned = root_cause(TuningStage::IrqAffinity, scale);
        assert!(
            tuned.per_io_us(Cause::SchedulerDelay) < report.per_io_us(Cause::SchedulerDelay) / 2.0,
            "tuning must collapse scheduler delay"
        );
    }

    #[test]
    fn remote_completion_vanishes_with_pinning() {
        let balanced = root_cause(TuningStage::Isolcpus, scale());
        let pinned = root_cause(TuningStage::IrqAffinity, scale());
        assert!(balanced.per_io_us(Cause::RemoteCompletion) > 1.0);
        assert_eq!(pinned.per_io_us(Cause::RemoteCompletion), 0.0);
    }
}
