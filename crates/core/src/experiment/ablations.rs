//! Ablation experiments beyond the paper's figures.
//!
//! These probe the design-space questions §V leaves open: how much the
//! timer-tick rate, the C-state depth, the housekeeping protocol and
//! interrupt-vs-polling each contribute, and what happens on aged
//! (non-FOB) devices — the paper's stated future work.

use afa_host::IdlePolicy;
use afa_sim::{SimDuration, SimTime};
use afa_ssd::{FirmwareProfile, NvmeCommand, SmartPolicy, SsdDevice, SsdSpec};
use afa_stats::{Json, LatencyHistogram, NinesPoint};
use afa_workload::IoEngine;

use crate::config::AfaConfig;
use crate::experiment::registry::ExperimentResult;
use crate::experiment::{run_parallel, ExperimentScale};
use crate::tuning::TuningStage;

/// One ablation's sweep: `(setting, mean µs, p99999 µs, max µs)` rows.
#[derive(Clone, Debug)]
pub struct AblationResult {
    /// Ablation title.
    pub title: String,
    /// Sweep rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

impl AblationResult {
    /// Renders the sweep.
    pub fn to_table(&self) -> String {
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!(
            "{:<26} {:>10} {:>12} {:>10}\n",
            "setting", "mean(us)", "p99.999(us)", "max(us)"
        ));
        for (setting, mean, p5, max) in &self.rows {
            out.push_str(&format!(
                "{setting:<26} {mean:>10.1} {p5:>12.1} {max:>10.1}\n"
            ));
        }
        out
    }

    /// One CSV row per sweep setting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("setting,mean_us,p99999_us,max_us\n");
        for (setting, mean, p5, max) in &self.rows {
            out.push_str(&format!(
                "{},{mean:.3},{p5:.3},{max:.3}\n",
                setting.replace(',', ";")
            ));
        }
        out
    }
}

impl ExperimentResult for AblationResult {
    fn to_table(&self) -> String {
        AblationResult::to_table(self)
    }

    fn to_csv(&self) -> String {
        AblationResult::to_csv(self)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::str(&self.title)),
            (
                "rows",
                Json::arr(self.rows.iter().map(|(setting, mean, p5, max)| {
                    Json::obj([
                        ("setting", Json::str(setting)),
                        ("mean_us", Json::f64(*mean)),
                        ("p99999_us", Json::f64(*p5)),
                        ("max_us", Json::f64(*max)),
                    ])
                })),
            ),
        ])
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.rows
            .iter()
            .map(|&(_, _, _, max)| max)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

fn worst_metrics(result: &crate::RunResult) -> (f64, f64, f64) {
    let mut mean = 0.0f64;
    let mut p5 = 0.0f64;
    let mut max = 0.0f64;
    for report in &result.reports {
        let profile = report.profile();
        mean += profile.get_micros(NinesPoint::Average);
        p5 = p5.max(profile.get_micros(NinesPoint::Nines5));
        max = max.max(profile.get_micros(NinesPoint::Max));
    }
    (mean / result.reports.len() as f64, p5, max)
}

/// Tick-rate ablation: under the *default* configuration, CFS wake-up
/// preemption happens at tick granularity, so the tick rate bounds the
/// interference tail.
pub fn ablate_tick(scale: ExperimentScale) -> AblationResult {
    let rates = [100u32, 250, 1_000, 4_000];
    let configs: Vec<AfaConfig> = rates
        .iter()
        .map(|&hz| {
            let mut config = AfaConfig::paper(TuningStage::Default)
                .with_ssds(scale.ssds)
                .with_runtime(scale.runtime)
                .with_seed(scale.seed);
            // Patch the kernel's tick rate through the tuning's config.
            config.tuning = crate::Tuning::new(TuningStage::Default);
            config.tick_override = Some(hz);
            config
        })
        .collect();
    let results = run_parallel(configs);
    let rows = rates
        .iter()
        .zip(results.iter())
        .map(|(&hz, result)| {
            let (mean, p5, max) = worst_metrics(result);
            (format!("CONFIG_HZ={hz}"), mean, p5, max)
        })
        .collect();
    AblationResult {
        title: "Ablation — timer tick rate vs. CFS wake-up tail (default config)".to_owned(),
        rows,
    }
}

/// C-state ablation: the `chrt` stage with different idle policies —
/// quantifies how much of the isolcpus stage's win comes from
/// `idle=poll` / `max_cstate`.
pub fn ablate_cstate(scale: ExperimentScale) -> AblationResult {
    let policies = [
        (
            "cstates<=C6 (default)",
            IdlePolicy::CStates { max_cstate: 6 },
        ),
        ("cstates<=C3", IdlePolicy::CStates { max_cstate: 3 }),
        ("max_cstate=1", IdlePolicy::CStates { max_cstate: 1 }),
        ("idle=poll", IdlePolicy::Poll),
    ];
    let configs: Vec<AfaConfig> = policies
        .iter()
        .map(|&(_, idle)| {
            let mut config = AfaConfig::paper(TuningStage::Chrt)
                .with_ssds(scale.ssds)
                .with_runtime(scale.runtime)
                .with_seed(scale.seed);
            config.idle_override = Some(idle);
            config
        })
        .collect();
    let results = run_parallel(configs);
    let rows = policies
        .iter()
        .zip(results.iter())
        .map(|(&(name, _), result)| {
            let (mean, p5, max) = worst_metrics(result);
            (name.to_owned(), mean, p5, max)
        })
        .collect();
    AblationResult {
        title: "Ablation — idle C-state policy vs. latency (chrt config)".to_owned(),
        rows,
    }
}

/// Housekeeping-protocol ablation (§V's "better housekeeping
/// protocols"): sweep the SMART window duration and period on the
/// fully tuned kernel.
pub fn ablate_smart_period(scale: ExperimentScale) -> AblationResult {
    let policies: Vec<(String, FirmwareProfile)> = vec![
        ("SMART off".to_owned(), FirmwareProfile::experimental()),
        (
            "600us every 25s (prod)".to_owned(),
            FirmwareProfile::production(),
        ),
        (
            "600us every 5s".to_owned(),
            FirmwareProfile::with_smart_policy(
                "ABL-5S",
                SmartPolicy::Periodic {
                    mean_period: SimDuration::secs(5),
                    period_jitter: SimDuration::secs(1),
                    min_duration: SimDuration::micros(300),
                    max_duration: SimDuration::micros(600),
                },
            ),
        ),
        (
            "60us every 2.5s (split)".to_owned(),
            FirmwareProfile::with_smart_policy(
                "ABL-SPLIT",
                SmartPolicy::Periodic {
                    mean_period: SimDuration::millis(2_500),
                    period_jitter: SimDuration::millis(500),
                    min_duration: SimDuration::micros(30),
                    max_duration: SimDuration::micros(60),
                },
            ),
        ),
    ];
    let configs: Vec<AfaConfig> = policies
        .iter()
        .map(|(_, fw)| {
            AfaConfig::paper(TuningStage::IrqAffinity)
                .with_ssds(scale.ssds)
                .with_runtime(scale.runtime)
                .with_seed(scale.seed)
                .with_firmware(fw.clone())
        })
        .collect();
    let results = run_parallel(configs);
    let rows = policies
        .iter()
        .zip(results.iter())
        .map(|((name, _), result)| {
            let (mean, p5, max) = worst_metrics(result);
            (name.clone(), mean, p5, max)
        })
        .collect();
    AblationResult {
        title: "Ablation — SMART housekeeping protocol (irq config)".to_owned(),
        rows,
    }
}

/// Interrupt-vs-polling ablation (§V's open question): polling trades
/// CPU for latency. Rows report latency; the CPU column is the mean
/// CPU time consumed per I/O.
pub fn ablate_poll(scale: ExperimentScale) -> AblationResult {
    let engines = [
        ("libaio (interrupt)", IoEngine::Libaio),
        ("polling", IoEngine::Polling),
    ];
    let configs: Vec<AfaConfig> = engines
        .iter()
        .map(|&(_, engine)| {
            AfaConfig::paper(TuningStage::IrqAffinity)
                .with_ssds(scale.ssds)
                .with_runtime(scale.runtime)
                .with_seed(scale.seed)
                .with_engine(engine)
        })
        .collect();
    let results = run_parallel(configs);
    let rows = engines
        .iter()
        .zip(results.iter())
        .map(|(&(name, _), result)| {
            let (mean, p5, max) = worst_metrics(result);
            // Measured CPU cost per I/O from the host's charge
            // accounting: polling burns the whole latency spinning.
            let completed: u64 = result.reports.iter().map(|r| r.completed()).sum();
            let cpu_us_per_io =
                result.host.stats().io_cpu_busy_ns as f64 / 1e3 / completed.max(1) as f64;
            (
                format!("{name} ({cpu_us_per_io:.1}us CPU/io)"),
                mean,
                p5,
                max,
            )
        })
        .collect();
    AblationResult {
        title: "Ablation — interrupt vs. polling completions (irq config)".to_owned(),
        rows,
    }
}

/// Interrupt-coalescing ablation (the §I "interrupt storm" concern):
/// batching MSIs cuts the interrupt rate but delays completions. Run
/// at QD4 on the tuned kernel with experimental firmware so the
/// coalescer is the only moving part; rows show latency plus measured
/// interrupts per I/O.
pub fn ablate_coalescing(scale: ExperimentScale) -> AblationResult {
    use crate::config::IrqCoalescing;
    let settings: Vec<(String, Option<IrqCoalescing>)> = vec![
        ("off (1 MSI / completion)".to_owned(), None),
        (
            "batch 4 / 20us".to_owned(),
            Some(IrqCoalescing {
                max_batch: 4,
                timeout: SimDuration::micros(20),
            }),
        ),
        (
            "batch 4 / 100us".to_owned(),
            Some(IrqCoalescing {
                max_batch: 4,
                timeout: SimDuration::micros(100),
            }),
        ),
        (
            "batch 16 / 250us".to_owned(),
            Some(IrqCoalescing {
                max_batch: 16,
                timeout: SimDuration::micros(250),
            }),
        ),
    ];
    let configs: Vec<AfaConfig> = settings
        .iter()
        .map(|(_, coalescing)| {
            let mut config = AfaConfig::paper(TuningStage::ExperimentalFirmware)
                .with_ssds(scale.ssds)
                .with_runtime(scale.runtime)
                .with_seed(scale.seed);
            config.iodepth = 4;
            config.irq_coalescing = *coalescing;
            config
        })
        .collect();
    let results = run_parallel(configs);
    let rows = settings
        .iter()
        .zip(results.iter())
        .map(|((name, _), result)| {
            let (mean, p5, max) = worst_metrics(result);
            let completed: u64 = result.reports.iter().map(|r| r.completed()).sum();
            let irq_per_io = result.host.stats().irqs as f64 / completed.max(1) as f64;
            (format!("{name} ({irq_per_io:.2} irq/io)"), mean, p5, max)
        })
        .collect();
    AblationResult {
        title: "Ablation — NVMe interrupt coalescing at QD4 (exp firmware)".to_owned(),
        rows,
    }
}

/// RCU-offload ablation: the §IV-C boot line sets `rcu_nocbs` along
/// with `isolcpus`; this isolates its contribution by running the
/// isolated kernel with and without callback offloading on the fio
/// CPUs.
pub fn ablate_rcu(scale: ExperimentScale) -> AblationResult {
    use afa_host::CpuSet;
    let variants = [("rcu_nocbs set (paper)", true), ("rcu_nocbs unset", false)];
    let configs: Vec<AfaConfig> = variants
        .iter()
        .map(|&(_, offload)| {
            let mut config = AfaConfig::paper(TuningStage::IrqAffinity)
                .with_ssds(scale.ssds)
                .with_runtime(scale.runtime)
                .with_seed(scale.seed);
            if !offload {
                // Leave isolcpus/nohz/idle as tuned, but keep RCU
                // callbacks on the fio CPUs.
                config.rcu_override = Some(CpuSet::EMPTY);
            }
            config
        })
        .collect();
    let results = run_parallel(configs);
    let rows = variants
        .iter()
        .zip(results.iter())
        .map(|(&(name, _), result)| {
            let (mean, p5, max) = worst_metrics(result);
            let hits = result.host.stats().rcu_softirq_hits;
            (format!("{name} ({hits} softirq hits)"), mean, p5, max)
        })
        .collect();
    AblationResult {
        title: "Ablation — rcu_nocbs callback offloading (irq config)".to_owned(),
        rows,
    }
}

/// NUMA ablation (the paper's §VI future work: "exploring all-flash
/// array performance implications in NUMA architecture"). The AFA's
/// uplink hangs off socket 1 (CPU2, §III-A); pin all fio threads to
/// socket 1 (local) vs. socket 0 (every completion crosses the
/// interconnect).
pub fn ablate_numa(scale: ExperimentScale) -> AblationResult {
    use afa_host::CpuId;
    let local: Vec<CpuId> = (10..16).chain(30..36).map(CpuId).collect();
    let remote: Vec<CpuId> = (4..10).chain(24..30).map(CpuId).collect();
    let placements = [
        ("socket 1 (AFA-local)", local),
        ("socket 0 (cross-socket)", remote),
    ];
    let ssds = scale.ssds.min(12);
    let configs: Vec<AfaConfig> = placements
        .iter()
        .map(|(_, cpus)| {
            let assignment: Vec<CpuId> = (0..ssds).map(|n| cpus[n % cpus.len()]).collect();
            AfaConfig::paper(TuningStage::IrqAffinity)
                .with_geometry(crate::CpuSsdGeometry::with_assignment(assignment))
                .with_runtime(scale.runtime)
                .with_seed(scale.seed)
        })
        .collect();
    let results = run_parallel(configs);
    let rows = placements
        .iter()
        .zip(results.iter())
        .map(|((name, _), result)| {
            let (mean, p5, max) = worst_metrics(result);
            (name.to_string(), mean, p5, max)
        })
        .collect();
    AblationResult {
        title: "Ablation — NUMA placement of fio threads (irq config)".to_owned(),
        rows,
    }
}

/// Results of the GC (non-FOB) ablation.
#[derive(Clone, Debug)]
pub struct GcAblationResult {
    /// Read-latency histogram on a FOB device under mixed load.
    pub fob: LatencyHistogram,
    /// Read-latency histogram on an aged device (GC active).
    pub aged: LatencyHistogram,
    /// Write amplification measured on the aged device.
    pub aged_write_amplification: f64,
    /// GC cycles the aged device ran during measurement.
    pub gc_cycles: u64,
}

impl GcAblationResult {
    /// Renders the comparison.
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("Ablation — FOB vs. aged (non-FOB) device, 70/30 mixed 4 KiB load\n");
        out.push_str(&format!(
            "{:<10} {:>10} {:>12} {:>12} {:>10}\n",
            "state", "mean(us)", "p99(us)", "p99.99(us)", "max(us)"
        ));
        for (name, h) in [("FOB", &self.fob), ("aged", &self.aged)] {
            out.push_str(&format!(
                "{:<10} {:>10.1} {:>12.1} {:>12.1} {:>10.1}\n",
                name,
                h.mean() / 1e3,
                h.value_at_percentile(99.0) as f64 / 1e3,
                h.value_at_percentile(99.99) as f64 / 1e3,
                h.max() as f64 / 1e3
            ));
        }
        out.push_str(&format!(
            "aged write amplification: {:.2}, GC cycles: {}\n",
            self.aged_write_amplification, self.gc_cycles
        ));
        out
    }
}

fn histogram_json(h: &LatencyHistogram) -> Json {
    Json::obj([
        ("count", Json::u64(h.count())),
        ("mean_us", Json::f64(h.mean() / 1e3)),
        (
            "p99_us",
            Json::f64(h.value_at_percentile(99.0) as f64 / 1e3),
        ),
        (
            "p9999_us",
            Json::f64(h.value_at_percentile(99.99) as f64 / 1e3),
        ),
        ("max_us", Json::f64(h.max() as f64 / 1e3)),
    ])
}

impl ExperimentResult for GcAblationResult {
    fn to_table(&self) -> String {
        GcAblationResult::to_table(self)
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("state,mean_us,p99_us,p9999_us,max_us\n");
        for (name, h) in [("FOB", &self.fob), ("aged", &self.aged)] {
            out.push_str(&format!(
                "{name},{:.3},{:.3},{:.3},{:.3}\n",
                h.mean() / 1e3,
                h.value_at_percentile(99.0) as f64 / 1e3,
                h.value_at_percentile(99.99) as f64 / 1e3,
                h.max() as f64 / 1e3
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("fob", histogram_json(&self.fob)),
            ("aged", histogram_json(&self.aged)),
            (
                "aged_write_amplification",
                Json::f64(self.aged_write_amplification),
            ),
            ("gc_cycles", Json::u64(self.gc_cycles)),
        ])
    }

    fn samples(&self) -> u64 {
        self.fob.count() + self.aged.count()
    }

    fn headline_max_us(&self) -> Option<f64> {
        Some(self.aged.max() as f64 / 1e3)
    }
}

/// GC ablation (the paper's §VI future work): read tail on a FOB
/// device vs. an aged device where garbage collection interleaves
/// with reads. Device-level (no host), scaled-down capacity so aging
/// is fast.
pub fn ablate_gc(seed: u64) -> GcAblationResult {
    let spec = SsdSpec::scaled_down(512);
    let logical = spec.logical_pages();

    let mixed_load = |dev: &mut SsdDevice, hist: &mut LatencyHistogram, ios: u64, seed: u64| {
        let mut now = SimTime::ZERO + SimDuration::millis(1);
        let mut x = seed | 1;
        for i in 0..ios {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let lba = x % logical;
            if i % 10 < 3 {
                let info = dev.submit(now, NvmeCommand::write(lba, 4096));
                now = now.max(info.completes_at.min(now + SimDuration::micros(40)));
            } else {
                let info = dev.submit(now, NvmeCommand::read(lba, 4096));
                hist.record(info.latency_since(now).as_nanos());
                now = info.completes_at;
            }
            now += SimDuration::micros(3);
        }
    };

    // FOB device: measure immediately after format.
    let mut fob_dev = SsdDevice::new(spec.clone(), FirmwareProfile::experimental(), seed);
    let mut fob = LatencyHistogram::new();
    mixed_load(&mut fob_dev, &mut fob, 60_000, seed);

    // Aged device: overwrite the whole logical space twice first.
    let mut aged_dev = SsdDevice::new(spec, FirmwareProfile::experimental(), seed + 1);
    let mut now = SimTime::ZERO;
    for pass in 0..2u64 {
        for lba in 0..logical {
            let info = aged_dev.submit(now, NvmeCommand::write((lba + pass) % logical, 4096));
            // Open loop: don't wait for the buffer, just pace lightly.
            now = now.max(info.completes_at.min(now + SimDuration::micros(2)));
        }
    }
    let mut aged = LatencyHistogram::new();
    mixed_load(&mut aged_dev, &mut aged, 60_000, seed + 2);

    GcAblationResult {
        fob,
        aged,
        aged_write_amplification: aged_dev.ftl_stats().write_amplification(),
        gc_cycles: aged_dev.ftl_stats().gc_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gc_ablation_ages_the_device() {
        let r = ablate_gc(3);
        assert!(r.gc_cycles > 0, "aged device never collected");
        assert!(r.aged_write_amplification > 1.0);
        assert!(
            r.aged.value_at_percentile(99.99) >= r.fob.value_at_percentile(99.99),
            "aged tail should not be better than FOB"
        );
        assert!(r.to_table().contains("write amplification"));
    }

    #[test]
    fn poll_ablation_shows_latency_win() {
        let scale = ExperimentScale::new(SimDuration::millis(150), 2, 42);
        let r = ablate_poll(scale);
        assert_eq!(r.rows.len(), 2);
        let libaio_mean = r.rows[0].1;
        let poll_mean = r.rows[1].1;
        assert!(
            poll_mean < libaio_mean,
            "polling ({poll_mean}) should beat interrupts ({libaio_mean})"
        );
    }
}
