//! Multi-host enclosure isolation (§III-A).
//!
//! The enclosure serves up to three host servers, with "a static set
//! of the PCIe devices ... dedicated to a particular host" through the
//! two-level switch fabric. The isolation claim is a *fabric*
//! property — the hosts are separate machines — so this experiment
//! drives the shared fabric from all three uplinks at once: host 0
//! runs the paper's latency-sensitive QD1 random reads while hosts 1
//! and 2 either idle or hammer their partitions with deep sequential
//! reads. Host 0's latency profile must not move.

use afa_pcie::PcieFabric;
use afa_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulation, World};
use afa_ssd::{FirmwareProfile, NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::{Json, LatencyHistogram, LatencyProfile, NinesPoint};

use crate::experiment::registry::ExperimentResult;
use crate::experiment::ExperimentScale;

/// Devices per host in the experiment.
const DEVICES_PER_HOST: usize = 16;
/// Host-side turnaround between completion and next submit (fixed —
/// the hosts are independent machines, so their schedulers are out of
/// scope here).
const HOST_TURNAROUND: SimDuration = SimDuration::micros(5);

/// Result of the isolation check.
#[derive(Clone, Debug)]
pub struct MultiHostResult {
    /// Host 0's QD1 read profile with idle neighbors.
    pub quiet: LatencyProfile,
    /// Host 0's QD1 read profile with saturating neighbors.
    pub noisy: LatencyProfile,
    /// Aggregate neighbor throughput during the noisy run, GB/s.
    pub neighbor_gbps: f64,
}

impl MultiHostResult {
    /// Relative shift of host 0's p99.9 caused by the neighbors.
    pub fn p999_shift(&self) -> f64 {
        let quiet = self.quiet.get_micros(NinesPoint::Nines3);
        let noisy = self.noisy.get_micros(NinesPoint::Nines3);
        if quiet <= 0.0 {
            0.0
        } else {
            (noisy - quiet) / quiet
        }
    }

    /// Renders the check.
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("Multi-host isolation — host 0 QD1 reads vs. neighbor load (§III-A)\n");
        out.push_str(&format!(
            "{:<22} {:>10} {:>10} {:>10} {:>10}\n",
            "neighbors", "avg(us)", "p99(us)", "p99.9(us)", "max(us)"
        ));
        for (name, p) in [("idle", &self.quiet), ("saturating", &self.noisy)] {
            out.push_str(&format!(
                "{:<22} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                name,
                p.get_micros(NinesPoint::Average),
                p.get_micros(NinesPoint::Nines2),
                p.get_micros(NinesPoint::Nines3),
                p.get_micros(NinesPoint::Max),
            ));
        }
        out.push_str(&format!(
            "neighbor load: {:.1} GB/s across hosts 1+2; host-0 p99.9 shift: {:+.1}%\n",
            self.neighbor_gbps,
            self.p999_shift() * 100.0
        ));
        out
    }
}

impl ExperimentResult for MultiHostResult {
    fn to_table(&self) -> String {
        MultiHostResult::to_table(self)
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("neighbors,avg_us,p99_us,p999_us,max_us\n");
        for (name, p) in [("idle", &self.quiet), ("saturating", &self.noisy)] {
            out.push_str(&format!(
                "{name},{:.3},{:.3},{:.3},{:.3}\n",
                p.get_micros(NinesPoint::Average),
                p.get_micros(NinesPoint::Nines2),
                p.get_micros(NinesPoint::Nines3),
                p.get_micros(NinesPoint::Max)
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("quiet", self.quiet.to_json()),
            ("noisy", self.noisy.to_json()),
            ("neighbor_gbps", Json::f64(self.neighbor_gbps)),
            ("p999_shift", Json::f64(self.p999_shift())),
        ])
    }

    fn samples(&self) -> u64 {
        self.quiet.samples() + self.noisy.samples()
    }

    fn headline_max_us(&self) -> Option<f64> {
        Some(self.noisy.get_micros(NinesPoint::Max))
    }
}

/// One I/O stream: a closed loop against one device through one host's
/// partition of the fabric.
struct Stream {
    device: usize,
    depth: usize,
    bytes: u32,
    sequential: bool,
    next_lba: u64,
    measured: bool,
}

enum MhEvent {
    Issue { stream: usize },
    DeviceDone { stream: usize, issued_at: SimTime },
    Complete { stream: usize, issued_at: SimTime },
}

struct MhWorld {
    fabric: PcieFabric,
    devices: Vec<Option<SsdDevice>>,
    streams: Vec<Stream>,
    hist: LatencyHistogram,
    neighbor_bytes: u64,
    deadline: SimTime,
    rng: SimRng,
}

impl MhWorld {
    fn issue(&mut self, stream: usize, now: SimTime, sched: &mut Scheduler<'_, MhEvent>) {
        if now >= self.deadline {
            return;
        }
        let s = &mut self.streams[stream];
        let lba = if s.sequential {
            let lba = s.next_lba;
            s.next_lba = (s.next_lba + (s.bytes / 4096) as u64) % 4_000_000;
            lba
        } else {
            self.rng.below(4_000_000)
        };
        let device = s.device;
        let bytes = s.bytes;
        let at_device = self.fabric.submit_command(device, now);
        let info = self.devices[device]
            .as_mut()
            .expect("stream device exists")
            .submit(at_device, NvmeCommand::read(lba, bytes));
        sched.at(
            info.completes_at,
            MhEvent::DeviceDone {
                stream,
                issued_at: now,
            },
        );
    }
}

impl World for MhWorld {
    type Event = MhEvent;

    fn handle(&mut self, event: MhEvent, sched: &mut Scheduler<'_, MhEvent>) {
        match event {
            MhEvent::Issue { stream } => {
                let now = sched.now();
                for _ in 0..self.streams[stream].depth {
                    self.issue(stream, now, sched);
                }
            }
            MhEvent::DeviceDone { stream, issued_at } => {
                let now = sched.now();
                let device = self.streams[stream].device;
                let bytes = self.streams[stream].bytes as u64;
                let at_host = self.fabric.deliver_completion(device, now, bytes);
                sched.at(at_host, MhEvent::Complete { stream, issued_at });
            }
            MhEvent::Complete { stream, issued_at } => {
                let now = sched.now();
                if self.streams[stream].measured {
                    self.hist.record(now.saturating_since(issued_at).as_nanos());
                } else {
                    self.neighbor_bytes += self.streams[stream].bytes as u64;
                }
                let next = now + HOST_TURNAROUND;
                if next < self.deadline {
                    sched.at(next, MhEvent::Issue { stream });
                }
            }
        }
    }
}

fn run_once(scale: ExperimentScale, neighbors_loaded: bool) -> (LatencyProfile, f64) {
    // Build the full 244-SSD enclosure and pick each host's first 16
    // devices from its static partition.
    let fabric = PcieFabric::paper_enclosure(244);
    let mut per_host: [Vec<usize>; 3] = Default::default();
    for d in 0..244 {
        let spine = fabric.assignment(d).spine as usize;
        if per_host[spine].len() < DEVICES_PER_HOST {
            per_host[spine].push(d);
        }
    }

    let mut devices: Vec<Option<SsdDevice>> = (0..244).map(|_| None).collect();
    let mut streams = Vec::new();
    for (host, device_ids) in per_host.iter().enumerate() {
        for &device in device_ids {
            devices[device] = Some(SsdDevice::new(
                SsdSpec::table1(),
                FirmwareProfile::experimental(),
                scale.seed ^ (device as u64).wrapping_mul(0x9E37_79B9),
            ));
            if host == 0 {
                streams.push(Stream {
                    device,
                    depth: 1,
                    bytes: 4096,
                    sequential: false,
                    next_lba: 0,
                    measured: true,
                });
            } else if neighbors_loaded {
                streams.push(Stream {
                    device,
                    depth: 8,
                    bytes: 131_072,
                    sequential: true,
                    next_lba: 0,
                    measured: false,
                });
            }
        }
    }

    let runtime = scale.runtime.min(SimDuration::secs(2));
    let deadline = SimTime::ZERO + runtime;
    let world = MhWorld {
        fabric,
        devices,
        streams,
        hist: LatencyHistogram::new(),
        neighbor_bytes: 0,
        deadline,
        rng: SimRng::from_seed_and_stream(scale.seed, 0x3357),
    };
    let mut sim = Simulation::new(world);
    for stream in 0..sim.world().streams.len() {
        sim.schedule_at(
            SimTime::ZERO + SimDuration::micros(stream as u64 * 11 % 89),
            MhEvent::Issue { stream },
        );
    }
    sim.run_to_completion();
    let world = sim.into_world();
    let gbps = world.neighbor_bytes as f64 / runtime.as_secs_f64() / 1e9;
    (world.hist.profile(), gbps)
}

/// Runs the isolation check at the given scale.
pub fn multi_host_isolation(scale: ExperimentScale) -> MultiHostResult {
    let (quiet, _) = run_once(scale, false);
    let (noisy, neighbor_gbps) = run_once(scale, true);
    MultiHostResult {
        quiet,
        noisy,
        neighbor_gbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_cannot_disturb_host_zero() {
        let scale = ExperimentScale::new(SimDuration::millis(200), 16, 42);
        let result = multi_host_isolation(scale);
        // The partitions share no fabric links, so the shift must be
        // within sampling noise.
        assert!(
            result.p999_shift().abs() < 0.05,
            "neighbor load leaked into host 0: {:+.1}%",
            result.p999_shift() * 100.0
        );
        // And the neighbors really were hammering their partitions:
        // 32 devices × ~1.7 GB/s, capped by two 15.75 GB/s uplinks.
        assert!(
            result.neighbor_gbps > 10.0,
            "neighbor load too weak: {:.1} GB/s",
            result.neighbor_gbps
        );
        assert!(result.to_table().contains("isolation"));
    }
}
