//! SNIA PTS-E style measurement procedure.
//!
//! §III-B of the paper follows "chapter 9 of SNIA PTS-E guidelines to
//! minimize the systems overhead on I/O latency": purge the device to
//! FOB, precondition, then measure in rounds until the metric reaches
//! *steady state* (per PTS: a five-round window whose excursion stays
//! within ±20 % of the window average and whose best-fit slope stays
//! within ±10 %). This module implements the detector and a
//! device-level runner.

use afa_sim::{SimDuration, SimTime};
use afa_ssd::{FirmwareProfile, NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::Json;

use crate::experiment::registry::ExperimentResult;

/// The PTS steady-state criterion over a sliding window.
#[derive(Clone, Debug)]
pub struct SteadyStateDetector {
    window: usize,
    max_excursion: f64,
    max_slope: f64,
    rounds: Vec<f64>,
}

impl SteadyStateDetector {
    /// The PTS-E defaults: 5-round window, ±20 % excursion, ±10 %
    /// slope.
    pub fn pts_default() -> Self {
        SteadyStateDetector {
            window: 5,
            max_excursion: 0.20,
            max_slope: 0.10,
            rounds: Vec::new(),
        }
    }

    /// A custom criterion.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn new(window: usize, max_excursion: f64, max_slope: f64) -> Self {
        assert!(window >= 2, "window must span at least two rounds");
        SteadyStateDetector {
            window,
            max_excursion,
            max_slope,
            rounds: Vec::new(),
        }
    }

    /// Records one round's metric; returns `true` once the trailing
    /// window satisfies the criterion.
    pub fn push(&mut self, value: f64) -> bool {
        self.rounds.push(value);
        self.is_steady()
    }

    /// Whether the trailing window currently satisfies the criterion.
    pub fn is_steady(&self) -> bool {
        if self.rounds.len() < self.window {
            return false;
        }
        let tail = &self.rounds[self.rounds.len() - self.window..];
        let avg = tail.iter().sum::<f64>() / tail.len() as f64;
        if avg <= 0.0 {
            return false;
        }
        let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if (max - avg).max(avg - min) > self.max_excursion * avg {
            return false;
        }
        // Least-squares slope over the window, normalized to the
        // average: total drift across the window ≤ max_slope × avg.
        let n = tail.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &y) in tail.iter().enumerate() {
            let dx = i as f64 - mean_x;
            num += dx * (y - avg);
            den += dx * dx;
        }
        let slope = num / den;
        (slope * (n - 1.0)).abs() <= self.max_slope * avg
    }

    /// Rounds recorded so far.
    pub fn rounds(&self) -> &[f64] {
        &self.rounds
    }
}

/// Result of a PTS-style device measurement.
#[derive(Clone, Debug)]
pub struct PtsRun {
    /// Metric per round (4 KiB random-write IOPS).
    pub rounds: Vec<f64>,
    /// Round index at which steady state was declared, if reached.
    pub steady_at: Option<usize>,
    /// Write amplification at the end of the run.
    pub final_write_amplification: f64,
}

impl PtsRun {
    /// Renders the round log.
    pub fn to_table(&self) -> String {
        let mut out = String::from("SNIA PTS-E style run — 4 KiB random write rounds\n");
        out.push_str(&format!("{:<8} {:>12} {:>8}\n", "round", "IOPS", "steady"));
        for (i, iops) in self.rounds.iter().enumerate() {
            let mark = match self.steady_at {
                Some(s) if i >= s => "yes",
                _ => "",
            };
            out.push_str(&format!("{i:<8} {iops:>12.0} {mark:>8}\n"));
        }
        out.push_str(&format!(
            "write amplification at end: {:.2}\n",
            self.final_write_amplification
        ));
        out
    }
}

impl ExperimentResult for PtsRun {
    fn to_table(&self) -> String {
        PtsRun::to_table(self)
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("round,iops,steady\n");
        for (i, iops) in self.rounds.iter().enumerate() {
            let steady = matches!(self.steady_at, Some(s) if i >= s);
            out.push_str(&format!("{i},{iops:.1},{}\n", u8::from(steady)));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "rounds_iops",
                Json::arr(self.rounds.iter().map(|&v| Json::f64(v))),
            ),
            (
                "steady_at",
                self.steady_at.map_or(Json::Null, |s| Json::u64(s as u64)),
            ),
            (
                "final_write_amplification",
                Json::f64(self.final_write_amplification),
            ),
        ])
    }

    fn samples(&self) -> u64 {
        self.rounds.len() as u64
    }
}

/// Runs the PTS workflow on a scaled-down device: purge (Format to
/// FOB), precondition with two sequential passes over the logical
/// space, then 4 KiB random-write rounds until steady state (or
/// `max_rounds`).
pub fn pts_random_write(seed: u64, max_rounds: usize) -> PtsRun {
    let spec = SsdSpec::scaled_down(256);
    let logical = spec.logical_pages();
    let mut dev = SsdDevice::new(spec, FirmwareProfile::experimental(), seed);

    // Purge.
    let fmt = dev.submit(SimTime::ZERO, NvmeCommand::format());
    let mut now = fmt.completes_at;

    // Precondition: 2× capacity of sequential writes (PTS-E WIPC).
    let last_start = logical - 8;
    for _ in 0..2u64 {
        for lba in (0..=last_start).step_by(8) {
            let info = dev.submit(now, NvmeCommand::write(lba, 32_768));
            now = now.max(info.completes_at.min(now + SimDuration::micros(2)));
        }
    }

    // Measurement rounds: fixed I/O count per round, QD1 random write.
    let mut detector = SteadyStateDetector::pts_default();
    let mut steady_at = None;
    let round_ios = 3_000u64;
    let mut x = seed | 1;
    for round in 0..max_rounds {
        let start = now;
        for _ in 0..round_ios {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let info = dev.submit(now, NvmeCommand::write(x % logical, 4096));
            now = info.completes_at;
        }
        let iops = round_ios as f64 / now.saturating_since(start).as_secs_f64();
        if detector.push(iops) && steady_at.is_none() {
            steady_at = Some(round);
            break;
        }
    }
    PtsRun {
        rounds: detector.rounds().to_vec(),
        steady_at,
        final_write_amplification: dev.ftl_stats().write_amplification(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_is_steady_after_window() {
        let mut d = SteadyStateDetector::pts_default();
        for i in 0..4 {
            assert!(!d.push(100.0), "too early at round {i}");
        }
        assert!(d.push(100.0), "flat series must be steady at window");
    }

    #[test]
    fn declining_series_not_steady_until_flattening() {
        let mut d = SteadyStateDetector::pts_default();
        // Steep decline: never steady.
        for v in [1000.0, 800.0, 640.0, 512.0, 410.0] {
            assert!(!d.push(v));
        }
        // Flattens out: steady once the window is flat enough.
        let mut steady = false;
        for v in [400.0, 398.0, 402.0, 399.0, 401.0] {
            steady = d.push(v);
        }
        assert!(steady, "flattened series must converge");
    }

    #[test]
    fn noisy_but_bounded_series_is_steady() {
        let mut d = SteadyStateDetector::pts_default();
        let mut steady = false;
        for i in 0..10 {
            let v = 100.0 + if i % 2 == 0 { 5.0 } else { -5.0 };
            steady = d.push(v);
        }
        assert!(steady, "±5 % oscillation is within the 20 % excursion");
    }

    #[test]
    fn excursion_violation_blocks_steadiness() {
        let mut d = SteadyStateDetector::pts_default();
        for _ in 0..4 {
            d.push(100.0);
        }
        assert!(!d.push(140.0), "40 % excursion must fail");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_panics() {
        let _ = SteadyStateDetector::new(1, 0.2, 0.1);
    }

    #[test]
    fn device_run_reaches_steady_state() {
        let run = pts_random_write(42, 30);
        assert!(
            run.steady_at.is_some(),
            "device never reached steady state: {:?}",
            run.rounds
        );
        assert!(run.final_write_amplification >= 1.0);
        assert!(run.to_table().contains("IOPS"));
        // Sustained random write should sit in the rated ballpark.
        let last = *run.rounds.last().unwrap();
        assert!((20_000.0..40_000.0).contains(&last), "steady IOPS {last}");
    }
}
