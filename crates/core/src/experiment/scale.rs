//! Experiment scaling (environment-driven).

use afa_sim::SimDuration;

/// How big to run the experiments.
///
/// The paper runs 120 s per configuration; a full-fidelity
/// reproduction (`AFA_FULL=1`) does the same, while the default scales
/// down to keep `cargo bench` turnaround reasonable. 6-nines
/// percentiles need ≥10⁶ samples (~33 s at QD1); shorter runs report
/// them from fewer samples, and the harness prints the sample counts
/// so the reader can judge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Per-job run time.
    pub runtime: SimDuration,
    /// Devices in the array (the paper uses 64).
    pub ssds: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Reads the scale from the environment:
    ///
    /// * `AFA_FULL=1` — the paper's full 120 s × 64 SSDs,
    /// * `AFA_SECONDS=<f64>` — run time (default 10),
    /// * `AFA_SSDS=<n>` — device count (default 64),
    /// * `AFA_SEED=<n>` — master seed (default 42).
    pub fn from_env() -> Self {
        let full = std::env::var("AFA_FULL").map(|v| v == "1").unwrap_or(false);
        let seconds: f64 = std::env::var("AFA_SECONDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if full { 120.0 } else { 10.0 });
        let ssds: usize = std::env::var("AFA_SSDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
            .clamp(1, 64);
        let seed: u64 = std::env::var("AFA_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        ExperimentScale {
            runtime: SimDuration::from_secs_f64(seconds.clamp(0.01, 600.0)),
            ssds,
            seed,
        }
    }

    /// A small scale for unit/integration tests.
    pub fn quick() -> Self {
        ExperimentScale {
            runtime: SimDuration::millis(200),
            ssds: 8,
            seed: 42,
        }
    }

    /// A custom scale.
    pub fn new(runtime: SimDuration, ssds: usize, seed: u64) -> Self {
        ExperimentScale {
            runtime,
            ssds,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_small() {
        let s = ExperimentScale::quick();
        assert!(s.runtime <= SimDuration::secs(1));
        assert!(s.ssds <= 16);
    }

    #[test]
    fn custom_scale_roundtrips() {
        let s = ExperimentScale::new(SimDuration::secs(3), 16, 7);
        assert_eq!(s.runtime, SimDuration::secs(3));
        assert_eq!(s.ssds, 16);
        assert_eq!(s.seed, 7);
    }
}
