//! Experiment runners: one per table and figure of the paper's
//! evaluation, plus the ablations from `DESIGN.md`.
//!
//! Every runner takes an [`ExperimentScale`] (run time, device count,
//! seed — typically from the environment via
//! [`ExperimentScale::from_env`]) and returns a result object with
//! `to_table()` / `to_csv()` / `to_json()` renderings. All runners are
//! registered in [`registry::registry`], which the bench harness and
//! `afactl` dispatch through; [`registry::run_experiment`] wraps any
//! run with a reproducibility manifest.

mod ablations;
mod characterize;
mod figures;
mod fleet;
mod fleet_failover;
mod frontend;
mod futurework;
mod iotrace;
mod multihost;
pub mod pool;
mod pts;
pub mod registry;
mod rootcause;
mod saturation;
mod scale;
mod tables;
mod tailscale;
mod ull_crossover;

pub use ablations::{
    ablate_coalescing, ablate_cstate, ablate_gc, ablate_numa, ablate_poll, ablate_rcu,
    ablate_smart_period, ablate_tick, AblationResult, GcAblationResult,
};
pub use characterize::{qd_sweep, QdPoint, QdSweepResult};
pub use figures::{
    fig10, fig11, fig12, fig13, fig13_and_14, fig14, fig6, fig7, fig8, fig9, render_fig14,
    run_stage, Fig10Scatter, Fig12Comparison, Fig13Results, Fig14Result, FigureDistributions,
};
pub use fleet::{fleet_arrival, FleetArrivalResult, FleetCell};
pub use fleet_failover::{
    fleet_failover, fleet_failover_probe, fleet_replication, FailoverCell, FleetFailoverResult,
    FleetProbeOutcome, FleetReplicationResult, ReplicationCell,
};
pub use frontend::{
    tailscale_fanout, tailscale_hedge, FrontendServeResult, ServeCell, TenantReport,
};
pub use futurework::{future_schedulers, FutureWorkResult, FutureWorkRow};
pub use iotrace::{io_trace, IoTraceResult};
pub use multihost::{multi_host_isolation, MultiHostResult};
pub use pts::{pts_random_write, PtsRun, SteadyStateDetector};
pub use registry::{
    cause_rows_json, find, registry, run_experiment, Experiment, ExperimentDef, ExperimentResult,
    ExperimentRun, RunManifest,
};
pub use rootcause::{root_cause, root_cause_ladder, RootCauseLadder, RootCauseReport};
pub use saturation::{uplink_saturation, SaturationResult};
pub use scale::ExperimentScale;
pub use tables::{table1, table2, table2_matrix, Table1Result, Table2Matrix};
pub use tailscale::{tail_at_scale, TailScaleCell, TailScaleResult};
pub use ull_crossover::{ull_crossover, UllCrossoverCell, UllCrossoverResult};

/// Runs several independent experiment configurations on the bounded
/// worker pool ([`pool::map_bounded`]), preserving input order.
pub(crate) fn run_parallel(configs: Vec<crate::AfaConfig>) -> Vec<crate::RunResult> {
    pool::map_bounded(configs, |config| crate::AfaSystem::run(&config))
}
