//! Tail-at-scale: client-perceived latency over a striped volume.
//!
//! §I of the paper: "one request from a client is divided into
//! multiple I/Os, which are then distributed to many SSDs in parallel
//! as in RAID ... even if one SSD out of many, say 128 SSDs, shows
//! long tail latency, the entire I/O from the client is delayed by the
//! same amount." This experiment quantifies that amplification: a
//! client read striped over *w* devices completes at the *maximum* of
//! the *w* sub-I/O latencies, so the client's p99 approaches the
//! devices' p99^(1/w) quantile — unless the per-device tail is tamed,
//! which is the paper's whole point.

use afa_host::{BackgroundConfig, CpuId, CpuTopology, HostModel, SchedPolicy};
use afa_pcie::PcieFabric;
use afa_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulation, World};
use afa_ssd::{NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::{Json, LatencyHistogram, LatencyProfile, NinesPoint};
use afa_volume::{RequestTracker, StripeConfig, StripedVolume};

use crate::experiment::registry::ExperimentResult;
use crate::experiment::{pool, ExperimentScale};
use crate::geometry::CpuSsdGeometry;
use crate::tuning::{Tuning, TuningStage};

/// Client threads driving the volume.
const CLIENTS: usize = 4;
/// io_submit batch cost: base + per-sub-I/O increment.
const SUBMIT_BASE: SimDuration = SimDuration::nanos(1_500);
const SUBMIT_PER_SUB: SimDuration = SimDuration::nanos(500);
const COMPLETE_COST: SimDuration = SimDuration::nanos(1_300);

/// One `(stage, width)` cell of the sweep.
#[derive(Clone, Debug)]
pub struct TailScaleCell {
    /// Tuning stage of the run.
    pub stage: TuningStage,
    /// Stripe width (devices per request).
    pub width: usize,
    /// Client-perceived request-latency profile.
    pub client: LatencyProfile,
}

/// The full sweep result.
#[derive(Clone, Debug)]
pub struct TailScaleResult {
    /// All cells, widths × stages.
    pub cells: Vec<TailScaleCell>,
}

impl TailScaleResult {
    /// The cell for `(stage, width)`.
    pub fn cell(&self, stage: TuningStage, width: usize) -> Option<&TailScaleCell> {
        self.cells
            .iter()
            .find(|c| c.stage == stage && c.width == width)
    }

    /// Renders the sweep: client p99/p99.9/max per width, per stage.
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("Tail at scale — client-perceived latency over a striped volume\n");
        let mut stages: Vec<TuningStage> = self.cells.iter().map(|c| c.stage).collect();
        stages.dedup();
        for stage in stages {
            out.push_str(&format!(
                "\n'{stage}' kernel:\n{:<8} {:>10} {:>10} {:>12} {:>10}\n",
                "width", "avg(us)", "p99(us)", "p99.9(us)", "max(us)"
            ));
            for cell in self.cells.iter().filter(|c| c.stage == stage) {
                out.push_str(&format!(
                    "{:<8} {:>10.1} {:>10.1} {:>12.1} {:>10.1}\n",
                    cell.width,
                    cell.client.get_micros(NinesPoint::Average),
                    cell.client.get_micros(NinesPoint::Nines2),
                    cell.client.get_micros(NinesPoint::Nines3),
                    cell.client.get_micros(NinesPoint::Max),
                ));
            }
        }
        out
    }
}

impl ExperimentResult for TailScaleResult {
    fn to_table(&self) -> String {
        TailScaleResult::to_table(self)
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("stage,width,avg_us,p99_us,p999_us,max_us\n");
        for cell in &self.cells {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3},{:.3}\n",
                cell.stage.label(),
                cell.width,
                cell.client.get_micros(NinesPoint::Average),
                cell.client.get_micros(NinesPoint::Nines2),
                cell.client.get_micros(NinesPoint::Nines3),
                cell.client.get_micros(NinesPoint::Max)
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([(
            "cells",
            Json::arr(self.cells.iter().map(|cell| {
                Json::obj([
                    ("stage", Json::str(cell.stage.label())),
                    ("width", Json::u64(cell.width as u64)),
                    ("client", cell.client.to_json()),
                ])
            })),
        )])
    }

    fn samples(&self) -> u64 {
        self.cells.iter().map(|c| c.client.samples()).sum()
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.cells
            .iter()
            .map(|c| c.client.get_micros(NinesPoint::Max))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Runs the sweep: stripe widths 1/4/8/16 (clamped to the scale's
/// device budget) under the default and fully tuned kernels.
pub fn tail_at_scale(scale: ExperimentScale) -> TailScaleResult {
    let widths: Vec<usize> = [1usize, 4, 8, 16]
        .into_iter()
        .filter(|&w| w <= scale.ssds.max(1))
        .collect();
    let stages = [TuningStage::Default, TuningStage::IrqAffinity];
    let mut jobs = Vec::new();
    for &width in &widths {
        for &stage in &stages {
            jobs.push((stage, width));
        }
    }
    let cells: Vec<TailScaleCell> =
        pool::map_bounded(jobs, |(stage, width)| run_cell(stage, width, scale));
    TailScaleResult { cells }
}

fn run_cell(stage: TuningStage, width: usize, scale: ExperimentScale) -> TailScaleCell {
    let tuning = Tuning::new(stage);
    let geometry = CpuSsdGeometry::paper(width.max(CLIENTS));
    let topo = CpuTopology::xeon_e5_2690_v2_dual();
    let mut host = HostModel::new(
        topo,
        tuning.kernel_config(geometry.io_cpu_set()),
        BackgroundConfig::centos7_desktop(),
        scale.seed ^ 0xA11CE,
    );
    // Vectors designated per device: reuse the paper mapping.
    host.init_vectors(
        (0..width).map(|d| geometry.cpu_of_ssd(d)).collect(),
        scale.seed ^ 0xA11CE,
    );
    let devices: Vec<SsdDevice> = (0..width)
        .map(|d| {
            SsdDevice::new(
                SsdSpec::table1(),
                tuning.firmware(),
                scale.seed ^ (d as u64).wrapping_mul(0x61C8_8646),
            )
        })
        .collect();
    let volume = StripedVolume::new((0..width).collect(), StripeConfig::new(4096));
    // Client CPUs: the first CLIENTS io CPUs.
    let client_cpus: Vec<CpuId> = (0..CLIENTS).map(|c| geometry.io_cpus()[c]).collect();

    let world = VolumeWorld {
        host,
        fabric: PcieFabric::paper_single_host(width),
        devices,
        volume,
        tracker: RequestTracker::new(),
        client_cpus,
        policy: tuning.fio_policy(),
        hist: LatencyHistogram::new(),
        rng: SimRng::from_seed_and_stream(scale.seed, 0x7A11),
        deadline: SimTime::ZERO + scale.runtime,
        horizon: SimTime::ZERO + scale.runtime + SimDuration::millis(50),
        request_pages: 4_000_000,
    };
    let mut sim = Simulation::new(world);
    for client in 0..CLIENTS {
        sim.schedule_at(
            SimTime::ZERO + SimDuration::micros(client as u64 * 17),
            VolEvent::Issue { client },
        );
    }
    sim.schedule_at(SimTime::ZERO, VolEvent::BgArrival);
    sim.run_to_completion();
    let world = sim.into_world();
    TailScaleCell {
        stage,
        width,
        client: world.hist.profile(),
    }
}

#[derive(Debug)]
enum VolEvent {
    Issue {
        client: usize,
    },
    SubDeviceDone {
        request: u64,
        device: usize,
        bytes: u32,
    },
    SubDone {
        request: u64,
        device: usize,
    },
    BgArrival,
}

struct VolumeWorld {
    host: HostModel,
    fabric: PcieFabric,
    devices: Vec<SsdDevice>,
    volume: StripedVolume,
    tracker: RequestTracker,
    client_cpus: Vec<CpuId>,
    policy: SchedPolicy,
    hist: LatencyHistogram,
    rng: SimRng,
    deadline: SimTime,
    horizon: SimTime,
    request_pages: u64,
}

impl VolumeWorld {
    /// Issues one striped request for `client` with the thread running
    /// at `now`.
    fn issue(&mut self, client: usize, now: SimTime, sched: &mut Scheduler<'_, VolEvent>) {
        if now >= self.deadline {
            return;
        }
        let cpu = self.client_cpus[client];
        let width = self.volume.width();
        let bytes = 4096 * width as u32;
        let volume_page = self.rng.below(self.request_pages / width as u64) * width as u64;
        let subs = self.volume.map_read(volume_page, bytes);
        let submit_cost = SUBMIT_BASE + SUBMIT_PER_SUB * subs.len() as u64;
        let submit_end = self.host.charge_cpu(cpu, now, submit_cost);
        let request = self.tracker.begin(client, submit_end, subs.len() as u32);
        for sub in subs {
            let device = self.volume.member_device(sub.member);
            let at_device = self.fabric.submit_command(device, submit_end);
            let info =
                self.devices[device].submit(at_device, NvmeCommand::read(sub.lba, sub.bytes));
            // Fabric upstream and interrupt handling happen when their
            // events fire, so shared links and host state mutate in
            // global time order.
            sched.at(
                info.completes_at,
                VolEvent::SubDeviceDone {
                    request,
                    device,
                    bytes: sub.bytes,
                },
            );
        }
    }
}

impl World for VolumeWorld {
    type Event = VolEvent;

    fn handle(&mut self, event: VolEvent, sched: &mut Scheduler<'_, VolEvent>) {
        match event {
            VolEvent::Issue { client } => {
                let now = sched.now();
                self.issue(client, now, sched);
            }
            VolEvent::SubDeviceDone {
                request,
                device,
                bytes,
            } => {
                let now = sched.now();
                let at_host = self.fabric.deliver_completion(device, now, bytes as u64);
                sched.at(at_host, VolEvent::SubDone { request, device });
            }
            VolEvent::SubDone { request, device } => {
                let now = sched.now();
                let irq = self.host.deliver_irq(device, now);
                if let Some(done) = self.tracker.complete_sub(request) {
                    // Last sub-I/O: wake the client, reap all events,
                    // record, issue the next request.
                    let cpu = self.client_cpus[done.client];
                    let (run_start, _) = self.host.wake_io_task(cpu, irq.wake_ready, self.policy);
                    let reap = COMPLETE_COST + SUBMIT_PER_SUB * self.volume.width() as u64;
                    let end = self.host.charge_cpu(cpu, run_start, reap);
                    self.hist
                        .record(end.saturating_since(done.issued_at).as_nanos());
                    self.issue(done.client, end, sched);
                }
            }
            VolEvent::BgArrival => {
                let now = sched.now();
                self.host.spawn_background(now);
                let next = self.host.next_background_arrival(now);
                if next < self.horizon {
                    sched.at(next, VolEvent::BgArrival);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_stripes_amplify_the_default_tail() {
        let scale = ExperimentScale::new(SimDuration::millis(300), 16, 42);
        let result = tail_at_scale(scale);
        let narrow = result
            .cell(TuningStage::Default, 1)
            .expect("width-1 cell")
            .client
            .get_micros(NinesPoint::Nines2);
        let wide = result
            .cell(TuningStage::Default, 16)
            .expect("width-16 cell")
            .client
            .get_micros(NinesPoint::Nines2);
        assert!(
            wide > narrow,
            "p99 must grow with stripe width: {narrow} -> {wide}"
        );
    }

    #[test]
    fn tuning_tames_the_amplification() {
        let scale = ExperimentScale::new(SimDuration::millis(300), 16, 7);
        let result = tail_at_scale(scale);
        let default_wide = result
            .cell(TuningStage::Default, 16)
            .unwrap()
            .client
            .get_micros(NinesPoint::Nines3);
        let tuned_wide = result
            .cell(TuningStage::IrqAffinity, 16)
            .unwrap()
            .client
            .get_micros(NinesPoint::Nines3);
        assert!(
            tuned_wide < default_wide,
            "tuned p99.9 {tuned_wide} !< default {default_wide}"
        );
        assert!(result.to_table().contains("width"));
    }

    #[test]
    fn every_cell_completes_requests() {
        let scale = ExperimentScale::new(SimDuration::millis(100), 8, 3);
        let result = tail_at_scale(scale);
        for cell in &result.cells {
            assert!(
                cell.client.samples() > 200,
                "{:?} width {} only {} requests",
                cell.stage,
                cell.width,
                cell.client.samples()
            );
        }
    }
}
