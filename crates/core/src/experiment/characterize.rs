//! Device characterization: the latency-vs-throughput knee curve.
//!
//! The paper fixes queue depth 1 ("to focus on analyzing latency
//! distributions between CPUs and SSDs", §IV-G); this companion sweep
//! shows what that choice buys — the full knee curve of the Table I
//! device, from the 25 µs QD1 floor to the 160 K IOPS saturation wall.

use afa_sim::{SimDuration, SimTime};
use afa_ssd::{FirmwareProfile, NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::{Json, LatencyHistogram};

use crate::experiment::registry::ExperimentResult;

/// One queue-depth point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QdPoint {
    /// Queue depth.
    pub depth: u32,
    /// Achieved 4 KiB random-read IOPS.
    pub iops: f64,
    /// Mean completion latency, µs.
    pub mean_us: f64,
    /// p99 completion latency, µs.
    pub p99_us: f64,
}

/// The sweep result.
#[derive(Clone, Debug)]
pub struct QdSweepResult {
    /// Points in increasing depth order.
    pub points: Vec<QdPoint>,
}

impl QdSweepResult {
    /// Depth at which IOPS first exceeds 90 % of the deepest point's
    /// IOPS — the knee.
    pub fn knee_depth(&self) -> u32 {
        let peak = self.points.last().map(|p| p.iops).unwrap_or(0.0);
        self.points
            .iter()
            .find(|p| p.iops >= 0.9 * peak)
            .map(|p| p.depth)
            .unwrap_or(1)
    }

    /// Renders the curve.
    pub fn to_table(&self) -> String {
        let mut out = String::from("Queue-depth sweep — 4 KiB random read, single device\n");
        out.push_str(&format!(
            "{:<6} {:>12} {:>10} {:>10}\n",
            "QD", "IOPS", "mean(us)", "p99(us)"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:<6} {:>12.0} {:>10.1} {:>10.1}\n",
                p.depth, p.iops, p.mean_us, p.p99_us
            ));
        }
        out.push_str(&format!(
            "knee at QD{} (90% of saturation)\n",
            self.knee_depth()
        ));
        out
    }
}

impl ExperimentResult for QdSweepResult {
    fn to_table(&self) -> String {
        QdSweepResult::to_table(self)
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("qd,iops,mean_us,p99_us\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.1},{:.3},{:.3}\n",
                p.depth, p.iops, p.mean_us, p.p99_us
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "points",
                Json::arr(self.points.iter().map(|p| {
                    Json::obj([
                        ("depth", Json::u64(p.depth as u64)),
                        ("iops", Json::f64(p.iops)),
                        ("mean_us", Json::f64(p.mean_us)),
                        ("p99_us", Json::f64(p.p99_us)),
                    ])
                })),
            ),
            ("knee_depth", Json::u64(self.knee_depth() as u64)),
        ])
    }
}

/// Sweeps queue depths 1, 2, 4, …, 64 on a single device.
pub fn qd_sweep(seed: u64) -> QdSweepResult {
    let horizon = SimTime::ZERO + SimDuration::millis(200);
    let points = [1u32, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .map(|depth| {
            let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::experimental(), seed);
            let mut hist = LatencyHistogram::new();
            let mut inflight = vec![SimTime::ZERO; depth as usize];
            let mut lba = 0u64;
            loop {
                let (idx, &now) = inflight
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, t)| *t)
                    .expect("non-empty");
                if now >= horizon {
                    break;
                }
                lba = (lba + 7_919) % 10_000_000;
                let info = dev.submit(now, NvmeCommand::read(lba, 4096));
                hist.record(info.latency_since(now).as_nanos());
                inflight[idx] = info.completes_at;
            }
            QdPoint {
                depth,
                iops: hist.count() as f64 / 0.2,
                mean_us: hist.mean() / 1e3,
                p99_us: hist.value_at_percentile(99.0) as f64 / 1e3,
            }
        })
        .collect();
    QdSweepResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_has_the_classic_knee_shape() {
        let sweep = qd_sweep(42);
        assert_eq!(sweep.points.len(), 7);
        // IOPS monotone non-decreasing (within 2 % noise).
        for w in sweep.points.windows(2) {
            assert!(
                w[1].iops >= w[0].iops * 0.98,
                "IOPS fell from QD{} to QD{}: {} -> {}",
                w[0].depth,
                w[1].depth,
                w[0].iops,
                w[1].iops
            );
        }
        // Latency grows past the knee.
        let first = sweep.points.first().unwrap();
        let last = sweep.points.last().unwrap();
        assert!((23.0..28.0).contains(&first.mean_us), "{}", first.mean_us);
        assert!(last.mean_us > 3.0 * first.mean_us, "{}", last.mean_us);
        // Saturation near the rated 160 K.
        assert!((140_000.0..175_000.0).contains(&last.iops), "{}", last.iops);
        // The knee sits at a plausible depth.
        let knee = sweep.knee_depth();
        assert!((2..=32).contains(&knee), "knee at QD{knee}");
        assert!(sweep.to_table().contains("knee"));
    }
}
