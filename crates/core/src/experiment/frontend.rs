//! Request-level tail at scale: the `afa-frontend` serving layer over
//! the striped volume.
//!
//! Where [`tailscale`](crate::experiment::tail_at_scale) drives the
//! volume closed-loop (a client issues its next request when the
//! previous one completes), this experiment serves *open-loop* traffic
//! the way an NVMe-oF target would: three tenants generate Poisson,
//! fixed-rate and bursty arrivals; a token bucket and a bounded
//! admission queue shed overload; weighted deficit round-robin picks
//! whose request dispatches; each request fans out into one sub-I/O
//! per member SSD and completes at the *slowest* one; an optional
//! hedge policy duplicates the straggling sub-I/O after a
//! percentile-tracked delay, reading the mirrored-pair replica on the
//! stripe's buddy member — first completion wins, the loser is
//! cancelled.
//!
//! Two registry entries share this world:
//!
//! * `tailscale-fanout` — request latency vs fan-out width under the
//!   five paper tuning stages (the paper's Fig. 12 trend, lifted from
//!   per-SSD to per-request),
//! * `tailscale-hedge` — hedging on/off at full fan-out.
//!
//! Every finished request is attributed through a
//! [`RequestLedger`] over the shared [`Cause`] vocabulary, and the
//! attribution is *exact*: frontend queueing + submit CPU + (hedge
//! wait) + fabric + device + IRQ + scheduler + reap CPU tile the
//! measured latency to the nanosecond, counted by
//! [`ServeCell::ledger_mismatches`] (always zero).

use afa_frontend::{
    AdmissionQueue, ArrivalGen, HedgePolicy, RequestBook, RequestLedger, SloReport, SloTracker,
    SubCompletion, TenantSpec, TokenBucket, WeightedScheduler,
};
use afa_host::{BackgroundConfig, CpuId, CpuTopology, HostModel, SchedPolicy};
use afa_pcie::PcieFabric;
use afa_sim::metrics::FrontendCounters;
use afa_sim::trace::Cause;
use afa_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulation, World};
use afa_ssd::{NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::{Json, LatencyHistogram, LatencyProfile, NinesPoint};
use afa_volume::{StripeConfig, StripedVolume};
use afa_workload::ArrivalProcess;

use crate::experiment::registry::ExperimentResult;
use crate::experiment::{pool, ExperimentScale};
use crate::geometry::CpuSsdGeometry;
use crate::tuning::{Tuning, TuningStage};

/// Dispatch workers pulling requests off the admission queues. A
/// single submission reactor (SPDK-target style): dispatch serializes,
/// so admission queueing is real and WDRR arbitration matters.
const WORKERS: usize = 1;
/// io_submit batch cost: base + per-sub-I/O increment.
const SUBMIT_BASE: SimDuration = SimDuration::nanos(1_500);
const SUBMIT_PER_SUB: SimDuration = SimDuration::nanos(500);
/// Completion-reap cost for the finishing sub-I/O.
const COMPLETE_COST: SimDuration = SimDuration::nanos(1_300);
/// Sub-I/O settle percentile a warm hedge policy duplicates after.
const HEDGE_PERCENTILE: f64 = 95.0;
/// Background write stream of the mixed-load (hedge) experiment:
/// single-member writes that stall one device at a time — the
/// device-local stragglers hedged reads exist to escape.
const WRITE_RATE: f64 = 2_000.0;
const WRITE_BYTES: u32 = 32_768;

/// The serving tenant mix: a latency-sensitive Poisson tenant, a
/// paced fixed-rate tenant, and a bursty tenant whose token bucket
/// sheds during bursts.
fn tenant_mix() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("latency", ArrivalProcess::Poisson { rate: 2_400.0 }, 4),
        TenantSpec::new("steady", ArrivalProcess::FixedRate { rate: 2_400.0 }, 2),
        TenantSpec::new(
            "bursty",
            ArrivalProcess::Bursty {
                on_rate: 6_000.0,
                mean_on_ms: 2.0,
                mean_off_ms: 4.0,
            },
            1,
        )
        .rate_limited(1_500.0, 20.0)
        .queue_capacity(32),
    ]
}

/// One tenant's slice of a cell: its name and SLO verdict.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name from the [`TenantSpec`].
    pub name: &'static str,
    /// Achieved-vs-target SLO report.
    pub slo: SloReport,
}

/// One `(stage, width, hedging)` cell of a serving sweep.
#[derive(Clone, Debug)]
pub struct ServeCell {
    /// Tuning stage of the run.
    pub stage: TuningStage,
    /// Fan-out width (member SSDs per request).
    pub width: usize,
    /// Whether hedged reads were enabled.
    pub hedging: bool,
    /// All-tenant request-latency profile.
    pub client: LatencyProfile,
    /// Per-tenant SLO reports, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Admission/shed/hedge counters for this cell.
    pub counters: FrontendCounters,
    /// Cross-request cause totals from the per-request ledgers.
    pub causes: Vec<(Cause, SimDuration)>,
    /// Finished requests whose ledger did not tile the measured
    /// latency exactly. Always zero — a non-zero value is a model bug.
    pub ledger_mismatches: u64,
}

impl ServeCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("stage", Json::str(self.stage.label())),
            ("width", Json::u64(self.width as u64)),
            ("hedging", Json::Bool(self.hedging)),
            ("client", self.client.to_json()),
            (
                "tenants",
                Json::arr(
                    self.tenants.iter().map(|t| {
                        Json::obj([("name", Json::str(t.name)), ("slo", t.slo.to_json())])
                    }),
                ),
            ),
            (
                "counters",
                Json::obj([
                    (
                        "requests_admitted",
                        Json::u64(self.counters.requests_admitted),
                    ),
                    ("requests_shed", Json::u64(self.counters.requests_shed)),
                    ("hedges_fired", Json::u64(self.counters.hedges_fired)),
                    ("hedges_won", Json::u64(self.counters.hedges_won)),
                ]),
            ),
            (
                "causes",
                Json::Obj(
                    self.causes
                        .iter()
                        .map(|&(c, d)| (c.label().to_owned(), Json::u64(d.as_nanos())))
                        .collect(),
                ),
            ),
            ("ledger_mismatches", Json::u64(self.ledger_mismatches)),
        ])
    }
}

/// Result of a serving sweep (`tailscale-fanout` / `tailscale-hedge`).
#[derive(Clone, Debug)]
pub struct FrontendServeResult {
    /// Table heading for the sweep.
    pub title: &'static str,
    /// All cells, in sweep order.
    pub cells: Vec<ServeCell>,
}

impl FrontendServeResult {
    /// The cell for `(stage, width, hedging)`.
    pub fn cell(&self, stage: TuningStage, width: usize, hedging: bool) -> Option<&ServeCell> {
        self.cells
            .iter()
            .find(|c| c.stage == stage && c.width == width && c.hedging == hedging)
    }
}

impl ExperimentResult for FrontendServeResult {
    fn to_table(&self) -> String {
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!(
            "{:<12} {:<6} {:<6} {:>9} {:>9} {:>11} {:>9} {:>9} {:>6} {:>7} {:>6}\n",
            "stage",
            "width",
            "hedge",
            "avg(us)",
            "p99(us)",
            "p99.9(us)",
            "max(us)",
            "admitted",
            "shed",
            "hedges",
            "won"
        ));
        for cell in &self.cells {
            out.push_str(&format!(
                "{:<12} {:<6} {:<6} {:>9.1} {:>9.1} {:>11.1} {:>9.1} {:>9} {:>6} {:>7} {:>6}\n",
                cell.stage.label(),
                cell.width,
                if cell.hedging { "on" } else { "off" },
                cell.client.get_micros(NinesPoint::Average),
                cell.client.get_micros(NinesPoint::Nines2),
                cell.client.get_micros(NinesPoint::Nines3),
                cell.client.get_micros(NinesPoint::Max),
                cell.counters.requests_admitted,
                cell.counters.requests_shed,
                cell.counters.hedges_fired,
                cell.counters.hedges_won,
            ));
        }
        out
    }

    fn to_csv(&self) -> String {
        let mut out = String::from(
            "stage,width,hedging,avg_us,p99_us,p999_us,max_us,admitted,shed,hedges_fired,hedges_won\n",
        );
        for cell in &self.cells {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.3},{:.3},{},{},{},{}\n",
                cell.stage.label(),
                cell.width,
                cell.hedging,
                cell.client.get_micros(NinesPoint::Average),
                cell.client.get_micros(NinesPoint::Nines2),
                cell.client.get_micros(NinesPoint::Nines3),
                cell.client.get_micros(NinesPoint::Max),
                cell.counters.requests_admitted,
                cell.counters.requests_shed,
                cell.counters.hedges_fired,
                cell.counters.hedges_won,
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([(
            "cells",
            Json::arr(self.cells.iter().map(ServeCell::to_json)),
        )])
    }

    fn samples(&self) -> u64 {
        self.cells.iter().map(|c| c.client.samples()).sum()
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.cells
            .iter()
            .map(|c| c.client.get_micros(NinesPoint::Max))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// The fan-out widths a scale supports: the paper-style 1→64 ladder
/// clamped to the device budget, always including the widest
/// affordable fan-out.
fn fanout_widths(scale: ExperimentScale) -> Vec<usize> {
    let cap = scale.ssds.clamp(1, 64);
    let mut widths: Vec<usize> = [1usize, 4, 16, 64]
        .into_iter()
        .filter(|&w| w <= cap)
        .collect();
    if !widths.contains(&cap) {
        widths.push(cap);
    }
    widths
}

/// `tailscale-fanout`: request latency vs fan-out width, across all
/// five paper tuning stages, hedging off.
pub fn tailscale_fanout(scale: ExperimentScale) -> FrontendServeResult {
    let mut jobs = Vec::new();
    for &stage in &TuningStage::ALL {
        for &width in &fanout_widths(scale) {
            jobs.push((stage, width));
        }
    }
    let cells = pool::map_bounded(jobs, |(stage, width)| {
        run_cell(stage, width, false, MixedWrites::Off, scale)
    });
    FrontendServeResult {
        title: "Request-level tail at scale — open-loop serving over a striped volume",
        cells,
    }
}

/// `tailscale-hedge`: hedging off vs on at the widest affordable
/// fan-out, tuned kernel, with a background single-member write
/// stream. After the kernel tuning ladder the residual stragglers are
/// device-local (a read stuck behind a write burst on one member) —
/// precisely the tail a hedged read to the buddy member escapes.
pub fn tailscale_hedge(scale: ExperimentScale) -> FrontendServeResult {
    let width = scale.ssds.clamp(1, 64);
    let jobs = vec![(false, width), (true, width)];
    let cells = pool::map_bounded(jobs, |(hedging, width)| {
        run_cell(
            TuningStage::IrqAffinity,
            width,
            hedging,
            MixedWrites::On,
            scale,
        )
    });
    FrontendServeResult {
        title: "Hedged reads at full fan-out, mixed load — duplicate the straggler, first wins",
        cells,
    }
}

/// Whether the serving world runs the background write stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MixedWrites {
    Off,
    On,
}

fn run_cell(
    stage: TuningStage,
    width: usize,
    hedging: bool,
    writes: MixedWrites,
    scale: ExperimentScale,
) -> ServeCell {
    let tuning = Tuning::new(stage);
    let geometry = CpuSsdGeometry::paper(width.max(WORKERS));
    let topo = CpuTopology::xeon_e5_2690_v2_dual();
    let mut host = HostModel::new(
        topo,
        tuning.kernel_config(geometry.io_cpu_set()),
        BackgroundConfig::centos7_desktop(),
        scale.seed ^ 0xF30_47E0,
    );
    host.init_vectors(
        (0..width).map(|d| geometry.cpu_of_ssd(d)).collect(),
        scale.seed ^ 0xF30_47E0,
    );
    let devices: Vec<SsdDevice> = (0..width)
        .map(|d| {
            SsdDevice::new(
                SsdSpec::table1(),
                tuning.firmware(),
                scale.seed ^ (d as u64).wrapping_mul(0x61C8_8646),
            )
        })
        .collect();
    let volume = StripedVolume::new((0..width).collect(), StripeConfig::new(4096));
    let specs = tenant_mix();
    let weights: Vec<u32> = specs.iter().map(|t| t.weight).collect();

    let world = FrontendWorld {
        host,
        fabric: PcieFabric::paper_single_host(width),
        devices,
        volume,
        book: RequestBook::new(),
        arrivals: specs
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                ArrivalGen::new(
                    spec.process,
                    SimRng::from_seed_and_stream(scale.seed, 0x0F00 + t as u64),
                )
            })
            .collect(),
        buckets: specs
            .iter()
            .map(|spec| spec.rate_limit.map(|r| TokenBucket::new(r, spec.burst)))
            .collect(),
        queues: specs
            .iter()
            .map(|spec| AdmissionQueue::new(spec.queue_cap))
            .collect(),
        wdrr: WeightedScheduler::new(&weights),
        slos: specs.iter().map(|spec| SloTracker::new(spec.slo)).collect(),
        hedge: hedging.then(|| HedgePolicy::at_percentile(HEDGE_PERCENTILE)),
        write_gaps: (writes == MixedWrites::On).then(|| {
            ArrivalGen::new(
                ArrivalProcess::Poisson { rate: WRITE_RATE },
                SimRng::from_seed_and_stream(scale.seed, 0x0B00),
            )
        }),
        write_rng: SimRng::from_seed_and_stream(scale.seed, 0x0B01),
        worker_busy: vec![false; WORKERS],
        worker_cpus: (0..WORKERS).map(|w| geometry.io_cpus()[w]).collect(),
        settles: Vec::new(),
        has_work: Vec::with_capacity(specs.len()),
        sub_scratch: Vec::new(),
        req_ledger: RequestLedger::new(),
        policy: tuning.fio_policy(),
        hist: LatencyHistogram::new(),
        ledger: RequestLedger::new(),
        ledger_mismatches: 0,
        hedges_fired: 0,
        hedges_won: 0,
        placement: (0..specs.len())
            .map(|t| SimRng::from_seed_and_stream(scale.seed, 0x0A00 + t as u64))
            .collect(),
        deadline: SimTime::ZERO + scale.runtime,
        horizon: SimTime::ZERO + scale.runtime + SimDuration::millis(50),
        request_pages: 4_000_000,
    };
    let mut sim = Simulation::new(world);
    for tenant in 0..specs.len() {
        sim.schedule_at(SimTime::ZERO, FeEvent::FirstArrival { tenant });
    }
    if writes == MixedWrites::On {
        sim.schedule_at(SimTime::ZERO, FeEvent::WriteArrival);
    }
    sim.schedule_at(SimTime::ZERO, FeEvent::BgArrival);
    sim.run_to_completion();
    let world = sim.into_world();

    let counters = FrontendCounters {
        requests_admitted: world.queues.iter().map(AdmissionQueue::admitted).sum(),
        requests_shed: world.queues.iter().map(AdmissionQueue::shed).sum(),
        hedges_fired: world.hedges_fired,
        hedges_won: world.hedges_won,
        // Slab/sketch occupancy is the fleet experiment's story; the
        // tailscale cells leave the fields zero so their committed
        // artifacts keep the original four-key "frontend" object.
        ..FrontendCounters::default()
    };
    afa_sim::metrics::add_frontend(counters);
    ServeCell {
        stage,
        width,
        hedging,
        client: world.hist.profile(),
        tenants: specs
            .iter()
            .zip(world.slos.iter())
            .map(|(spec, slo)| TenantReport {
                name: spec.name,
                slo: slo.report(),
            })
            .collect(),
        counters,
        causes: world.ledger.iter().collect(),
        ledger_mismatches: world.ledger_mismatches,
    }
}

#[derive(Debug)]
enum FeEvent {
    /// Bootstraps a tenant's arrival stream at time zero.
    FirstArrival { tenant: usize },
    /// One open-loop request arrives for `tenant`.
    Arrival { tenant: usize },
    /// A dispatch worker looks for queued work.
    TryDispatch { worker: usize },
    /// A sub-I/O finished inside its device; the completion crosses
    /// the fabric next. Timestamps ride along so the finishing sub can
    /// be attributed exactly.
    SubDeviceDone {
        request: u64,
        sub: usize,
        device: usize,
        bytes: u32,
        from_hedge: bool,
        submit_end: SimTime,
        submitted_at: SimTime,
        at_device: SimTime,
    },
    /// The completion reached the host: IRQ, (maybe) wake and reap.
    SubHostDone {
        request: u64,
        sub: usize,
        device: usize,
        from_hedge: bool,
        submit_end: SimTime,
        submitted_at: SimTime,
        at_device: SimTime,
        dev_done: SimTime,
    },
    /// The hedge timer for `request` fired.
    HedgeFire { request: u64, submit_end: SimTime },
    /// One background single-member write arrives (mixed load only).
    WriteArrival,
    /// Background host noise.
    BgArrival,
}

struct QueuedReq {
    arrived_at: SimTime,
    page: u64,
}

/// The full settle timeline of one sub-I/O completion, kept per open
/// request for the sub with the latest `reap_end` so the finishing
/// request can be attributed exactly.
#[derive(Clone, Copy, Debug)]
struct SubTimeline {
    submit_end: SimTime,
    submitted_at: SimTime,
    at_device: SimTime,
    dev_done: SimTime,
    at_host: SimTime,
    wake_ready: SimTime,
    run_start: SimTime,
    reap_end: SimTime,
}

struct FrontendWorld {
    host: HostModel,
    fabric: PcieFabric,
    devices: Vec<SsdDevice>,
    volume: StripedVolume,
    book: RequestBook,
    arrivals: Vec<ArrivalGen>,
    buckets: Vec<Option<TokenBucket>>,
    queues: Vec<AdmissionQueue<QueuedReq>>,
    wdrr: WeightedScheduler,
    slos: Vec<SloTracker>,
    hedge: Option<HedgePolicy>,
    write_gaps: Option<ArrivalGen>,
    write_rng: SimRng,
    worker_busy: Vec<bool>,
    worker_cpus: Vec<CpuId>,
    /// Settle timeline of the latest-reaping sub per open request,
    /// shadow-indexed by the request handle's dense slot index
    /// ([`afa_frontend::Handle::index`]) — slots recycle with the
    /// book's slab, so this never rehashes or grows past peak
    /// concurrency.
    settles: Vec<Option<SubTimeline>>,
    /// Scratch for the WDRR pick (reused across dispatches).
    has_work: Vec<bool>,
    /// Scratch for the striped fan-out mapping (reused across
    /// dispatches).
    sub_scratch: Vec<afa_volume::SubIo>,
    /// Scratch ledger reset per finished request instead of
    /// reconstructed.
    req_ledger: RequestLedger,
    policy: SchedPolicy,
    hist: LatencyHistogram,
    ledger: RequestLedger,
    ledger_mismatches: u64,
    hedges_fired: u64,
    hedges_won: u64,
    placement: Vec<SimRng>,
    deadline: SimTime,
    horizon: SimTime,
    request_pages: u64,
}

impl FrontendWorld {
    /// Keeps, per open request, the settle timeline of the sub-I/O
    /// with the latest `reap_end` — the one the request's latency is
    /// attributed to.
    fn note_settle(&mut self, request: u64, timeline: SubTimeline) {
        let idx = (request & 0xffff_ffff) as usize;
        if idx >= self.settles.len() {
            self.settles.resize(idx + 1, None);
        }
        match &mut self.settles[idx] {
            Some(best) => {
                if timeline.reap_end > best.reap_end {
                    *best = timeline;
                }
            }
            slot => *slot = Some(timeline),
        }
    }

    /// Wakes an idle dispatch worker, if any.
    fn kick_worker(&mut self, sched: &mut Scheduler<'_, FeEvent>) {
        if let Some(worker) = self.worker_busy.iter().position(|&b| !b) {
            self.worker_busy[worker] = true;
            sched.immediately(FeEvent::TryDispatch { worker });
        }
    }

    /// Submits one sub-I/O (original or hedge duplicate) to its device
    /// through the fabric.
    #[allow(clippy::too_many_arguments)]
    fn submit_sub(
        &mut self,
        request: u64,
        sub: usize,
        io: afa_volume::SubIo,
        submitted_at: SimTime,
        submit_end: SimTime,
        from_hedge: bool,
        sched: &mut Scheduler<'_, FeEvent>,
    ) {
        let device = self.volume.member_device(io.member);
        let at_device = self.fabric.submit_command(device, submitted_at);
        let info = self.devices[device].submit(at_device, NvmeCommand::read(io.lba, io.bytes));
        sched.at(
            info.completes_at,
            FeEvent::SubDeviceDone {
                request,
                sub,
                device,
                bytes: io.bytes,
                from_hedge,
                submit_end,
                submitted_at,
                at_device,
            },
        );
    }
}

impl World for FrontendWorld {
    type Event = FeEvent;

    fn handle(&mut self, event: FeEvent, sched: &mut Scheduler<'_, FeEvent>) {
        match event {
            FeEvent::FirstArrival { tenant } => {
                let first = self.arrivals[tenant].next_after(sched.now());
                if first < self.deadline {
                    sched.at(first, FeEvent::Arrival { tenant });
                }
            }
            FeEvent::Arrival { tenant } => {
                let now = sched.now();
                let next = self.arrivals[tenant].next_after(now);
                if next < self.deadline {
                    sched.at(next, FeEvent::Arrival { tenant });
                }
                // Placement is drawn before admission so the stream's
                // consumption does not depend on shed outcomes.
                let width = self.volume.width() as u64;
                let page = self.placement[tenant].below(self.request_pages / width) * width;
                if let Some(bucket) = &mut self.buckets[tenant] {
                    if !bucket.try_take(now) {
                        self.queues[tenant].count_shed();
                        return;
                    }
                }
                if self.queues[tenant].offer(QueuedReq {
                    arrived_at: now,
                    page,
                }) {
                    self.kick_worker(sched);
                }
            }
            FeEvent::TryDispatch { worker } => {
                let now = sched.now();
                self.has_work.clear();
                self.has_work
                    .extend(self.queues.iter().map(|q| !q.is_empty()));
                let Some(tenant) = self.wdrr.pick(&self.has_work) else {
                    self.worker_busy[worker] = false;
                    return;
                };
                let item = self.queues[tenant].pop().expect("picked tenant has work");
                let bytes = 4096 * self.volume.width() as u32;
                let mut subs = std::mem::take(&mut self.sub_scratch);
                self.volume.map_read_into(item.page, bytes, &mut subs);
                let cpu = self.worker_cpus[worker];
                let submit_cost = SUBMIT_BASE + SUBMIT_PER_SUB * subs.len() as u64;
                let submit_end = self.host.charge_cpu(cpu, now, submit_cost);
                let request = self.book.begin(tenant, item.arrived_at, now, &subs);
                for (i, &io) in subs.iter().enumerate() {
                    self.submit_sub(request, i, io, submit_end, submit_end, false, sched);
                }
                self.sub_scratch = subs;
                if let Some(delay) = self.hedge.as_ref().and_then(HedgePolicy::delay) {
                    sched.at(
                        submit_end + delay,
                        FeEvent::HedgeFire {
                            request,
                            submit_end,
                        },
                    );
                }
                // The worker stays busy until the submit batch retires,
                // then looks for more work.
                sched.at(submit_end, FeEvent::TryDispatch { worker });
            }
            FeEvent::SubDeviceDone {
                request,
                sub,
                device,
                bytes,
                from_hedge,
                submit_end,
                submitted_at,
                at_device,
            } => {
                let now = sched.now();
                let at_host = self.fabric.deliver_completion(device, now, bytes as u64);
                sched.at(
                    at_host,
                    FeEvent::SubHostDone {
                        request,
                        sub,
                        device,
                        from_hedge,
                        submit_end,
                        submitted_at,
                        at_device,
                        dev_done: now,
                    },
                );
            }
            FeEvent::SubHostDone {
                request,
                sub,
                device,
                from_hedge,
                submit_end,
                submitted_at,
                at_device,
                dev_done,
            } => {
                let now = sched.now();
                let irq = self.host.deliver_irq(device, now);
                let dispatched = self.book.dispatched_at(request);
                // Every sub completion wakes the serving task on its
                // worker's CPU (libaio-style: one io_getevents wake
                // per CQE), so per-sub scheduler noise — the paper's
                // default-stage tail — is part of the settle time the
                // max-of-width amplifies.
                let cpu = self.worker_cpus[(request % WORKERS as u64) as usize];
                let (run_start, _) = self.host.wake_io_task(cpu, irq.wake_ready, self.policy);
                let reap_end = self.host.charge_cpu(cpu, run_start, COMPLETE_COST);
                let timeline = SubTimeline {
                    submit_end,
                    submitted_at,
                    at_device,
                    dev_done,
                    at_host: now,
                    wake_ready: irq.wake_ready,
                    run_start,
                    reap_end,
                };
                match self.book.complete_sub(request, sub, reap_end, from_hedge) {
                    SubCompletion::Duplicate => {
                        // Hedge loser: cancelled, nothing to account.
                    }
                    SubCompletion::Pending => {
                        if let (Some(policy), Some(d)) = (self.hedge.as_mut(), dispatched) {
                            policy.observe(reap_end.saturating_since(d));
                        }
                        self.note_settle(request, timeline);
                        // Re-arm when the straggler condition is met:
                        // one sub left and the rest settled — fire at
                        // the policy delay past submit, or now if that
                        // has already passed.
                        if self.book.outstanding(request) == 1 {
                            if let Some(delay) = self.hedge.as_ref().and_then(HedgePolicy::delay) {
                                sched.at(
                                    (submit_end + delay).max(now),
                                    FeEvent::HedgeFire {
                                        request,
                                        submit_end,
                                    },
                                );
                            }
                        }
                    }
                    SubCompletion::Finished(fin) => {
                        if let Some(policy) = self.hedge.as_mut() {
                            policy.observe(reap_end.saturating_since(fin.dispatched_at));
                        }
                        if fin.hedge_won {
                            self.hedges_won += 1;
                        }
                        self.note_settle(request, timeline);
                        let best = self.settles[(request & 0xffff_ffff) as usize]
                            .take()
                            .expect("settle timeline recorded");
                        let latency = fin.latency();
                        self.hist.record(latency.as_nanos());
                        self.slos[fin.tenant].record(latency);
                        // Exact attribution of the slowest winning
                        // sub-I/O's path — the charges tile `latency`
                        // to the nanosecond.
                        let ledger = &mut self.req_ledger;
                        ledger.reset();
                        ledger.charge(Cause::FrontendQueue, fin.queueing());
                        ledger.charge(
                            Cause::CpuWork,
                            best.submit_end.saturating_since(fin.dispatched_at)
                                + best.reap_end.saturating_since(best.run_start),
                        );
                        // Hedge wait: a duplicate's clock starts when
                        // the hedge fired, not at the original submit.
                        ledger.charge(
                            Cause::Other,
                            best.submitted_at.saturating_since(best.submit_end),
                        );
                        ledger.charge(
                            Cause::Fabric,
                            best.at_device.saturating_since(best.submitted_at)
                                + best.at_host.saturating_since(best.dev_done),
                        );
                        ledger.charge(
                            Cause::DeviceService,
                            best.dev_done.saturating_since(best.at_device),
                        );
                        ledger.charge(
                            Cause::IrqHandling,
                            best.wake_ready.saturating_since(best.at_host),
                        );
                        ledger.charge(
                            Cause::SchedulerDelay,
                            best.run_start.saturating_since(best.wake_ready),
                        );
                        if ledger.total() != latency {
                            self.ledger_mismatches += 1;
                        }
                        for (cause, d) in ledger.iter() {
                            self.ledger.charge(cause, d);
                        }
                    }
                }
            }
            FeEvent::HedgeFire {
                request,
                submit_end,
            } => {
                let now = sched.now();
                if let Some((sub, mut io)) = self.book.hedge_straggler(request) {
                    self.hedges_fired += 1;
                    // The duplicate reads the mirrored-pair replica on
                    // the stripe's buddy member: re-queueing behind the
                    // straggler on its own device could never win.
                    io.member = (io.member + 1) % self.volume.width();
                    self.submit_sub(request, sub, io, now, submit_end, true, sched);
                }
            }
            FeEvent::WriteArrival => {
                let now = sched.now();
                let gaps = self.write_gaps.as_mut().expect("mixed writes enabled");
                let next = gaps.next_after(now);
                if next < self.deadline {
                    sched.at(next, FeEvent::WriteArrival);
                }
                // Fire-and-forget: the write occupies one member's
                // pipeline (stalling reads queued behind it); its
                // completion interrupt is not modeled.
                let width = self.volume.width();
                let member = self.write_rng.below(width as u64) as usize;
                let lba = self.write_rng.below(self.request_pages);
                let device = self.volume.member_device(member);
                let at_device = self.fabric.submit_command(device, now);
                self.devices[device].submit(at_device, NvmeCommand::write(lba, WRITE_BYTES));
            }
            FeEvent::BgArrival => {
                let now = sched.now();
                self.host.spawn_background(now);
                let next = self.host.next_background_arrival(now);
                if next < self.horizon {
                    sched.at(next, FeEvent::BgArrival);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_amplifies_the_default_tail_and_tuning_tames_it() {
        let scale = ExperimentScale::new(SimDuration::millis(300), 16, 42);
        let result = tailscale_fanout(scale);
        let point = |stage, width, p| {
            result
                .cell(stage, width, false)
                .unwrap_or_else(|| panic!("missing cell {stage:?}/{width}"))
                .client
                .get_micros(p)
        };
        let p99 = |stage, width| point(stage, width, NinesPoint::Nines2);
        assert!(
            p99(TuningStage::Default, 16) > p99(TuningStage::Default, 1),
            "default request p99 must grow with fan-out width: {} -> {}",
            p99(TuningStage::Default, 1),
            p99(TuningStage::Default, 16)
        );
        assert!(
            p99(TuningStage::IrqAffinity, 16) < p99(TuningStage::Default, 16) / 4.0,
            "tuning must cut the wide-fanout request tail"
        );
        // Converged means the tail sits near the body of the
        // distribution even at full width; the default tail does not.
        let tuned_inflation = p99(TuningStage::IrqAffinity, 16)
            / point(TuningStage::IrqAffinity, 16, NinesPoint::Average);
        let default_inflation =
            p99(TuningStage::Default, 16) / point(TuningStage::Default, 16, NinesPoint::Average);
        assert!(
            tuned_inflation < 2.5,
            "irq-tuned p99 must converge to the body: x{tuned_inflation:.2}"
        );
        assert!(
            default_inflation > 4.0,
            "default p99 must stay amplified: x{default_inflation:.2}"
        );
    }

    #[test]
    fn ledgers_tile_latency_exactly_and_bursty_tenant_sheds() {
        let scale = ExperimentScale::new(SimDuration::millis(200), 8, 7);
        let result = tailscale_fanout(scale);
        let mut shed_total = 0;
        for cell in &result.cells {
            assert_eq!(
                cell.ledger_mismatches, 0,
                "{:?}/{} ledger must tile latency exactly",
                cell.stage, cell.width
            );
            assert!(
                cell.client.samples() > 200,
                "{:?}/{} served only {} requests",
                cell.stage,
                cell.width,
                cell.client.samples()
            );
            assert!(cell.counters.requests_admitted > 0);
            assert_eq!(cell.counters.hedges_fired, 0, "fanout sweep never hedges");
            assert!(
                cell.causes.iter().any(|&(c, _)| c == Cause::FrontendQueue),
                "frontend queueing must appear in the cause totals"
            );
            shed_total += cell.counters.requests_shed;
        }
        assert!(
            shed_total > 0,
            "the bursty tenant's token bucket must shed during bursts"
        );
    }

    #[test]
    fn hedging_cuts_the_wide_fanout_tail() {
        let scale = ExperimentScale::new(SimDuration::millis(800), 16, 42);
        let result = tailscale_hedge(scale);
        let unhedged = result
            .cell(TuningStage::IrqAffinity, 16, false)
            .expect("unhedged cell");
        let hedged = result
            .cell(TuningStage::IrqAffinity, 16, true)
            .expect("hedged cell");
        assert!(hedged.counters.hedges_fired > 0, "warm policy must hedge");
        assert!(
            hedged.counters.hedges_won <= hedged.counters.hedges_fired,
            "wins are a subset of fires"
        );
        assert!(hedged.counters.hedges_won > 0, "some duplicates must win");
        let u999 = unhedged.client.get_micros(NinesPoint::Nines3);
        let h999 = hedged.client.get_micros(NinesPoint::Nines3);
        assert!(
            h999 < u999,
            "hedging must cut p99.9 at full fan-out: {h999:.1} !< {u999:.1}"
        );
        assert_eq!(unhedged.counters.hedges_fired, 0);
    }

    #[test]
    fn artifacts_are_deterministic() {
        let scale = ExperimentScale::new(SimDuration::millis(100), 8, 9);
        let a = tailscale_hedge(scale).to_json().to_string();
        let b = tailscale_hedge(scale).to_json().to_string();
        assert_eq!(a, b, "same seed must serialize byte-identically");
    }
}
