//! The blktrace experiment: per-I/O stage timestamps for a window of
//! I/Os under the fully tuned kernel, rendered blkparse-style.

use afa_stats::Json;

use crate::blktrace::IoTrace;
use crate::config::AfaConfig;
use crate::experiment::registry::ExperimentResult;
use crate::experiment::ExperimentScale;
use crate::system::AfaSystem;
use crate::tuning::TuningStage;

/// How many I/Os the trace window keeps.
const TRACE_WINDOW: usize = 200_000;

/// Result of the blktrace experiment.
#[derive(Clone, Debug)]
pub struct IoTraceResult {
    /// Every captured I/O with its stage timestamps.
    pub traces: Vec<IoTrace>,
    /// Stage the run used.
    pub stage: TuningStage,
}

impl IoTraceResult {
    /// The slowest captured I/O.
    pub fn slowest(&self) -> Option<&IoTrace> {
        self.traces.iter().max_by_key(|t| t.total())
    }

    /// Full blkparse-style text dump.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (seq, trace) in self.traces.iter().enumerate() {
            out.push_str(&trace.to_text(seq));
        }
        out
    }

    fn delta_ns(trace: &IoTrace, from: usize, to: usize) -> u64 {
        trace.stamps[to]
            .saturating_since(trace.stamps[from])
            .as_nanos()
    }
}

impl ExperimentResult for IoTraceResult {
    fn to_table(&self) -> String {
        let mut out = format!(
            "blktrace window — {} I/Os captured, '{}' configuration\n",
            self.traces.len(),
            self.stage.label()
        );
        match self.slowest() {
            None => out.push_str("no I/Os captured\n"),
            Some(t) => {
                out.push_str(&format!(
                    "slowest: nvme{} lba {} — {:.1} us total\n",
                    t.device,
                    t.lba,
                    t.total().as_micros_f64()
                ));
                out.push_str(&t.to_text(0));
            }
        }
        out
    }

    /// One row per captured I/O: stage-to-stage deltas in ns.
    fn to_csv(&self) -> String {
        let mut out =
            String::from("device,lba,submit_to_device_ns,device_ns,device_to_reap_ns,total_ns\n");
        for t in &self.traces {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                t.device,
                t.lba,
                Self::delta_ns(t, 0, 1),
                Self::delta_ns(t, 1, 2),
                Self::delta_ns(t, 2, 4),
                t.total().as_nanos()
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        let slowest = match self.slowest() {
            None => Json::Null,
            Some(t) => Json::obj([
                ("device", Json::u64(t.device as u64)),
                ("lba", Json::u64(t.lba)),
                ("total_ns", Json::u64(t.total().as_nanos())),
                ("submit_to_device_ns", Json::u64(Self::delta_ns(t, 0, 1))),
                ("device_ns", Json::u64(Self::delta_ns(t, 1, 2))),
                ("device_to_reap_ns", Json::u64(Self::delta_ns(t, 2, 4))),
            ]),
        };
        Json::obj([
            ("stage", Json::str(self.stage.label())),
            ("traced", Json::u64(self.traces.len() as u64)),
            ("slowest", slowest),
        ])
    }

    fn samples(&self) -> u64 {
        self.traces.len() as u64
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.slowest().map(|t| t.total().as_micros_f64())
    }
}

/// Runs the tuned configuration with stage tracing enabled.
pub fn io_trace(scale: ExperimentScale) -> IoTraceResult {
    let config = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_ssds(scale.ssds)
        .with_runtime(scale.runtime)
        .with_seed(scale.seed)
        .with_io_tracing(TRACE_WINDOW);
    let result = AfaSystem::run(&config);
    let recorder = result.traces.expect("tracing enabled");
    IoTraceResult {
        traces: recorder.traces().to_vec(),
        stage: TuningStage::IrqAffinity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_sim::SimDuration;

    #[test]
    fn trace_captures_and_summarizes() {
        let result = io_trace(ExperimentScale::new(SimDuration::millis(30), 2, 42));
        assert!(
            result.traces.len() > 100,
            "only {} traces",
            result.traces.len()
        );
        assert!(result.slowest().is_some());
        assert!(result.to_table().contains("slowest"));
        assert!(result.to_text().contains("nvme0"));
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), result.traces.len() + 1);
        let json = result.to_json().to_string();
        assert!(json.contains("\"traced\""));
        assert!(json.contains("\"slowest\""));
        assert_eq!(result.samples(), result.traces.len() as u64);
    }
}
