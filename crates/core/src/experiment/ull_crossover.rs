//! The ULL crossover study: device class × tuning ladder × completion
//! model.
//!
//! The paper's whole tuning ladder (§IV) exists because on a ~25 µs
//! Table-I device, host-side noise — CFS wake-ups, C-state exits,
//! mis-routed interrupts — is a visible fraction of the I/O. This
//! experiment asks what survives a device-class change: on an
//! ultra-low-latency (~9 µs Z-NAND class) device with per-CPU queue
//! pairs, the interrupt path itself becomes the dominant host cost,
//! kernel-side polling overtakes the *fully tuned* interrupt
//! configuration, and parts of the ladder stop mattering entirely
//! (with no interrupt to route, the IRQ-affinity stage is a literal
//! no-op). Hybrid polling sits between: on Table-I devices it keeps
//! interrupt-class tails at a fraction of polling's CPU burn.

use afa_sim::metrics::CompletionCounters;
use afa_ssd::DeviceProfile;
use afa_stats::{Json, NinesPoint};
use afa_workload::IoEngine;

use crate::config::AfaConfig;
use crate::experiment::registry::ExperimentResult;
use crate::experiment::{run_parallel, ExperimentScale};
use crate::tuning::TuningStage;

/// The completion models the grid sweeps, with their row labels.
const MODELS: [(&str, IoEngine); 3] = [
    ("interrupt", IoEngine::Libaio),
    ("polling", IoEngine::Polling),
    ("hybrid", IoEngine::HybridPoll),
];

/// The device classes the grid sweeps.
const PROFILES: [DeviceProfile; 2] = [DeviceProfile::Table1, DeviceProfile::UltraLowLatency];

/// One cell of the grid: a (device profile, tuning stage, completion
/// model) run.
#[derive(Clone, Debug)]
pub struct UllCrossoverCell {
    /// Device-class label (`table1` / `ull`).
    pub profile: &'static str,
    /// Tuning stage of the run.
    pub stage: TuningStage,
    /// Completion-model label (`interrupt` / `polling` / `hybrid`).
    pub model: &'static str,
    /// Mean latency across devices, µs.
    pub mean_us: f64,
    /// Worst per-device p99, µs.
    pub p99_us: f64,
    /// Worst per-device p99.999, µs.
    pub p99999_us: f64,
    /// Worst observed sample, µs.
    pub max_us: f64,
    /// Mean CPU time charged per I/O, µs (polling pays the spin here).
    pub cpu_us_per_io: f64,
    /// Completed I/Os behind the cell.
    pub completed: u64,
    /// How the cell's completions were reaped.
    pub reaps: CompletionCounters,
}

/// The full grid, in `PROFILES × TuningStage::ALL × MODELS` order.
#[derive(Clone, Debug)]
pub struct UllCrossoverResult {
    /// All grid cells.
    pub cells: Vec<UllCrossoverCell>,
}

impl UllCrossoverResult {
    /// The cell for a grid coordinate.
    pub fn cell(
        &self,
        profile: DeviceProfile,
        stage: TuningStage,
        model: &str,
    ) -> &UllCrossoverCell {
        self.cells
            .iter()
            .find(|c| c.profile == profile.label() && c.stage == stage && c.model == model)
            .expect("full grid")
    }

    /// Renders the grid, one block per device class.
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("ULL crossover — completion model x tuning ladder per device class\n");
        for profile in PROFILES {
            out.push_str(&format!("\ndevice class: {}\n", profile.label()));
            out.push_str(&format!(
                "{:<14} {:<10} {:>10} {:>10} {:>12} {:>10} {:>10}\n",
                "stage", "model", "mean(us)", "p99(us)", "p99.999(us)", "max(us)", "cpu/io(us)"
            ));
            for cell in self.cells.iter().filter(|c| c.profile == profile.label()) {
                out.push_str(&format!(
                    "{:<14} {:<10} {:>10.1} {:>10.1} {:>12.1} {:>10.1} {:>10.1}\n",
                    cell.stage.label(),
                    cell.model,
                    cell.mean_us,
                    cell.p99_us,
                    cell.p99999_us,
                    cell.max_us,
                    cell.cpu_us_per_io
                ));
            }
        }
        out
    }

    /// One CSV row per cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "profile,stage,model,mean_us,p99_us,p99999_us,max_us,cpu_us_per_io,completed,polls,hybrid_sleeps\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{},{},{}\n",
                c.profile,
                c.stage.label(),
                c.model,
                c.mean_us,
                c.p99_us,
                c.p99999_us,
                c.max_us,
                c.cpu_us_per_io,
                c.completed,
                c.reaps.polls,
                c.reaps.hybrid_sleeps
            ));
        }
        out
    }
}

impl ExperimentResult for UllCrossoverResult {
    fn to_table(&self) -> String {
        UllCrossoverResult::to_table(self)
    }

    fn to_csv(&self) -> String {
        UllCrossoverResult::to_csv(self)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "title",
                Json::str("ULL crossover — completion model x tuning ladder per device class"),
            ),
            (
                "rows",
                Json::arr(self.cells.iter().map(|c| {
                    Json::obj([
                        ("profile", Json::str(c.profile)),
                        ("stage", Json::str(c.stage.label())),
                        ("model", Json::str(c.model)),
                        ("mean_us", Json::f64(c.mean_us)),
                        ("p99_us", Json::f64(c.p99_us)),
                        ("p99999_us", Json::f64(c.p99999_us)),
                        ("max_us", Json::f64(c.max_us)),
                        ("cpu_us_per_io", Json::f64(c.cpu_us_per_io)),
                        ("completed", Json::u64(c.completed)),
                        ("interrupts", Json::u64(c.reaps.interrupts)),
                        ("polls", Json::u64(c.reaps.polls)),
                        ("hybrid_sleeps", Json::u64(c.reaps.hybrid_sleeps)),
                    ])
                })),
            ),
        ])
    }

    fn samples(&self) -> u64 {
        self.cells.iter().map(|c| c.completed).sum()
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.cells
            .iter()
            .map(|c| c.max_us)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Runs the 2 × 5 × 3 grid: both device classes, the whole tuning
/// ladder, all three completion models, at the same scale and seed.
pub fn ull_crossover(scale: ExperimentScale) -> UllCrossoverResult {
    let mut coords = Vec::with_capacity(PROFILES.len() * TuningStage::ALL.len() * MODELS.len());
    let mut configs = Vec::with_capacity(coords.capacity());
    for profile in PROFILES {
        for stage in TuningStage::ALL {
            for (label, engine) in MODELS {
                coords.push((profile, stage, label));
                configs.push(
                    AfaConfig::paper(stage)
                        .with_ssds(scale.ssds)
                        .with_runtime(scale.runtime)
                        .with_seed(scale.seed)
                        .with_device_profile(profile)
                        .with_engine(engine),
                );
            }
        }
    }
    let results = run_parallel(configs);
    let cells = coords
        .into_iter()
        .zip(results.iter())
        .map(|((profile, stage, model), result)| {
            let mut mean = 0.0f64;
            let mut p99 = 0.0f64;
            let mut p99999 = 0.0f64;
            let mut max = 0.0f64;
            for report in &result.reports {
                let prof = report.profile();
                mean += prof.get_micros(NinesPoint::Average);
                p99 = p99.max(prof.get_micros(NinesPoint::Nines2));
                p99999 = p99999.max(prof.get_micros(NinesPoint::Nines5));
                max = max.max(prof.get_micros(NinesPoint::Max));
            }
            let completed: u64 = result.reports.iter().map(|r| r.completed()).sum();
            UllCrossoverCell {
                profile: profile.label(),
                stage,
                model,
                mean_us: mean / result.reports.len() as f64,
                p99_us: p99,
                p99999_us: p99999,
                max_us: max,
                cpu_us_per_io: result.host.stats().io_cpu_busy_ns as f64
                    / 1e3
                    / completed.max(1) as f64,
                completed,
                reaps: result.completions,
            }
        })
        .collect();
    UllCrossoverResult { cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_sim::SimDuration;

    fn grid() -> UllCrossoverResult {
        ull_crossover(ExperimentScale::new(SimDuration::millis(120), 2, 42))
    }

    #[test]
    fn grid_is_complete_and_counted() {
        let r = grid();
        assert_eq!(r.cells.len(), 30);
        for cell in &r.cells {
            assert!(cell.completed > 0, "{:?} completed nothing", cell);
            match cell.model {
                "interrupt" => {
                    assert!(
                        cell.reaps.interrupts > 0 && cell.reaps.polls == 0,
                        "{cell:?}"
                    )
                }
                "polling" => {
                    assert!(
                        cell.reaps.polls > 0
                            && cell.reaps.interrupts == 0
                            && cell.reaps.hybrid_sleeps == 0,
                        "{cell:?}"
                    )
                }
                "hybrid" => assert!(
                    cell.reaps.polls > 0 && cell.reaps.interrupts == 0,
                    "{cell:?}"
                ),
                other => panic!("unknown model {other}"),
            }
        }
    }

    #[test]
    fn crossover_flips_with_the_device_class() {
        let r = grid();
        // Table-I: the tuning ladder dominates — the untuned kernel's
        // worst-case is far above the tuned one's.
        let t1_default = r.cell(DeviceProfile::Table1, TuningStage::Default, "interrupt");
        let t1_tuned = r.cell(DeviceProfile::Table1, TuningStage::IrqAffinity, "interrupt");
        assert!(
            t1_default.max_us > 1.5 * t1_tuned.max_us,
            "tuning ladder lost its Table-I win: {} vs {}",
            t1_default.max_us,
            t1_tuned.max_us
        );
        // Table-I: hybrid polling holds interrupt-class p99 (within
        // 15%) while classic polling burns far more CPU than either.
        let t1_hybrid = r.cell(DeviceProfile::Table1, TuningStage::IrqAffinity, "hybrid");
        let t1_poll = r.cell(DeviceProfile::Table1, TuningStage::IrqAffinity, "polling");
        assert!(
            (t1_hybrid.p99_us - t1_tuned.p99_us).abs() / t1_tuned.p99_us < 0.15,
            "hybrid p99 {} strayed from interrupt p99 {}",
            t1_hybrid.p99_us,
            t1_tuned.p99_us
        );
        // The hybrid sleep is 50% of the ~25 µs nominal latency, so
        // hybrid should reclaim roughly that much CPU per I/O.
        assert!(
            t1_poll.cpu_us_per_io > t1_hybrid.cpu_us_per_io + 10.0,
            "polling should out-burn hybrid by ~the sleep: {} vs {}",
            t1_poll.cpu_us_per_io,
            t1_hybrid.cpu_us_per_io
        );
        // ULL: polling beats even the fully tuned interrupt path at
        // p99 — the crossover the device class flips.
        let ull_tuned = r.cell(
            DeviceProfile::UltraLowLatency,
            TuningStage::IrqAffinity,
            "interrupt",
        );
        let ull_poll = r.cell(
            DeviceProfile::UltraLowLatency,
            TuningStage::IrqAffinity,
            "polling",
        );
        assert!(
            ull_poll.p99_us < ull_tuned.p99_us,
            "ULL polling p99 {} should beat tuned interrupt p99 {}",
            ull_poll.p99_us,
            ull_tuned.p99_us
        );
    }

    #[test]
    fn irq_affinity_stage_is_a_noop_under_ull_polling() {
        let r = grid();
        // With no interrupt to route, pinning the vectors changes
        // nothing: the isolcpus and irq-affinity rows are numerically
        // identical under polling (the balanced router's RNG is only
        // consumed when an MSI is actually routed).
        let iso = r.cell(
            DeviceProfile::UltraLowLatency,
            TuningStage::Isolcpus,
            "polling",
        );
        let irq = r.cell(
            DeviceProfile::UltraLowLatency,
            TuningStage::IrqAffinity,
            "polling",
        );
        assert_eq!(iso.mean_us.to_bits(), irq.mean_us.to_bits());
        assert_eq!(iso.p99_us.to_bits(), irq.p99_us.to_bits());
        assert_eq!(iso.max_us.to_bits(), irq.max_us.to_bits());
        assert_eq!(iso.completed, irq.completed);
    }
}
