//! The §VI future-work prototypes, evaluated.
//!
//! The paper closes with: "Our future work includes prototyping new
//! CPU schedulers and I/O load balancers." [`afa_host`] implements
//! both prototypes — [`afa_host::SchedProfile::IoAggressive`] (waking
//! I/O tasks preempt immediately, background placement avoids
//! I/O-active CPUs) and [`afa_host::IrqMode::AffinityAware`] (vectors
//! follow the submitting worker automatically). This experiment asks
//! the natural question: *how close does the automatic kernel get to
//! the paper's manual tuning?*

use afa_host::KernelConfig;
use afa_stats::{Json, NinesPoint};

use crate::config::AfaConfig;
use crate::experiment::registry::ExperimentResult;
use crate::experiment::{run_parallel, ExperimentScale};
use crate::tuning::TuningStage;

/// One compared kernel.
#[derive(Clone, Debug)]
pub struct FutureWorkRow {
    /// Display name.
    pub name: String,
    /// Mean of the per-device average latency, µs.
    pub avg_us: f64,
    /// Worst per-device p99.9, µs.
    pub p999_us: f64,
    /// Worst per-device maximum, µs.
    pub max_us: f64,
}

/// The comparison result.
#[derive(Clone, Debug)]
pub struct FutureWorkResult {
    /// Stock / manual / prototype rows.
    pub rows: Vec<FutureWorkRow>,
}

impl FutureWorkResult {
    /// Fraction of the manual tuning's worst-case win the prototype
    /// achieves (1.0 = as good as manual).
    pub fn prototype_win_fraction(&self) -> f64 {
        let stock = self.rows[0].max_us;
        let manual = self.rows[1].max_us;
        let proto = self.rows[2].max_us;
        if stock <= manual {
            return 1.0;
        }
        ((stock - proto) / (stock - manual)).clamp(0.0, 1.5)
    }

    /// Renders the comparison.
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("§VI future work — automatic kernel prototypes vs. manual tuning\n");
        out.push_str(&format!(
            "{:<34} {:>10} {:>12} {:>10}\n",
            "kernel", "avg(us)", "p99.9(us)", "max(us)"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<34} {:>10.1} {:>12.1} {:>10.1}\n",
                row.name, row.avg_us, row.p999_us, row.max_us
            ));
        }
        out.push_str(&format!(
            "prototype captures {:.0}% of the manual worst-case win, \
             with zero boot options or chrt\n",
            self.prototype_win_fraction() * 100.0
        ));
        out
    }
}

impl ExperimentResult for FutureWorkResult {
    fn to_table(&self) -> String {
        FutureWorkResult::to_table(self)
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("kernel,avg_us,p999_us,max_us\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{:.3},{:.3},{:.3}\n",
                row.name.replace(',', ";"),
                row.avg_us,
                row.p999_us,
                row.max_us
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::obj([
            (
                "rows",
                Json::arr(self.rows.iter().map(|row| {
                    Json::obj([
                        ("kernel", Json::str(&row.name)),
                        ("avg_us", Json::f64(row.avg_us)),
                        ("p999_us", Json::f64(row.p999_us)),
                        ("max_us", Json::f64(row.max_us)),
                    ])
                })),
            ),
            (
                "prototype_win_fraction",
                Json::f64(self.prototype_win_fraction()),
            ),
        ])
    }

    fn headline_max_us(&self) -> Option<f64> {
        self.rows.last().map(|r| r.max_us)
    }
}

/// Runs stock default, the paper's manual tuning, and the automatic
/// prototype side by side.
pub fn future_schedulers(scale: ExperimentScale) -> FutureWorkResult {
    let stock = AfaConfig::paper(TuningStage::Default)
        .with_ssds(scale.ssds)
        .with_runtime(scale.runtime)
        .with_seed(scale.seed);
    let manual = AfaConfig::paper(TuningStage::IrqAffinity)
        .with_ssds(scale.ssds)
        .with_runtime(scale.runtime)
        .with_seed(scale.seed);
    // The prototype: stock userspace (CFS fio, no isolation, default
    // C-states) on the future-work kernel.
    let mut prototype = AfaConfig::paper(TuningStage::Default)
        .with_ssds(scale.ssds)
        .with_runtime(scale.runtime)
        .with_seed(scale.seed);
    prototype.kernel_override = Some(KernelConfig::prototype());

    let names = [
        "stock (default)",
        "manual (chrt+isolcpus+irq pin)",
        "prototype (auto, no tuning)",
    ];
    let results = run_parallel(vec![stock, manual, prototype]);
    let rows = names
        .iter()
        .zip(results.iter())
        .map(|(&name, result)| {
            let mut avg = 0.0;
            let mut p999 = 0.0f64;
            let mut max = 0.0f64;
            for report in &result.reports {
                let profile = report.profile();
                avg += profile.get_micros(NinesPoint::Average);
                p999 = p999.max(profile.get_micros(NinesPoint::Nines3));
                max = max.max(profile.get_micros(NinesPoint::Max));
            }
            avg /= result.reports.len() as f64;
            FutureWorkRow {
                name: name.to_owned(),
                avg_us: avg,
                p999_us: p999,
                max_us: max,
            }
        })
        .collect();
    FutureWorkResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_sim::SimDuration;

    #[test]
    fn prototype_recovers_most_of_the_manual_win() {
        let scale = ExperimentScale::new(SimDuration::millis(300), 24, 42);
        let result = future_schedulers(scale);
        assert_eq!(result.rows.len(), 3);
        let stock = &result.rows[0];
        let manual = &result.rows[1];
        let proto = &result.rows[2];
        assert!(
            stock.max_us > manual.max_us,
            "manual tuning must beat stock"
        );
        assert!(
            proto.max_us < stock.max_us / 2.0,
            "prototype must collapse the stock tail: {} vs {}",
            proto.max_us,
            stock.max_us
        );
        assert!(
            result.prototype_win_fraction() > 0.5,
            "prototype win fraction {:.2}",
            result.prototype_win_fraction()
        );
        assert!(result.to_table().contains("prototype"));
    }
}
