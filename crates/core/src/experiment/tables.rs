//! Runners for Table I and Table II.

use afa_sim::{SimDuration, SimTime};
use afa_ssd::{FirmwareProfile, NvmeCommand, SsdDevice, SsdSpec};
use afa_stats::Json;

use crate::experiment::registry::ExperimentResult;
use crate::geometry::Table2Row;

/// Measured-vs-rated device figures (Table I).
#[derive(Clone, Debug)]
pub struct Table1Result {
    /// `(metric, rated, measured)` rows.
    pub rows: Vec<(String, f64, f64)>,
}

impl Table1Result {
    /// Renders the comparison.
    pub fn to_table(&self) -> String {
        let mut out = String::from("Table I — device specification, rated vs. measured\n");
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>8}\n",
            "metric", "rated", "measured", "ratio"
        ));
        for (metric, rated, measured) in &self.rows {
            let ratio = if *rated > 0.0 { measured / rated } else { 0.0 };
            out.push_str(&format!(
                "{metric:<28} {rated:>12.0} {measured:>12.0} {ratio:>8.2}\n"
            ));
        }
        out
    }

    /// Looks up a measured value by metric name.
    pub fn measured(&self, metric: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(m, _, _)| m == metric)
            .map(|&(_, _, v)| v)
    }
}

impl ExperimentResult for Table1Result {
    fn to_table(&self) -> String {
        Table1Result::to_table(self)
    }

    fn to_csv(&self) -> String {
        let mut out = String::from("metric,rated,measured\n");
        for (metric, rated, measured) in &self.rows {
            out.push_str(&format!(
                "{},{rated:.1},{measured:.1}\n",
                metric.replace(',', ";")
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::arr(self.rows.iter().map(|(metric, rated, measured)| {
            Json::obj([
                ("metric", Json::str(metric)),
                ("rated", Json::f64(*rated)),
                ("measured", Json::f64(*measured)),
            ])
        }))
    }
}

fn fresh_device(seed: u64) -> SsdDevice {
    SsdDevice::new(SsdSpec::table1(), FirmwareProfile::experimental(), seed)
}

/// Closed-loop driver: keeps `depth` commands outstanding for
/// `horizon` of simulated time; returns completions.
fn closed_loop<F: FnMut(u64) -> NvmeCommand>(
    device: &mut SsdDevice,
    depth: usize,
    horizon: SimTime,
    mut next_cmd: F,
) -> u64 {
    let mut inflight = vec![SimTime::ZERO; depth];
    let mut completed = 0u64;
    let mut n = 0u64;
    loop {
        let (idx, &now) = inflight
            .iter()
            .enumerate()
            .min_by_key(|&(_, t)| *t)
            .expect("non-empty");
        if now >= horizon {
            return completed;
        }
        let info = device.submit(now, next_cmd(n));
        n += 1;
        inflight[idx] = info.completes_at;
        completed += 1;
    }
}

/// Table I: measure the device model against its data sheet.
///
/// * QD1 4 KiB random-read latency (the §IV-A "25 µs" figure),
/// * 4 KiB random read at QD32 → IOPS,
/// * 4 KiB random write at QD4, sustained → IOPS,
/// * 128 KiB sequential read at QD8 → MB/s,
/// * 128 KiB sequential write at QD8 → MB/s.
pub fn table1(seed: u64) -> Table1Result {
    let spec = SsdSpec::table1();
    let mut rows = Vec::new();

    // QD1 random-read latency.
    {
        let mut dev = fresh_device(seed);
        let mut now = SimTime::ZERO;
        let mut total_us = 0.0;
        let n = 20_000u64;
        for i in 0..n {
            let lba = (i * 48_271) % 10_000_000;
            let info = dev.submit(now, NvmeCommand::read(lba, 4096));
            total_us += info.latency_since(now).as_micros_f64();
            now = info.completes_at + SimDuration::micros(5);
        }
        rows.push(("QD1 random read (us)".to_owned(), 25.0, total_us / n as f64));
    }

    // Random read IOPS at QD32.
    {
        let mut dev = fresh_device(seed + 1);
        let horizon = SimTime::ZERO + SimDuration::millis(250);
        let done = closed_loop(&mut dev, 32, horizon, |n| {
            NvmeCommand::read((n * 7_919) % 10_000_000, 4096)
        });
        rows.push((
            "random read (IOPS)".to_owned(),
            spec.random_read_iops as f64,
            done as f64 / 0.25,
        ));
    }

    // Random write IOPS, sustained.
    {
        let mut dev = fresh_device(seed + 2);
        let horizon = SimTime::ZERO + SimDuration::millis(400);
        let done = closed_loop(&mut dev, 4, horizon, |n| {
            NvmeCommand::write((n * 104_729) % 10_000_000, 4096)
        });
        rows.push((
            "random write (IOPS)".to_owned(),
            spec.random_write_iops as f64,
            done as f64 / 0.4,
        ));
    }

    // Sequential read MB/s.
    {
        let mut dev = fresh_device(seed + 3);
        let horizon = SimTime::ZERO + SimDuration::millis(250);
        let done = closed_loop(&mut dev, 8, horizon, |n| {
            NvmeCommand::read(n * 32 % 10_000_000, 131_072)
        });
        rows.push((
            "sequential read (MB/s)".to_owned(),
            spec.seq_read_mbps as f64,
            done as f64 * 131_072.0 / 0.25 / 1e6,
        ));
    }

    // Sequential write MB/s.
    {
        let mut dev = fresh_device(seed + 4);
        let horizon = SimTime::ZERO + SimDuration::millis(250);
        let done = closed_loop(&mut dev, 8, horizon, |n| {
            NvmeCommand::write(n * 32 % 10_000_000, 131_072)
        });
        rows.push((
            "sequential write (MB/s)".to_owned(),
            spec.seq_write_mbps as f64,
            done as f64 * 131_072.0 / 0.25 / 1e6,
        ));
    }

    Table1Result { rows }
}

/// The Table II matrix as structured data (what [`table2`] renders).
#[derive(Clone, Debug)]
pub struct Table2Matrix {
    /// Per row: `(label, SSDs per physical core, IRQs per logical
    /// core, fio threads per logical core, fio threads per run,
    /// runs)`.
    pub rows: Vec<(String, usize, usize, usize, usize, usize)>,
}

/// Table II as a first-class result object.
pub fn table2_matrix() -> Table2Matrix {
    let topo = afa_host::CpuTopology::xeon_e5_2690_v2_dual();
    let rows = Table2Row::ALL
        .into_iter()
        .map(|row| {
            let (_, geometry) = &row.run_geometries()[0];
            let fio_per_logical = geometry.threads_per_logical_cpu();
            (
                row.label().to_owned(),
                geometry.ssds_per_physical_core(&topo),
                // With pinned vectors, active IRQ handlers per logical
                // core equal the fio threads per logical core.
                fio_per_logical,
                fio_per_logical,
                row.threads_per_run(),
                row.runs(),
            )
        })
        .collect();
    Table2Matrix { rows }
}

impl ExperimentResult for Table2Matrix {
    fn to_table(&self) -> String {
        table2()
    }

    fn to_csv(&self) -> String {
        let mut out =
            String::from("row,ssds_per_core,irqs_per_logical,fio_per_logical,fio_per_run,runs\n");
        for (label, ssds, irqs, fio, threads, runs) in &self.rows {
            out.push_str(&format!(
                "{},{ssds},{irqs},{fio},{threads},{runs}\n",
                label.replace(',', ";")
            ));
        }
        out
    }

    fn to_json(&self) -> Json {
        Json::arr(
            self.rows
                .iter()
                .map(|(label, ssds, irqs, fio, threads, runs)| {
                    Json::obj([
                        ("row", Json::str(label)),
                        ("ssds_per_core", Json::u64(*ssds as u64)),
                        ("irqs_per_logical_core", Json::u64(*irqs as u64)),
                        ("fio_per_logical_core", Json::u64(*fio as u64)),
                        ("fio_per_run", Json::u64(*threads as u64)),
                        ("runs", Json::u64(*runs as u64)),
                    ])
                }),
        )
    }
}

/// Table II: the Fig. 13 run matrix, generated from the geometry code
/// itself (so the table can never drift from what the runs do).
pub fn table2() -> String {
    let topo = afa_host::CpuTopology::xeon_e5_2690_v2_dual();
    let mut out = String::from("Table II — varying number of SSDs / CPU core\n");
    out.push_str(&format!(
        "{:<12} {:>14} {:>18} {:>18} {:>16} {:>10}\n",
        "Fig #", "SSDs/phys core", "IRQs/logical core", "fio/logical core", "fio in system", "runs"
    ));
    for row in Table2Row::ALL {
        let (_, geometry) = &row.run_geometries()[0];
        let fio_per_logical = geometry.threads_per_logical_cpu();
        let ssds_per_core = geometry.ssds_per_physical_core(&topo);
        out.push_str(&format!(
            "{:<12} {:>14} {:>18} {:>18} {:>16} {:>10}\n",
            row.label(),
            ssds_per_core,
            // With pinned vectors, active IRQ handlers per logical
            // core equal the fio threads per logical core.
            fio_per_logical,
            fio_per_logical,
            row.threads_per_run(),
            row.runs()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_measures_close_to_rated() {
        let t = table1(42);
        assert_eq!(t.rows.len(), 5);
        for (metric, rated, measured) in &t.rows {
            let ratio = measured / rated;
            assert!(
                (0.75..1.30).contains(&ratio),
                "{metric}: rated {rated}, measured {measured} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn table1_lookup_and_render() {
        let t = table1(1);
        assert!(t.measured("random read (IOPS)").unwrap() > 100_000.0);
        assert!(t.measured("nonexistent").is_none());
        let text = t.to_table();
        assert!(text.contains("sequential write"));
        assert!(text.contains("ratio"));
    }

    #[test]
    fn table2_matches_paper_matrix() {
        let text = table2();
        assert!(text.contains("Fig. 13(a)"));
        assert!(text.contains("Fig. 13(d)"));
        // Row (a): 4 SSDs/core, 2 fio per logical core, 64 threads, 1 run.
        let row_a = text.lines().find(|l| l.contains("13(a)")).unwrap();
        assert!(row_a.contains('4'));
        assert!(row_a.contains("64"));
        // Row (d): 1 thread, 64 runs.
        let row_d = text.lines().find(|l| l.contains("13(d)")).unwrap();
        assert!(row_d.trim_end().ends_with("64"));
    }
}
