//! The parallel SSD-profiling framework of §V / §VI.
//!
//! The paper argues its measurement environment doubles as a tool:
//! profiling tens of SSDs in parallel on one host finishes "the same
//! task x10 or even x100 faster" than serial characterization, and
//! makes it "cost-effective to detect and root cause latency outliers
//! from daily SSD firmware builds". [`ParallelProfiler`] packages
//! exactly that workflow: run the tuned-kernel workload over N
//! devices at once, return per-device profiles, and flag outliers.

use afa_sim::SimDuration;
use afa_stats::{LatencyProfile, NinesPoint};

use crate::config::AfaConfig;
use crate::system::AfaSystem;
use crate::tuning::TuningStage;

/// One device's profiling verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceVerdict {
    /// Device index.
    pub device: usize,
    /// The measured profile.
    pub profile: LatencyProfile,
    /// Which metrics deviated more than the threshold from the fleet
    /// mean (empty = healthy).
    pub outlier_metrics: Vec<NinesPoint>,
}

impl DeviceVerdict {
    /// Whether the device passed (no outlier metrics).
    pub fn is_healthy(&self) -> bool {
        self.outlier_metrics.is_empty()
    }
}

/// Result of one profiling batch.
#[derive(Clone, Debug)]
pub struct ProfileBatch {
    /// Per-device verdicts.
    pub verdicts: Vec<DeviceVerdict>,
    /// The speed-up over profiling the same devices one at a time
    /// (= device count at low CPU utilization; §IV-G validates this).
    pub speedup: f64,
}

impl ProfileBatch {
    /// Devices flagged as outliers.
    pub fn outliers(&self) -> Vec<usize> {
        self.verdicts
            .iter()
            .filter(|v| !v.is_healthy())
            .map(|v| v.device)
            .collect()
    }

    /// Renders the batch report.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "Parallel profiling batch — {} devices, x{:.0} faster than serial\n",
            self.verdicts.len(),
            self.speedup
        );
        out.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>10} {:>8}\n",
            "device", "avg(us)", "p99999(us)", "max(us)", "healthy"
        ));
        for v in &self.verdicts {
            out.push_str(&format!(
                "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>8}\n",
                v.device,
                v.profile.get_micros(NinesPoint::Average),
                v.profile.get_micros(NinesPoint::Nines5),
                v.profile.get_micros(NinesPoint::Max),
                if v.is_healthy() { "yes" } else { "NO" }
            ));
        }
        out
    }
}

/// Configuration for a profiling batch.
#[derive(Clone, Debug)]
pub struct ParallelProfiler {
    devices: usize,
    runtime: SimDuration,
    seed: u64,
    /// A metric is an outlier if it exceeds
    /// `fleet mean + threshold_sigmas × fleet std` (and is at least
    /// 10 % above the mean, to avoid flagging a zero-variance fleet).
    threshold_sigmas: f64,
}

impl ParallelProfiler {
    /// Profiles `devices` SSDs for `runtime` each.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is 0 or > 64.
    pub fn new(devices: usize, runtime: SimDuration, seed: u64) -> Self {
        assert!((1..=64).contains(&devices), "1..=64 devices");
        ParallelProfiler {
            devices,
            runtime,
            seed,
            threshold_sigmas: 3.0,
        }
    }

    /// Adjusts the outlier threshold (standard deviations above the
    /// fleet mean).
    pub fn threshold_sigmas(mut self, sigmas: f64) -> Self {
        self.threshold_sigmas = sigmas;
        self
    }

    /// Runs the batch under the fully tuned kernel (the configuration
    /// the paper validates for parallel profiling in §IV-G).
    pub fn run(&self) -> ProfileBatch {
        let config = AfaConfig::paper(TuningStage::IrqAffinity)
            .with_ssds(self.devices)
            .with_runtime(self.runtime)
            .with_seed(self.seed);
        let result = AfaSystem::run(&config);
        let profiles: Vec<LatencyProfile> = result.reports.iter().map(|r| r.profile()).collect();
        self.judge(profiles)
    }

    /// Applies outlier detection to a set of measured profiles
    /// (exposed so firmware-regression tests can feed stored data).
    ///
    /// Detection is robust (median + MAD rather than mean + σ): a
    /// single extreme lemon inflates the fleet's standard deviation
    /// enough to hide itself from a mean-based test, but cannot move
    /// the median.
    pub fn judge(&self, profiles: Vec<LatencyProfile>) -> ProfileBatch {
        let mut fleet: Vec<(NinesPoint, f64, f64)> = Vec::new();
        for point in NinesPoint::ALL {
            let mut values: Vec<f64> = profiles.iter().map(|p| p.get(point) as f64).collect();
            values.sort_by(|a, b| a.total_cmp(b));
            let median = values[values.len() / 2];
            let mut deviations: Vec<f64> = values.iter().map(|v| (v - median).abs()).collect();
            deviations.sort_by(|a, b| a.total_cmp(b));
            // 1.4826 × MAD estimates σ for normal data.
            let robust_sigma = 1.4826 * deviations[deviations.len() / 2];
            fleet.push((point, median, robust_sigma));
        }
        let verdicts = profiles
            .into_iter()
            .enumerate()
            .map(|(device, profile)| {
                let outlier_metrics = fleet
                    .iter()
                    .filter(|&&(point, median, sigma)| {
                        let v = profile.get(point) as f64;
                        // Guard against zero-spread fleets: require a
                        // 20 % relative excess as well.
                        v > median + self.threshold_sigmas * sigma && v > median * 1.2
                    })
                    .map(|&(point, _, _)| point)
                    .collect();
                DeviceVerdict {
                    device,
                    profile,
                    outlier_metrics,
                }
            })
            .collect();
        ProfileBatch {
            verdicts,
            speedup: self.devices as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_stats::LatencyProfile;

    fn profile(base: u64) -> LatencyProfile {
        LatencyProfile::from_values([base; 7], 100_000)
    }

    #[test]
    fn healthy_fleet_has_no_outliers() {
        let profiler = ParallelProfiler::new(8, SimDuration::millis(100), 42);
        let batch = profiler.judge((0..8).map(|i| profile(30_000 + i * 100)).collect());
        assert!(batch.outliers().is_empty(), "{:?}", batch.outliers());
        assert_eq!(batch.speedup, 8.0);
    }

    #[test]
    fn bad_device_is_flagged() {
        let profiler = ParallelProfiler::new(8, SimDuration::millis(100), 42).threshold_sigmas(2.0);
        let mut profiles: Vec<LatencyProfile> = (0..7).map(|i| profile(30_000 + i * 50)).collect();
        profiles.push(profile(300_000)); // a lemon
        let batch = profiler.judge(profiles);
        assert_eq!(batch.outliers(), vec![7]);
        assert!(!batch.verdicts[7].is_healthy());
        assert!(batch.to_table().contains("NO"));
    }

    #[test]
    fn live_batch_profiles_devices() {
        let batch = ParallelProfiler::new(4, SimDuration::millis(60), 42).run();
        assert_eq!(batch.verdicts.len(), 4);
        for v in &batch.verdicts {
            assert!(v.profile.samples() > 500);
        }
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_devices_panics() {
        let _ = ParallelProfiler::new(0, SimDuration::millis(1), 1);
    }
}
