//! Calibration constants and the paper's reported values.
//!
//! The simulator cannot (and does not try to) match the paper's
//! absolute numbers — its substrate is a model, not the authors'
//! testbed. What must match is the *shape*: the ordering of the
//! configurations, the approximate improvement factors, and where the
//! tail comes from. This module records the paper's reported values so
//! the experiment harness can print paper-vs-measured side by side,
//! plus sanity expectations ("bands") used by integration tests.

/// Values the paper states explicitly, used as reference columns in
/// the harness output and `EXPERIMENTS.md`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperReference {
    /// §IV-A: a standalone NVMe read is designed to take ~25 µs.
    pub standalone_read_us: f64,
    /// §IV-A: through the PCIe switches it becomes ~30 µs (+5 µs).
    pub clustered_read_us: f64,
    /// §IV-A / Fig. 6: worst-case latency under the default config.
    pub default_max_us: f64,
    /// §IV-B / Fig. 7: worst-case after `chrt`.
    pub chrt_max_us: f64,
    /// §IV-E / Fig. 11: worst-case with experimental firmware.
    pub exp_firmware_max_us: f64,
    /// §IV-F / Fig. 12: std of the per-SSD max, default config.
    pub default_max_std: f64,
    /// §IV-F / Fig. 12: std of the per-SSD max, fully tuned kernel.
    pub tuned_max_std: f64,
    /// Abstract: mean of max improves by this factor with tuning.
    pub mean_max_improvement: f64,
    /// Abstract: std of max improves by this factor with tuning.
    pub std_max_improvement: f64,
    /// §IV-G: aggregate throughput of 64 QD1 fio threads (GB/s).
    pub aggregate_qd1_gbps: f64,
    /// §III-A: uplink raw bandwidth (GB/s).
    pub uplink_gbps: f64,
    /// §III-A: aggregate device sequential-read bandwidth (GB/s).
    pub devices_gbps: f64,
}

/// The paper's reference values.
pub const PAPER: PaperReference = PaperReference {
    standalone_read_us: 25.0,
    clustered_read_us: 30.0,
    default_max_us: 5_000.0,
    chrt_max_us: 600.0,
    exp_firmware_max_us: 90.0,
    default_max_std: 1_644.0,
    tuned_max_std: 4.0,
    mean_max_improvement: 8.0,
    std_max_improvement: 400.0,
    aggregate_qd1_gbps: 8.3,
    uplink_gbps: 16.0,
    devices_gbps: 108.8,
};

/// Shape expectations an acceptable reproduction satisfies; used by
/// integration tests. Bands are intentionally wide — they assert the
/// phenomenon, not the third digit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShapeBand {
    /// Minimum acceptable value.
    pub min: f64,
    /// Maximum acceptable value.
    pub max: f64,
}

impl ShapeBand {
    /// Whether `x` lies in the band.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.min && x <= self.max
    }
}

/// Mean tuned (irq-stage) latency, µs.
pub const BAND_TUNED_MEAN_US: ShapeBand = ShapeBand {
    min: 27.0,
    max: 40.0,
};
/// Worst-case latency under the default config, µs (paper: ~5 000).
pub const BAND_DEFAULT_MAX_US: ShapeBand = ShapeBand {
    min: 1_000.0,
    max: 12_000.0,
};
/// Worst-case latency after `chrt`, µs (paper: ~600).
pub const BAND_CHRT_MAX_US: ShapeBand = ShapeBand {
    min: 200.0,
    max: 1_500.0,
};
/// Worst-case latency with experimental firmware, µs (paper: ~90).
pub const BAND_EXP_FW_MAX_US: ShapeBand = ShapeBand {
    min: 40.0,
    max: 150.0,
};
/// Improvement factor of mean(max) from default → irq (paper: ×8).
pub const BAND_MEAN_MAX_IMPROVEMENT: ShapeBand = ShapeBand {
    min: 2.5,
    max: 40.0,
};
/// Improvement factor of std(max) from default → irq (paper: ×400).
pub const BAND_STD_MAX_IMPROVEMENT: ShapeBand = ShapeBand {
    min: 20.0,
    max: 100_000.0,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberately guards the const table
    fn paper_reference_is_self_consistent() {
        assert!(PAPER.standalone_read_us < PAPER.clustered_read_us);
        assert!(PAPER.chrt_max_us < PAPER.default_max_us);
        assert!(PAPER.exp_firmware_max_us < PAPER.chrt_max_us);
        assert!(PAPER.aggregate_qd1_gbps < PAPER.uplink_gbps);
        assert!(PAPER.uplink_gbps < PAPER.devices_gbps);
        let claimed_std_ratio = PAPER.default_max_std / PAPER.tuned_max_std;
        assert!(
            (claimed_std_ratio - PAPER.std_max_improvement).abs() < 15.0,
            "1644/4 ≈ 411 ≈ the claimed x400"
        );
    }

    #[test]
    fn bands_contain_paper_values() {
        assert!(BAND_DEFAULT_MAX_US.contains(PAPER.default_max_us));
        assert!(BAND_CHRT_MAX_US.contains(PAPER.chrt_max_us));
        assert!(BAND_EXP_FW_MAX_US.contains(PAPER.exp_firmware_max_us));
        assert!(BAND_MEAN_MAX_IMPROVEMENT.contains(PAPER.mean_max_improvement));
        assert!(BAND_STD_MAX_IMPROVEMENT.contains(PAPER.std_max_improvement));
        assert!(BAND_TUNED_MEAN_US.contains(PAPER.clustered_read_us));
    }

    #[test]
    fn band_membership() {
        let b = ShapeBand { min: 1.0, max: 2.0 };
        assert!(b.contains(1.0));
        assert!(b.contains(2.0));
        assert!(!b.contains(0.99));
        assert!(!b.contains(2.01));
    }
}
