//! The whole-array simulation: jobs × host × fabric × devices.
//!
//! One I/O's life, matching §III of the paper:
//!
//! 1. the fio thread (running on its pinned CPU) pays the submit
//!    syscall cost, then rings the device's doorbell — the command
//!    crosses the fabric downstream,
//! 2. the device serves the read (controller + flash + possible SMART
//!    stall), and the data + completion + MSI-X cross the fabric
//!    upstream,
//! 3. the host routes the interrupt to the vector's effective CPU,
//!    runs the handler, IPIs the submitter's CPU if remote,
//! 4. the scheduler wakes the fio thread (CFS tick-granularity
//!    preemption, RT immediate preemption, C-state exit, …),
//! 5. the thread pays the completion/reap cost, records the latency,
//!    and issues the next I/O.
//!
//! Steps 1 and 5 execute inline (the thread holds the CPU); the device
//! completion and the host-side interrupt are the only simulation
//! events, so a run costs ~2 events per I/O plus background-workload
//! arrivals. Splitting the completion into two events is not an
//! optimization but a correctness requirement: shared fabric links are
//! FIFO resources, so they must be reserved in global time order — a
//! device stalled in a SMART window must not retroactively occupy the
//! uplink for everyone else.

use afa_host::{BackgroundConfig, CpuTopology, HostModel};
use afa_pcie::{FabricStats, PcieFabric};
use afa_sim::{Scheduler, SimDuration, SimRng, SimTime, Simulation, World};
use afa_ssd::{DeviceStats, FtlStats, NvmeCommand, SsdDevice, SsdSpec};
use afa_workload::{IoEngine, JobReport, JobSpec, JobState, RwPattern};

use crate::geometry::CpuSsdGeometry;
use crate::tuning::{Tuning, TuningStage};

/// CPU cost of the submit path (io_submit syscall + SQE build +
/// doorbell write).
const SUBMIT_COST: SimDuration = SimDuration::nanos(1_800);
/// CPU cost of the completion path (reap + io_getevents return).
const COMPLETE_COST: SimDuration = SimDuration::nanos(1_300);
/// Extra completion-path latency when the fio thread's socket differs
/// from the socket owning the AFA's PCIe uplink (remote-node DMA +
/// cross-interconnect MSI).
const NUMA_CROSS_SOCKET: SimDuration = SimDuration::nanos(900);

/// NVMe interrupt-coalescing parameters (the standard mitigation for
/// the §I "interrupt storm" concern): the device holds completions
/// until `max_batch` have accumulated or `timeout` has passed since
/// the first, then raises a single MSI for the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrqCoalescing {
    /// Fire as soon as this many completions are pending.
    pub max_batch: u32,
    /// Fire this long after the first pending completion.
    pub timeout: SimDuration,
}

/// Everything needed to run one experiment.
#[derive(Clone, Debug)]
pub struct AfaConfig {
    /// CPU↔SSD mapping.
    pub geometry: CpuSsdGeometry,
    /// Tuning stage (kernel config + fio class + firmware).
    pub tuning: Tuning,
    /// Background daemon workload.
    pub background: BackgroundConfig,
    /// Per-job run time.
    pub runtime: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Enable per-sample latency logs on every job (Fig. 10).
    pub log_latency: bool,
    /// Completion model.
    pub engine: IoEngine,
    /// I/O mix (the paper uses 4 KiB random reads).
    pub rw: RwPattern,
    /// Block size in bytes (the paper uses 4 KiB).
    pub block_size: u32,
    /// Queue depth per job (the paper uses 1).
    pub iodepth: u32,
    /// Firmware override (the housekeeping-protocol ablation sweeps
    /// custom SMART policies); `None` uses the tuning stage's
    /// firmware.
    pub firmware_override: Option<afa_ssd::FirmwareProfile>,
    /// Timer-tick rate override in Hz (tick ablation).
    pub tick_override: Option<u32>,
    /// Idle-policy override (C-state ablation).
    pub idle_override: Option<afa_host::IdlePolicy>,
    /// Per-job issue-rate cap (fio's `rate_iops`); `None` = unpaced.
    pub rate_iops: Option<u64>,
    /// Override of the kernel's `rcu_nocbs` set (RCU ablation).
    pub rcu_override: Option<afa_host::CpuSet>,
    /// Wholesale kernel-config replacement (future-work prototypes).
    pub kernel_override: Option<afa_host::KernelConfig>,
    /// NVMe interrupt coalescing; `None` = one MSI per completion
    /// (the paper's devices).
    pub irq_coalescing: Option<IrqCoalescing>,
    /// Explicit job list (e.g. from [`afa_workload::parse_jobfile`]);
    /// replaces the per-device jobs the config would otherwise build.
    /// Each spec must target a distinct device; unpinned jobs get the
    /// paper's Fig. 5 CPU for their device.
    pub jobs_override: Option<Vec<JobSpec>>,
    /// Record blktrace-style stage timestamps for the first N I/Os
    /// (0 = off); results land in [`RunResult::traces`].
    pub trace_ios: usize,
    /// Attribute every nanosecond of completion latency to a cause
    /// (the simulated LTTng analysis of §IV-B/§IV-D); results land in
    /// [`RunResult::causes`].
    pub attribute_causes: bool,
    /// Socket the AFA's PCIe uplink attaches to (the paper's CPU2 =
    /// socket 1, §III-A). fio threads on the other socket pay a
    /// cross-socket (NUMA) penalty on the completion path.
    pub afa_socket: u16,
}

impl AfaConfig {
    /// The paper's §III setup at a given tuning stage: 64 SSDs, the
    /// Fig. 5 geometry, CentOS-7-like background noise, 120 s runs.
    pub fn paper(stage: TuningStage) -> Self {
        AfaConfig {
            geometry: CpuSsdGeometry::paper(64),
            tuning: Tuning::new(stage),
            background: BackgroundConfig::centos7_desktop(),
            runtime: SimDuration::secs(120),
            seed: 42,
            log_latency: false,
            engine: IoEngine::Libaio,
            rw: RwPattern::RandRead,
            block_size: 4096,
            iodepth: 1,
            firmware_override: None,
            tick_override: None,
            idle_override: None,
            rate_iops: None,
            rcu_override: None,
            kernel_override: None,
            irq_coalescing: None,
            jobs_override: None,
            trace_ios: 0,
            attribute_causes: false,
            afa_socket: 1,
        }
    }

    /// Caps each job's issue rate (fio's `rate_iops`).
    pub fn with_rate_iops(mut self, iops: u64) -> Self {
        self.rate_iops = Some(iops);
        self
    }

    /// Records blktrace-style stage timestamps for the first `n` I/Os.
    pub fn with_io_tracing(mut self, n: usize) -> Self {
        self.trace_ios = n;
        self
    }

    /// Enables NVMe interrupt coalescing on every device.
    pub fn with_irq_coalescing(mut self, coalescing: IrqCoalescing) -> Self {
        self.irq_coalescing = Some(coalescing);
        self
    }

    /// Runs an explicit job list (e.g. a parsed fio jobfile) instead
    /// of the config-generated per-device jobs. The geometry is
    /// derived from the jobs' `cpus_allowed` pinning.
    ///
    /// # Panics
    ///
    /// [`AfaSystem::run`] panics if two jobs target the same device or
    /// a job addresses a device beyond 64.
    pub fn with_jobs(mut self, jobs: Vec<JobSpec>) -> Self {
        self.jobs_override = Some(jobs);
        self
    }

    /// Enables per-cause latency attribution.
    pub fn with_cause_attribution(mut self, enable: bool) -> Self {
        self.attribute_causes = enable;
        self
    }

    /// Replaces the geometry with the paper mapping over `n` SSDs.
    pub fn with_ssds(mut self, n: usize) -> Self {
        self.geometry = CpuSsdGeometry::paper(n);
        self
    }

    /// Sets the per-job run time.
    pub fn with_runtime(mut self, runtime: SimDuration) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an explicit geometry (Table II rows).
    pub fn with_geometry(mut self, geometry: CpuSsdGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Sets the background workload.
    pub fn with_background(mut self, background: BackgroundConfig) -> Self {
        self.background = background;
        self
    }

    /// Enables per-sample latency logging.
    pub fn with_logging(mut self, log: bool) -> Self {
        self.log_latency = log;
        self
    }

    /// Sets the completion model.
    pub fn with_engine(mut self, engine: IoEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Installs custom firmware on every device (housekeeping
    /// ablations).
    pub fn with_firmware(mut self, firmware: afa_ssd::FirmwareProfile) -> Self {
        self.firmware_override = Some(firmware);
        self
    }

    /// Sets the I/O mix.
    pub fn with_rw(mut self, rw: RwPattern) -> Self {
        self.rw = rw;
        self
    }
}

/// The outcome of one run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-device job reports, indexed like the geometry.
    pub reports: Vec<JobReport>,
    /// Per-cause latency attribution, when
    /// [`AfaConfig::attribute_causes`] was set.
    pub causes: Option<afa_sim::trace::CauseAccumulator>,
    /// blktrace-style stage traces, when [`AfaConfig::trace_ios`] was
    /// non-zero.
    pub traces: Option<crate::blktrace::TraceRecorder>,
    /// Simulated time at which the last completion landed.
    pub elapsed: SimTime,
    /// Simulation events processed by the run (≈ 2–3 per I/O).
    pub events_processed: u64,
    /// Events that were scheduled into the past and clamped (0 for a
    /// healthy model; see [`afa_sim::Simulation::clamped_past_schedules`]).
    pub clamped_past_schedules: u64,
    /// The final host model (scheduler/IRQ counters via
    /// [`HostModel::stats`]).
    pub host: HostModel,
    /// Fabric counters.
    pub fabric_stats: FabricStats,
    /// Per-device counters.
    pub device_stats: Vec<(DeviceStats, FtlStats)>,
}

impl RunResult {
    /// Aggregate IOPS across all devices.
    pub fn aggregate_iops(&self, runtime: SimDuration) -> f64 {
        let secs = runtime.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.reports.iter().map(|r| r.completed()).sum::<u64>() as f64 / secs
    }

    /// Aggregate read throughput in GB/s across all devices.
    pub fn aggregate_gbps(&self, runtime: SimDuration) -> f64 {
        let secs = runtime.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.reports
            .iter()
            .map(|r| r.bytes_transferred())
            .sum::<u64>() as f64
            / secs
            / 1e9
    }
}

/// The AFA system simulator.
pub struct AfaSystem;

impl AfaSystem {
    /// Runs one experiment to completion and returns the results.
    pub fn run(config: &AfaConfig) -> RunResult {
        // Resolve the geometry: explicit jobs derive it from their
        // pinning; otherwise the config's geometry stands.
        let geometry = match &config.jobs_override {
            None => config.geometry.clone(),
            Some(specs) => {
                assert!(!specs.is_empty(), "job list must not be empty");
                let n = 1 + specs.iter().map(|s| s.device()).max().expect("non-empty");
                assert!(n <= 64, "jobfile addresses a device beyond 64");
                let mut seen = vec![false; n];
                for spec in specs {
                    assert!(
                        !seen[spec.device()],
                        "two jobs target device {}",
                        spec.device()
                    );
                    seen[spec.device()] = true;
                }
                let paper = CpuSsdGeometry::paper(n);
                let mut assignment = paper.assignment().to_vec();
                for spec in specs {
                    if let Some(cpu) = spec.pinned_cpu() {
                        assignment[spec.device()] = cpu;
                    }
                }
                CpuSsdGeometry::with_assignment(assignment)
            }
        };
        let n = geometry.ssds();
        assert!(n > 0, "need at least one SSD");

        let topo = CpuTopology::xeon_e5_2690_v2_dual();
        let io_set = geometry.io_cpu_set();
        let mut kernel = config
            .kernel_override
            .unwrap_or_else(|| config.tuning.kernel_config(io_set));
        if let Some(hz) = config.tick_override {
            kernel.tick_hz = hz;
        }
        if let Some(idle) = config.idle_override {
            kernel.idle = idle;
        }
        if let Some(rcu) = config.rcu_override {
            kernel.rcu_nocbs = rcu;
        }
        let mut host = HostModel::new(topo, kernel, config.background, config.seed);
        host.init_vectors(geometry.assignment().to_vec(), config.seed);

        let fabric = PcieFabric::paper_single_host(n);
        let firmware = config
            .firmware_override
            .clone()
            .unwrap_or_else(|| config.tuning.firmware());
        let devices: Vec<SsdDevice> = (0..n)
            .map(|d| {
                SsdDevice::new(
                    SsdSpec::table1(),
                    firmware.clone(),
                    config.seed ^ (d as u64).wrapping_mul(0x9E37_79B9),
                )
            })
            .collect();

        let policy = config.tuning.fio_policy();
        let specs: Vec<JobSpec> = match &config.jobs_override {
            Some(specs) => specs.clone(),
            None => (0..n)
                .map(|d| {
                    let mut spec = JobSpec::paper_default(d);
                    spec.rw(config.rw)
                        .block_size_bytes(config.block_size)
                        .iodepth_n(config.iodepth)
                        .runtime(config.runtime)
                        .cpus_allowed(geometry.cpu_of_ssd(d))
                        .sched(policy)
                        .ioengine(config.engine)
                        .log_latency(config.log_latency);
                    if let Some(iops) = config.rate_iops {
                        spec.rate_iops_cap(iops);
                    }
                    spec.clone()
                })
                .collect(),
        };
        let jobs: Vec<JobState> = specs
            .into_iter()
            .enumerate()
            .map(|(j, spec)| {
                JobState::new(
                    spec,
                    SimTime::ZERO,
                    SimRng::from_seed_and_stream(config.seed, 0x10_000 + j as u64),
                )
            })
            .collect();

        let horizon = jobs
            .iter()
            .map(JobState::deadline)
            .fold(SimTime::ZERO, SimTime::max)
            + SimDuration::millis(50);
        let world = SysWorld {
            host,
            fabric,
            devices,
            jobs,
            geometry,
            horizon,
            afa_socket: config.afa_socket,
            causes: config
                .attribute_causes
                .then(afa_sim::trace::CauseAccumulator::new),
            tracer: (config.trace_ios > 0)
                .then(|| crate::blktrace::TraceRecorder::new(config.trace_ios)),
            next_allowed: vec![SimTime::ZERO; n],
            coalescing: config.irq_coalescing,
            pending_cq: vec![Vec::new(); n],
            cq_scratch: Vec::new(),
            meta_slab: Vec::with_capacity(2 * n),
            meta_free: Vec::with_capacity(2 * n),
        };
        // Pre-size the queue: each job keeps ~2 events in flight
        // (device completion + host interrupt), plus background
        // arrivals and coalescing timers — 4 × jobs covers the lot
        // without reallocation.
        let mut sim = Simulation::with_capacity(world, 4 * n);
        // fio staggers thread start-up by a few µs per thread; the
        // stagger also prevents an artificial phase-lock between
        // perfectly symmetric QD1 loops.
        for job in 0..n {
            sim.schedule_at(
                SimTime::ZERO + SimDuration::micros(job as u64 * 13 % 97),
                Event::Issue { job },
            );
        }
        sim.schedule_at(SimTime::ZERO, Event::BgArrival);
        sim.run_to_completion();

        let elapsed = sim.now();
        let events_processed = sim.events_processed();
        let clamped_past_schedules = sim.clamped_past_schedules();
        let world = sim.into_world();
        let fabric_stats = world.fabric.stats();
        let device_stats = world
            .devices
            .iter()
            .map(|d| (d.stats(), d.ftl_stats()))
            .collect();
        RunResult {
            reports: world.jobs.into_iter().map(JobState::into_report).collect(),
            causes: world.causes,
            traces: world.tracer,
            elapsed,
            events_processed,
            clamped_past_schedules,
            host: world.host,
            fabric_stats,
            device_stats,
        }
    }
}

/// Slab handle for an I/O's [`DeviceMeta`] (see [`SysWorld::meta_slab`]).
type MetaId = u32;

/// Simulation events. Kept small (32 bytes): the queue copies events
/// through its wheel buckets on every push/cascade/pop, so the cold
/// per-I/O latency breakdown lives in an indexed slab on the world
/// ([`SysWorld::meta_slab`]) and events carry only its [`MetaId`].
#[derive(Debug)]
enum Event {
    /// Job's thread is running and ready to issue.
    Issue { job: usize },
    /// The device posts the completion; the upstream fabric transfer
    /// is reserved *now* so shared-link FIFOs are used in global time
    /// order (a stalled device must not block other devices' data).
    DeviceDone {
        job: usize,
        issued_at: SimTime,
        meta: MetaId,
    },
    /// The completion interrupt reaches the host.
    Completion {
        job: usize,
        issued_at: SimTime,
        meta: MetaId,
        fabric_up_from: SimTime,
    },
    /// A coalesced MSI fires for the device's pending completions.
    Msi { device: usize },
    /// Background workload arrival.
    BgArrival,
}

/// Device-side latency breakdown carried along the completion path
/// for cause attribution.
#[derive(Clone, Copy, Debug)]
struct DeviceMeta {
    service: SimDuration,
    queue_wait: SimDuration,
    housekeeping: SimDuration,
    fabric_down: SimDuration,
    /// Trace id when this I/O is inside the blktrace window.
    trace_id: Option<usize>,
}

struct SysWorld {
    host: HostModel,
    fabric: PcieFabric,
    devices: Vec<SsdDevice>,
    jobs: Vec<JobState>,
    geometry: CpuSsdGeometry,
    horizon: SimTime,
    afa_socket: u16,
    causes: Option<afa_sim::trace::CauseAccumulator>,
    tracer: Option<crate::blktrace::TraceRecorder>,
    /// Per-job earliest next issue instant (fio's `rate_iops` pacing).
    next_allowed: Vec<SimTime>,
    coalescing: Option<IrqCoalescing>,
    /// Per-device completions awaiting a coalesced MSI.
    pending_cq: Vec<Vec<PendingCqe>>,
    /// Reusable buffer the MSI handler swaps a device's pending queue
    /// into, so reaping a batch never allocates.
    cq_scratch: Vec<PendingCqe>,
    /// In-flight [`DeviceMeta`] payloads, indexed by [`MetaId`];
    /// entries recycle through `meta_free`, so after warm-up the
    /// per-I/O path allocates nothing.
    meta_slab: Vec<DeviceMeta>,
    meta_free: Vec<MetaId>,
}

/// A completion whose data has arrived but whose MSI is being held by
/// the coalescer.
#[derive(Clone, Copy, Debug)]
struct PendingCqe {
    job: usize,
    issued_at: SimTime,
    meta: MetaId,
}

impl SysWorld {
    /// Parks `meta` in the slab until its completion path reclaims it.
    fn alloc_meta(&mut self, meta: DeviceMeta) -> MetaId {
        match self.meta_free.pop() {
            Some(id) => {
                self.meta_slab[id as usize] = meta;
                id
            }
            None => {
                self.meta_slab.push(meta);
                (self.meta_slab.len() - 1) as MetaId
            }
        }
    }

    /// Reads back and releases a parked [`DeviceMeta`].
    fn free_meta(&mut self, id: MetaId) -> DeviceMeta {
        self.meta_free.push(id);
        self.meta_slab[id as usize]
    }

    fn attribute(
        &mut self,
        now: SimTime,
        job: usize,
        cause: afa_sim::trace::Cause,
        d: SimDuration,
    ) {
        if let Some(acc) = &mut self.causes {
            if !d.is_zero() {
                use afa_sim::trace::TraceSink;
                acc.record(now, job as u64, cause, d);
            }
        }
    }
}

impl SysWorld {
    /// Issues as many operations as the queue depth allows, starting
    /// with the thread running on its CPU at `now`. Returns the time
    /// the thread goes to sleep (or finishes polling).
    fn issue_burst(&mut self, job: usize, mut now: SimTime, sched: &mut Scheduler<'_, Event>) {
        let cpu = self.geometry.cpu_of_ssd(self.jobs[job].spec().device());
        let issue_gap = self.jobs[job].spec().min_issue_gap();
        while self.jobs[job].can_issue(now) {
            // fio's rate_iops pacing: defer the issue if the job is
            // ahead of its rate budget.
            if now < self.next_allowed[job] {
                sched.at(self.next_allowed[job], Event::Issue { job });
                return;
            }
            if !issue_gap.is_zero() {
                self.next_allowed[job] = now + issue_gap;
            }
            let device = self.jobs[job].spec().device();
            let bytes = self.jobs[job].spec().block_size();
            let op = self.jobs[job].issue(now);
            let submit_end = self.host.charge_cpu(cpu, now, SUBMIT_COST);
            let cmd = if op.is_write {
                NvmeCommand::write(op.lba, bytes)
            } else {
                NvmeCommand::read(op.lba, bytes)
            };
            let at_device = self.fabric.submit_command(device, submit_end);
            let info = self.devices[device].submit(at_device, cmd);
            let trace_id = self.tracer.as_mut().and_then(|tracer| {
                let id = tracer.begin(device, op.lba, now)?;
                tracer.stamp(id, crate::blktrace::IoStage::Dispatch, at_device);
                Some(id)
            });
            let meta = self.alloc_meta(DeviceMeta {
                service: info.service,
                queue_wait: info.queue_wait,
                housekeeping: info.housekeeping_stall,
                fabric_down: at_device.saturating_since(submit_end),
                trace_id,
            });
            self.attribute(submit_end, job, afa_sim::trace::Cause::CpuWork, SUBMIT_COST);
            // The upstream transfer is reserved when the completion
            // actually happens (the DeviceDone event), so a device
            // stalled in a SMART window cannot retroactively occupy
            // the shared uplink for everyone else.
            sched.at(
                info.completes_at,
                Event::DeviceDone {
                    job,
                    issued_at: submit_end,
                    meta,
                },
            );
            match self.jobs[job].spec().engine() {
                IoEngine::Libaio | IoEngine::Sync => {
                    now = submit_end;
                }
                IoEngine::Polling => {
                    // The thread spins on the CQ until the DeviceDone/
                    // Completion chain reaps it; stop issuing here.
                    return;
                }
            }
        }
    }

    /// The device posted a completion: move the data + CQE + MSI
    /// across the fabric (reserving shared links *now*).
    fn on_device_done(
        &mut self,
        job: usize,
        issued_at: SimTime,
        meta: MetaId,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let now = sched.now();
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let bytes = self.jobs[job].spec().block_size() as u64;
        let trace_id = self.meta_slab[meta as usize].trace_id;
        if let (Some(tracer), Some(id)) = (&mut self.tracer, trace_id) {
            tracer.stamp(id, crate::blktrace::IoStage::DeviceComplete, now);
        }
        let mut at_host = self.fabric.deliver_completion(device, now, bytes);
        // NUMA: when the fio thread's socket is not the socket the
        // AFA's uplink attaches to (CPU2 = socket 1 in the paper), the
        // DMA lands in remote memory and the MSI crosses the
        // interconnect.
        if self.host.topology().socket_of(cpu) != self.afa_socket {
            at_host += NUMA_CROSS_SOCKET;
        }
        let coalesce = self
            .coalescing
            .filter(|_| !matches!(self.jobs[job].spec().engine(), IoEngine::Polling));
        match coalesce {
            None => sched.at(
                at_host,
                Event::Completion {
                    job,
                    issued_at,
                    meta,
                    fabric_up_from: now,
                },
            ),
            Some(c) => {
                // Hold the CQE; the MSI fires on batch-full or timeout
                // from the first pending completion.
                let pending = &mut self.pending_cq[device];
                pending.push(PendingCqe {
                    job,
                    issued_at,
                    meta,
                });
                if pending.len() as u32 >= c.max_batch {
                    sched.at(at_host, Event::Msi { device });
                } else if pending.len() == 1 {
                    sched.at(at_host + c.timeout, Event::Msi { device });
                }
            }
        }
    }

    /// A coalesced MSI: one interrupt and one wake-up reap the whole
    /// pending batch.
    fn on_msi(&mut self, device: usize, sched: &mut Scheduler<'_, Event>) {
        // Swap the pending queue against the reusable scratch buffer
        // (instead of `mem::take`, which would allocate a fresh Vec on
        // every MSI) — nothing below pushes to this device's queue.
        debug_assert!(self.cq_scratch.is_empty());
        std::mem::swap(&mut self.pending_cq[device], &mut self.cq_scratch);
        let Some(&first) = self.cq_scratch.first() else {
            // A stale timeout after a batch-full fire; both Vecs are
            // empty, so the swap was a no-op worth undoing for tidiness.
            std::mem::swap(&mut self.pending_cq[device], &mut self.cq_scratch);
            return;
        };
        let now = sched.now();
        let job = first.job;
        let cpu = self.geometry.cpu_of_ssd(device);
        let irq = self.host.deliver_irq(device, now);
        let (run_start, _) =
            self.host
                .wake_io_task(cpu, irq.wake_ready, self.jobs[job].spec().policy());
        let work = COMPLETE_COST + self.jobs[job].spec().logging_cpu_overhead();
        let mut t = run_start;
        for i in 0..self.cq_scratch.len() {
            let entry = self.cq_scratch[i];
            t = self.host.charge_cpu(cpu, t, work);
            self.jobs[entry.job].complete(t.saturating_since(entry.issued_at).as_nanos());
            let device_meta = self.free_meta(entry.meta);
            if let (Some(tracer), Some(id)) = (&mut self.tracer, device_meta.trace_id) {
                tracer.stamp(id, crate::blktrace::IoStage::IrqHandled, irq.handler_done);
                tracer.stamp(id, crate::blktrace::IoStage::Reaped, t);
            }
        }
        self.cq_scratch.clear();
        debug_assert!(self.pending_cq[device].is_empty());
        std::mem::swap(&mut self.pending_cq[device], &mut self.cq_scratch);
        self.issue_burst(job, t, sched);
    }

    fn on_completion(
        &mut self,
        job: usize,
        issued_at: SimTime,
        meta: MetaId,
        fabric_up_from: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let device_meta = self.free_meta(meta);
        let now = sched.now();
        let device = self.jobs[job].spec().device();
        let cpu = self.geometry.cpu_of_ssd(device);
        let work = COMPLETE_COST + self.jobs[job].spec().logging_cpu_overhead();

        let done = match self.jobs[job].spec().engine() {
            IoEngine::Libaio | IoEngine::Sync => {
                let irq = self.host.deliver_irq(device, now);
                let (run_start, breakdown) =
                    self.host
                        .wake_io_task(cpu, irq.wake_ready, self.jobs[job].spec().policy());
                let done = self.host.charge_cpu(cpu, run_start, work);
                if let (Some(tracer), Some(id)) = (&mut self.tracer, device_meta.trace_id) {
                    tracer.stamp(id, crate::blktrace::IoStage::IrqHandled, irq.handler_done);
                    tracer.stamp(id, crate::blktrace::IoStage::Reaped, done);
                }
                if self.causes.is_some() {
                    use afa_sim::trace::Cause;
                    self.attribute(
                        now,
                        job,
                        Cause::IrqHandling,
                        irq.handler_done.saturating_since(now),
                    );
                    self.attribute(
                        now,
                        job,
                        Cause::RemoteCompletion,
                        irq.wake_ready.saturating_since(irq.handler_done),
                    );
                    let waits = breakdown.np_wait
                        + breakdown.cfs_preempt_wait
                        + breakdown.local_queue_wait
                        + breakdown.softirq_wait;
                    self.attribute(run_start, job, Cause::SchedulerDelay, waits);
                    self.attribute(run_start, job, Cause::CStateExit, breakdown.cstate_exit);
                    self.attribute(run_start, job, Cause::ContextSwitch, breakdown.fixed_costs);
                    self.attribute(done, job, Cause::CpuWork, done.saturating_since(run_start));
                }
                done
            }
            IoEngine::Polling => {
                // The thread spun from issue to now; reap directly.
                let spin = now.saturating_since(issued_at);
                let spin_end = self.host.charge_cpu(cpu, issued_at, spin);
                let done = self.host.charge_cpu(cpu, spin_end, work);
                if let (Some(tracer), Some(id)) = (&mut self.tracer, device_meta.trace_id) {
                    tracer.stamp(id, crate::blktrace::IoStage::Reaped, done);
                }
                self.attribute(
                    done,
                    job,
                    afa_sim::trace::Cause::CpuWork,
                    done.saturating_since(issued_at),
                );
                done
            }
        };

        if self.causes.is_some() {
            use afa_sim::trace::Cause;
            let fabric = device_meta.fabric_down + now.saturating_since(fabric_up_from);
            self.attribute(now, job, Cause::Fabric, fabric);
            self.attribute(now, job, Cause::DeviceService, device_meta.service);
            self.attribute(now, job, Cause::DeviceQueueing, device_meta.queue_wait);
            self.attribute(now, job, Cause::Housekeeping, device_meta.housekeeping);
        }

        self.jobs[job].complete(done.saturating_since(issued_at).as_nanos());
        // The thread holds the CPU after reaping: issue the next I/O.
        self.issue_burst(job, done, sched);
    }
}

impl World for SysWorld {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut Scheduler<'_, Event>) {
        match event {
            Event::Issue { job } => {
                let now = sched.now();
                self.issue_burst(job, now, sched);
            }
            Event::DeviceDone {
                job,
                issued_at,
                meta,
            } => {
                self.on_device_done(job, issued_at, meta, sched);
            }
            Event::Completion {
                job,
                issued_at,
                meta,
                fabric_up_from,
            } => {
                self.on_completion(job, issued_at, meta, fabric_up_from, sched);
            }
            Event::Msi { device } => {
                self.on_msi(device, sched);
            }
            Event::BgArrival => {
                let now = sched.now();
                self.host.spawn_background(now);
                let next = self.host.next_background_arrival(now);
                if next < self.horizon {
                    sched.at(next, Event::BgArrival);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_stats::NinesPoint;

    fn quick(stage: TuningStage, ssds: usize, ms: u64) -> RunResult {
        let config = AfaConfig::paper(stage)
            .with_ssds(ssds)
            .with_runtime(SimDuration::millis(ms))
            .with_seed(7);
        AfaSystem::run(&config)
    }

    #[test]
    fn every_device_completes_io() {
        let r = quick(TuningStage::IrqAffinity, 8, 50);
        assert_eq!(r.reports.len(), 8);
        for report in &r.reports {
            assert!(report.completed() > 500, "only {} I/Os", report.completed());
        }
    }

    #[test]
    fn tuned_mean_latency_is_about_30us() {
        let r = quick(TuningStage::ExperimentalFirmware, 4, 100);
        for report in &r.reports {
            let mean = report.histogram().mean() / 1_000.0;
            assert!((28.0..40.0).contains(&mean), "mean {mean} us");
        }
    }

    #[test]
    fn qd1_iops_matches_latency() {
        let r = quick(TuningStage::ExperimentalFirmware, 2, 100);
        for report in &r.reports {
            let iops = report.completed() as f64 / 0.1;
            // ~1 / 33 µs ≈ 30 K IOPS.
            assert!((22_000.0..36_000.0).contains(&iops), "IOPS {iops}");
        }
    }

    #[test]
    fn default_config_has_fatter_tail_than_tuned() {
        let default = quick(TuningStage::Default, 8, 400);
        let tuned = quick(TuningStage::IrqAffinity, 8, 400);
        let max_default: u64 = default
            .reports
            .iter()
            .map(|r| r.profile().get(NinesPoint::Max))
            .max()
            .unwrap();
        let max_tuned: u64 = tuned
            .reports
            .iter()
            .map(|r| r.profile().get(NinesPoint::Max))
            .max()
            .unwrap();
        assert!(
            max_default > max_tuned,
            "default max {max_default} <= tuned max {max_tuned}"
        );
    }

    #[test]
    fn polling_engine_completes_without_interrupts() {
        let config = AfaConfig::paper(TuningStage::IrqAffinity)
            .with_ssds(2)
            .with_runtime(SimDuration::millis(50))
            .with_engine(IoEngine::Polling);
        let r = AfaSystem::run(&config);
        assert_eq!(r.host.stats().irqs, 0, "polling must not interrupt");
        for report in &r.reports {
            assert!(report.completed() > 500);
            // Polling shaves the interrupt + wake-up off the latency.
            let mean = report.histogram().mean() / 1_000.0;
            assert!(mean < 34.0, "polling mean {mean} us");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(TuningStage::Chrt, 4, 50);
        let b = quick(TuningStage::Chrt, 4, 50);
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.completed(), rb.completed());
            assert_eq!(ra.histogram().max(), rb.histogram().max());
            assert_eq!(ra.histogram().mean(), rb.histogram().mean());
        }
    }

    #[test]
    fn logging_enables_latency_logs() {
        let config = AfaConfig::paper(TuningStage::IrqAffinity)
            .with_ssds(2)
            .with_runtime(SimDuration::millis(20))
            .with_logging(true);
        let r = AfaSystem::run(&config);
        for report in &r.reports {
            let log = report.latency_log().expect("log enabled");
            assert!(log.samples_seen() > 100);
        }
    }

    #[test]
    fn coalescing_reduces_interrupt_rate_at_depth() {
        let mut deep = AfaConfig::paper(TuningStage::ExperimentalFirmware)
            .with_ssds(2)
            .with_runtime(SimDuration::millis(80))
            .with_seed(21);
        deep.iodepth = 4;
        let uncoalesced = AfaSystem::run(&deep);
        let mut coalesced_cfg = deep.clone();
        coalesced_cfg.irq_coalescing = Some(IrqCoalescing {
            max_batch: 4,
            timeout: SimDuration::micros(100),
        });
        let coalesced = AfaSystem::run(&coalesced_cfg);

        let ios = |r: &RunResult| r.reports.iter().map(|rep| rep.completed()).sum::<u64>();
        let rate = |r: &RunResult| r.host.stats().irqs as f64 / ios(r).max(1) as f64;
        assert!(
            (rate(&uncoalesced) - 1.0).abs() < 0.01,
            "{}",
            rate(&uncoalesced)
        );
        assert!(
            rate(&coalesced) < 0.6,
            "coalescing should batch MSIs: {:.2} irq/io",
            rate(&coalesced)
        );
        assert!(ios(&coalesced) > 1_000, "batched path must still flow");
    }

    #[test]
    fn coalescing_timeout_adds_qd1_latency() {
        let base = AfaConfig::paper(TuningStage::ExperimentalFirmware)
            .with_ssds(1)
            .with_runtime(SimDuration::millis(60))
            .with_seed(22);
        let plain = AfaSystem::run(&base);
        let coalesced = AfaSystem::run(&base.clone().with_irq_coalescing(IrqCoalescing {
            max_batch: 4,
            timeout: SimDuration::micros(100),
        }));
        let mean = |r: &RunResult| r.reports[0].histogram().mean() / 1e3;
        // At QD1 a batch never fills, so every I/O eats the timeout.
        assert!(
            mean(&coalesced) > mean(&plain) + 80.0,
            "QD1 coalescing penalty missing: {:.1} vs {:.1}",
            mean(&coalesced),
            mean(&plain)
        );
    }

    #[test]
    fn rate_cap_paces_issues() {
        let config = AfaConfig::paper(TuningStage::ExperimentalFirmware)
            .with_ssds(2)
            .with_runtime(SimDuration::millis(100))
            .with_rate_iops(5_000);
        let r = AfaSystem::run(&config);
        for report in &r.reports {
            let iops = report.completed() as f64 / 0.1;
            assert!(
                (4_000.0..5_400.0).contains(&iops),
                "rate-capped IOPS {iops}"
            );
        }
    }

    #[test]
    fn events_stay_small_and_are_counted() {
        // The queue copies events through wheel buckets; the cold
        // DeviceMeta payload must stay in the slab, not the event.
        assert!(
            std::mem::size_of::<Event>() <= 32,
            "Event grew to {} bytes",
            std::mem::size_of::<Event>()
        );
        let r = quick(TuningStage::IrqAffinity, 2, 50);
        let ios: u64 = r.reports.iter().map(|rep| rep.completed()).sum();
        // ~2 events per I/O (DeviceDone + Completion) plus issues and
        // background arrivals.
        assert!(
            r.events_processed > 2 * ios,
            "{} events for {} I/Os",
            r.events_processed,
            ios
        );
        assert_eq!(r.clamped_past_schedules, 0, "model scheduled into the past");
    }

    #[test]
    fn fabric_accounting_is_consistent() {
        let r = quick(TuningStage::IrqAffinity, 4, 50);
        let total_ios: u64 = r.reports.iter().map(|rep| rep.completed()).sum();
        assert!(r.fabric_stats.interrupts >= total_ios);
        assert_eq!(r.fabric_stats.device_bytes, r.fabric_stats.uplink_bytes);
    }
}
