//! System assembly: builds the host, fabric, devices and jobs from an
//! [`AfaConfig`] and drives the staged I/O path
//! ([`crate::io_path`]) to completion on the sharded conservative
//! engine ([`afa_sim::shard`]).
//!
//! The lifecycle of one I/O — submit syscall, fabric legs, device
//! service, interrupt, scheduler wake-up, reap — lives in the
//! [`crate::io_path`] stage modules; this module only resolves the
//! geometry, replicates the world across the shard topology, runs the
//! simulation (threaded when `AFA_THREADS` > 1, sequential otherwise
//! — byte-identical either way) and stitches the owned slices back
//! into one result.

use std::sync::atomic::{AtomicUsize, Ordering};

use afa_host::{CpuId, CpuTopology, HostModel};
use afa_pcie::{FabricStats, PcieFabric};
use afa_sim::metrics::CompletionCounters;
use afa_sim::{ShardedSim, SimDuration, SimRng, SimTime};
use afa_ssd::{DeviceStats, FtlStats, SsdDevice};
use afa_workload::{JobReport, JobSpec, JobState};

use crate::config::AfaConfig;
use crate::geometry::CpuSsdGeometry;
use crate::io_path::{lp_of_cpu, IoPathWorld, LedgerLog, Local, HUB_LP, WORKER_LPS};

/// Live [`SequentialGuard`] count: while non-zero, every run in the
/// process stays on the sequential driver regardless of
/// `AFA_THREADS`. A plain counter (not a thread-local) because the
/// experiment registry runs experiments on a pool of worker threads;
/// the worst a race can do is run a shardable experiment sequentially,
/// which changes nothing but wall-clock time.
static FORCE_SEQUENTIAL: AtomicUsize = AtomicUsize::new(0);

/// RAII scope forcing sequential execution — held around experiments
/// that drive their own single-world simulations and must not observe
/// `AFA_THREADS`.
pub(crate) struct SequentialGuard;

impl SequentialGuard {
    pub(crate) fn acquire() -> Self {
        FORCE_SEQUENTIAL.fetch_add(1, Ordering::Relaxed);
        SequentialGuard
    }
}

impl Drop for SequentialGuard {
    fn drop(&mut self) {
        FORCE_SEQUENTIAL.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Programmatic thread-count override (0 = none). Lets tests compare
/// the two drivers without mutating the process environment; see
/// [`ThreadsOverride`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// RAII scope pinning the engine's worker-thread count, taking
/// precedence over `AFA_THREADS` (but not over a [`SequentialGuard`],
/// which exists for correctness, not policy). Because results are
/// byte-identical at every thread count, overlapping overrides from
/// concurrent tests cannot change any outcome — only which driver
/// does the work.
pub struct ThreadsOverride {
    prev: usize,
}

impl ThreadsOverride {
    /// Pins the thread count to `threads` (≥ 1) until the guard drops.
    pub fn set(threads: usize) -> Self {
        let prev = THREAD_OVERRIDE.swap(threads.max(1), Ordering::Relaxed);
        ThreadsOverride { prev }
    }
}

impl Drop for ThreadsOverride {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::Relaxed);
    }
}

/// Worker threads for the conservative engine: `AFA_THREADS` when set
/// to a sane value, else 1 (the sequential driver). Results are
/// byte-identical at every thread count — the knob only trades wall
/// clock for cores.
fn configured_threads() -> usize {
    if FORCE_SEQUENTIAL.load(Ordering::Relaxed) > 0 {
        return 1;
    }
    let pinned = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if pinned > 0 {
        return pinned;
    }
    std::env::var("AFA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

/// The outcome of one run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-device job reports, indexed like the geometry.
    pub reports: Vec<JobReport>,
    /// Per-cause latency attribution, when
    /// [`AfaConfig::attribute_causes`] was set.
    pub causes: Option<afa_sim::trace::CauseAccumulator>,
    /// blktrace-style stage traces, when [`AfaConfig::trace_ios`] was
    /// non-zero.
    pub traces: Option<crate::blktrace::TraceRecorder>,
    /// Settled per-I/O ledgers, when [`AfaConfig::ledger_log`] was
    /// non-zero.
    pub ledgers: Option<LedgerLog>,
    /// Simulated time at which the last completion landed.
    pub elapsed: SimTime,
    /// Simulation events processed by the run (≈ 2–3 per I/O).
    pub events_processed: u64,
    /// Events that were scheduled into the past and clamped (0 for a
    /// healthy model; see [`afa_sim::Simulation::clamped_past_schedules`]).
    pub clamped_past_schedules: u64,
    /// The final host model (scheduler/IRQ counters via
    /// [`HostModel::stats`]).
    pub host: HostModel,
    /// Fabric counters.
    pub fabric_stats: FabricStats,
    /// Per-device counters.
    pub device_stats: Vec<(DeviceStats, FtlStats)>,
    /// How completions were reaped (interrupt / poll / hybrid
    /// oversleep); also flushed to [`afa_sim::metrics`] so harnesses
    /// can delta the process-wide totals around an experiment.
    pub completions: CompletionCounters,
}

impl RunResult {
    /// Aggregate IOPS across all devices.
    pub fn aggregate_iops(&self, runtime: SimDuration) -> f64 {
        let secs = runtime.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.reports.iter().map(|r| r.completed()).sum::<u64>() as f64 / secs
    }

    /// Aggregate read throughput in GB/s across all devices.
    pub fn aggregate_gbps(&self, runtime: SimDuration) -> f64 {
        let secs = runtime.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.reports
            .iter()
            .map(|r| r.bytes_transferred())
            .sum::<u64>() as f64
            / secs
            / 1e9
    }
}

/// The AFA system simulator.
pub struct AfaSystem;

impl AfaSystem {
    /// Runs one experiment to completion and returns the results.
    pub fn run(config: &AfaConfig) -> RunResult {
        // Resolve the geometry: explicit jobs derive it from their
        // pinning; otherwise the config's geometry stands.
        let geometry = match &config.jobs_override {
            None => config.geometry.clone(),
            Some(specs) => {
                assert!(!specs.is_empty(), "job list must not be empty");
                let n = 1 + specs.iter().map(|s| s.device()).max().expect("non-empty");
                assert!(n <= 64, "jobfile addresses a device beyond 64");
                let mut seen = vec![false; n];
                for spec in specs {
                    assert!(
                        !seen[spec.device()],
                        "two jobs target device {}",
                        spec.device()
                    );
                    seen[spec.device()] = true;
                }
                let paper = CpuSsdGeometry::paper(n);
                let mut assignment = paper.assignment().to_vec();
                for spec in specs {
                    if let Some(cpu) = spec.pinned_cpu() {
                        assignment[spec.device()] = cpu;
                    }
                }
                CpuSsdGeometry::with_assignment(assignment)
            }
        };
        let n = geometry.ssds();
        assert!(n > 0, "need at least one SSD");

        let topo = CpuTopology::xeon_e5_2690_v2_dual();
        let io_set = geometry.io_cpu_set();
        let mut kernel = config
            .kernel_override
            .unwrap_or_else(|| config.tuning.kernel_config(io_set));
        if let Some(hz) = config.tick_override {
            kernel.tick_hz = hz;
        }
        if let Some(idle) = config.idle_override {
            kernel.idle = idle;
        }
        if let Some(rcu) = config.rcu_override {
            kernel.rcu_nocbs = rcu;
        }
        let mut host = HostModel::new(topo, kernel, config.background, config.seed);
        host.init_vectors(geometry.assignment().to_vec(), config.seed);

        let fabric = PcieFabric::paper_single_host(n);
        let firmware = config
            .firmware_override
            .clone()
            .unwrap_or_else(|| config.tuning.firmware());
        let devices: Vec<SsdDevice> = (0..n)
            .map(|d| {
                SsdDevice::new(
                    config.device_profile.spec(),
                    firmware.clone(),
                    config.seed ^ (d as u64).wrapping_mul(0x9E37_79B9),
                )
            })
            .collect();

        let policy = config.tuning.fio_policy();
        let specs: Vec<JobSpec> = match &config.jobs_override {
            Some(specs) => specs.clone(),
            None => (0..n)
                .map(|d| {
                    let mut spec = JobSpec::paper_default(d)
                        .rw(config.rw)
                        .block_size_bytes(config.block_size)
                        .iodepth_n(config.iodepth)
                        .runtime(config.runtime)
                        .cpus_allowed(geometry.cpu_of_ssd(d))
                        .sched(policy)
                        .ioengine(config.engine)
                        .log_latency(config.log_latency);
                    if let Some(iops) = config.rate_iops {
                        spec = spec.rate_iops_cap(iops);
                    }
                    spec
                })
                .collect(),
        };
        let jobs: Vec<JobState> = specs
            .into_iter()
            .enumerate()
            .map(|(j, spec)| {
                JobState::new(
                    spec,
                    SimTime::ZERO,
                    SimRng::from_seed_and_stream(config.seed, 0x10_000 + j as u64),
                )
            })
            .collect();

        let horizon = jobs
            .iter()
            .map(JobState::deadline)
            .fold(SimTime::ZERO, SimTime::max)
            + SimDuration::millis(50);
        let jobs_len = jobs.len();
        // Ownership maps, captured before the geometry moves into the
        // world: which worker shard drives each job and device.
        let device_lps: Vec<usize> = (0..n).map(|d| lp_of_cpu(geometry.cpu_of_ssd(d))).collect();
        let job_lps: Vec<usize> = jobs
            .iter()
            .map(|j| lp_of_cpu(geometry.cpu_of_ssd(j.spec().device())))
            .collect();
        let mut proto = IoPathWorld::new(
            host,
            fabric,
            devices,
            jobs,
            geometry,
            horizon,
            config.afa_socket,
            config
                .attribute_causes
                .then(afa_sim::trace::CauseAccumulator::new),
            (config.trace_ios > 0).then(|| crate::blktrace::TraceRecorder::new(config.trace_ios)),
            (config.ledger_log > 0).then(|| LedgerLog::new(config.ledger_log)),
            config.irq_coalescing,
            config.hybrid_sleep(),
            config.device_profile.per_cpu_queue_pairs(),
        );
        // Macro-event fusion: on unless `AFA_NO_FUSION` / a
        // `FusionOverride` says otherwise. The fast path additionally
        // gates itself per submit (single plan, QD1, uncontended
        // resources — see `IoPathWorld::fusion_candidate`), and is
        // byte-exact, so the knob only exists for A/B verification.
        proto.set_fusion(crate::partition::fusion_enabled());

        // Resolve the partition plan and replicate the world across
        // it: one replica per shard, branded with the LPs it owns,
        // with the shard lookahead the minimum over its members. The
        // engine's merge contract orders events by LP — never by
        // shard — so every plan × thread count produces the same
        // bytes; the plan only decides how much parallel machinery a
        // run pays for.
        let threads = configured_threads();
        let job_lp_mask = job_lps.iter().fold(0u16, |m, &lp| m | 1 << lp);
        let resolved =
            crate::partition::resolve(job_lp_mask, threads, crate::partition::host_cores());
        let plan = resolved.plan;
        let worker_la = proto.worker_lookahead();
        let hub_la = proto.hub_lookahead();
        let mut proto = Some(proto);
        let shard_count = plan.shard_count();
        let mut shards = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let members = plan.members(shard);
            let mask = members.iter().fold(0u16, |m, &lp| m | 1 << lp);
            let lookahead = if members.contains(&HUB_LP) && members.len() == 1 {
                hub_la
            } else if members.contains(&HUB_LP) {
                hub_la.min(worker_la)
            } else {
                worker_la
            };
            let mut world = if shard + 1 == shard_count {
                proto.take().expect("proto consumed once")
            } else {
                proto.as_ref().expect("proto alive").clone()
            };
            world.set_lps(mask);
            shards.push((world, lookahead));
        }
        let mut sim = ShardedSim::with_plan(plan.clone(), shards);

        // fio staggers thread start-up by a few µs per thread; the
        // stagger also prevents an artificial phase-lock between
        // perfectly symmetric QD1 loops.
        for (job, &lp) in job_lps.iter().enumerate() {
            sim.schedule(
                lp,
                SimTime::ZERO + SimDuration::micros(job as u64 * 13 % 97),
                Local::Issue { job },
            );
        }
        sim.schedule(HUB_LP, SimTime::ZERO, Local::BgArrival);
        sim.run_threaded(threads);

        let elapsed = sim.now();
        let events_processed = sim.events_processed();
        let clamped_past_schedules = sim.clamped_past_schedules();
        let worlds = sim.into_worlds();
        let hub_shard = plan.shard_of(HUB_LP);

        // Stitch the owned slices back together, one pass per *world*
        // (a fused world already holds its member LPs' slices in
        // place). The hub's world is the authority on shared state
        // (vector table, balancer, bg placement, shared fabric legs);
        // every merge below is an associative absorb of disjoint
        // activity, so the stitched result is plan-invariant.
        let device_stats: Vec<(DeviceStats, FtlStats)> = (0..n)
            .map(|d| {
                let owner = &worlds[plan.shard_of(device_lps[d])].devices[d];
                (owner.stats(), owner.ftl_stats())
            })
            .collect();
        let mut fabric_stats = worlds[hub_shard].fabric.stats();
        for (shard, world) in worlds.iter().enumerate() {
            if shard != hub_shard {
                fabric_stats.absorb(world.fabric.stats());
            }
        }
        // Completion-model tallies are per worker LP; take each LP's
        // tally from its owning shard exactly once (a fused replica
        // holds several LPs' disjoint slices in place).
        let mut completions = CompletionCounters::default();
        for lp in 0..WORKER_LPS {
            completions.absorb(&worlds[plan.shard_of(lp)].completions[lp]);
        }
        afa_sim::metrics::add_completion(completions);
        let mut worlds: Vec<Option<IoPathWorld>> = worlds.into_iter().map(Some).collect();
        let hub = worlds[hub_shard].take().expect("hub world");
        // Fusion happens only on a replica owning every LP (the
        // single plan), which is necessarily the hub's world; flush
        // its tally to the process-wide counters. The elided events
        // keep the *logical* event total comparable across fusion
        // settings: popped events + elided = the un-fused count.
        let fusion = hub.fusion_tally();
        afa_sim::metrics::add_fusion(afa_sim::metrics::FusionCounters {
            fused_chains: fusion.fused,
            defused_chains: fusion.defused,
            elided_events: fusion.elided,
        });
        let mut host = hub.host;
        let all_cpus: Vec<CpuId> = host.topology().all_cpus().iter().collect();
        for (shard, world) in worlds.iter().enumerate() {
            let Some(world) = world else { continue };
            let owned: Vec<CpuId> = all_cpus
                .iter()
                .copied()
                .filter(|&c| plan.shard_of(lp_of_cpu(c)) == shard)
                .collect();
            host.adopt_cpu_states(&world.host, &owned);
            host.absorb_stats(&world.host);
        }
        let mut causes = hub.causes;
        let mut trace_parts = Vec::new();
        let mut ledger_parts = Vec::new();
        let mut reports: Vec<Option<JobReport>> = (0..jobs_len).map(|_| None).collect();
        // Capture windows are per worker LP (see `IoPathWorld`), so
        // each shard contributes exactly its owned LPs' windows and the
        // union is plan-invariant.
        if let Some(tracers) = hub.tracers {
            for (lp, rec) in tracers.into_iter().enumerate() {
                if plan.shard_of(lp) == hub_shard {
                    trace_parts.push(rec);
                }
            }
        }
        if let Some(logs) = hub.ledger_logs {
            for (lp, log) in logs.into_iter().enumerate() {
                if plan.shard_of(lp) == hub_shard {
                    ledger_parts.push(log);
                }
            }
        }
        for (j, job) in hub.jobs.into_iter().enumerate() {
            if plan.shard_of(job_lps[j]) == hub_shard {
                reports[j] = Some(job.into_report());
            }
        }
        for (shard, world) in worlds.into_iter().enumerate() {
            let Some(world) = world else { continue };
            if let (Some(acc), Some(part)) = (&mut causes, &world.causes) {
                acc.merge(part);
            }
            if let Some(tracers) = world.tracers {
                for (lp, rec) in tracers.into_iter().enumerate() {
                    if plan.shard_of(lp) == shard {
                        trace_parts.push(rec);
                    }
                }
            }
            if let Some(logs) = world.ledger_logs {
                for (lp, log) in logs.into_iter().enumerate() {
                    if plan.shard_of(lp) == shard {
                        ledger_parts.push(log);
                    }
                }
            }
            for (j, job) in world.jobs.into_iter().enumerate() {
                if plan.shard_of(job_lps[j]) == shard {
                    reports[j] = Some(job.into_report());
                }
            }
        }
        RunResult {
            reports: reports
                .into_iter()
                .map(|r| r.expect("every job has an owning shard"))
                .collect(),
            causes,
            traces: (config.trace_ios > 0)
                .then(|| crate::blktrace::TraceRecorder::merged(config.trace_ios, trace_parts)),
            ledgers: (config.ledger_log > 0)
                .then(|| LedgerLog::merged(config.ledger_log, ledger_parts)),
            elapsed,
            events_processed,
            clamped_past_schedules,
            host,
            fabric_stats,
            device_stats,
            completions,
        }
    }
}
