//! System assembly: builds the host, fabric, devices and jobs from an
//! [`AfaConfig`] and drives the staged I/O path
//! ([`crate::io_path`]) to completion.
//!
//! The lifecycle of one I/O — submit syscall, fabric legs, device
//! service, interrupt, scheduler wake-up, reap — lives in the
//! [`crate::io_path`] stage modules; this module only resolves the
//! geometry, wires the parts together, runs the simulation and
//! collects the results.

use afa_host::{CpuTopology, HostModel};
use afa_pcie::{FabricStats, PcieFabric};
use afa_sim::{SimDuration, SimRng, SimTime, Simulation};
use afa_ssd::{DeviceStats, FtlStats, SsdDevice, SsdSpec};
use afa_workload::{JobReport, JobSpec, JobState};

use crate::config::AfaConfig;
use crate::geometry::CpuSsdGeometry;
use crate::io_path::{Event, IoPathWorld, LedgerLog};

/// The outcome of one run.
#[derive(Debug)]
pub struct RunResult {
    /// Per-device job reports, indexed like the geometry.
    pub reports: Vec<JobReport>,
    /// Per-cause latency attribution, when
    /// [`AfaConfig::attribute_causes`] was set.
    pub causes: Option<afa_sim::trace::CauseAccumulator>,
    /// blktrace-style stage traces, when [`AfaConfig::trace_ios`] was
    /// non-zero.
    pub traces: Option<crate::blktrace::TraceRecorder>,
    /// Settled per-I/O ledgers, when [`AfaConfig::ledger_log`] was
    /// non-zero.
    pub ledgers: Option<LedgerLog>,
    /// Simulated time at which the last completion landed.
    pub elapsed: SimTime,
    /// Simulation events processed by the run (≈ 2–3 per I/O).
    pub events_processed: u64,
    /// Events that were scheduled into the past and clamped (0 for a
    /// healthy model; see [`afa_sim::Simulation::clamped_past_schedules`]).
    pub clamped_past_schedules: u64,
    /// The final host model (scheduler/IRQ counters via
    /// [`HostModel::stats`]).
    pub host: HostModel,
    /// Fabric counters.
    pub fabric_stats: FabricStats,
    /// Per-device counters.
    pub device_stats: Vec<(DeviceStats, FtlStats)>,
}

impl RunResult {
    /// Aggregate IOPS across all devices.
    pub fn aggregate_iops(&self, runtime: SimDuration) -> f64 {
        let secs = runtime.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.reports.iter().map(|r| r.completed()).sum::<u64>() as f64 / secs
    }

    /// Aggregate read throughput in GB/s across all devices.
    pub fn aggregate_gbps(&self, runtime: SimDuration) -> f64 {
        let secs = runtime.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.reports
            .iter()
            .map(|r| r.bytes_transferred())
            .sum::<u64>() as f64
            / secs
            / 1e9
    }
}

/// The AFA system simulator.
pub struct AfaSystem;

impl AfaSystem {
    /// Runs one experiment to completion and returns the results.
    pub fn run(config: &AfaConfig) -> RunResult {
        // Resolve the geometry: explicit jobs derive it from their
        // pinning; otherwise the config's geometry stands.
        let geometry = match &config.jobs_override {
            None => config.geometry.clone(),
            Some(specs) => {
                assert!(!specs.is_empty(), "job list must not be empty");
                let n = 1 + specs.iter().map(|s| s.device()).max().expect("non-empty");
                assert!(n <= 64, "jobfile addresses a device beyond 64");
                let mut seen = vec![false; n];
                for spec in specs {
                    assert!(
                        !seen[spec.device()],
                        "two jobs target device {}",
                        spec.device()
                    );
                    seen[spec.device()] = true;
                }
                let paper = CpuSsdGeometry::paper(n);
                let mut assignment = paper.assignment().to_vec();
                for spec in specs {
                    if let Some(cpu) = spec.pinned_cpu() {
                        assignment[spec.device()] = cpu;
                    }
                }
                CpuSsdGeometry::with_assignment(assignment)
            }
        };
        let n = geometry.ssds();
        assert!(n > 0, "need at least one SSD");

        let topo = CpuTopology::xeon_e5_2690_v2_dual();
        let io_set = geometry.io_cpu_set();
        let mut kernel = config
            .kernel_override
            .unwrap_or_else(|| config.tuning.kernel_config(io_set));
        if let Some(hz) = config.tick_override {
            kernel.tick_hz = hz;
        }
        if let Some(idle) = config.idle_override {
            kernel.idle = idle;
        }
        if let Some(rcu) = config.rcu_override {
            kernel.rcu_nocbs = rcu;
        }
        let mut host = HostModel::new(topo, kernel, config.background, config.seed);
        host.init_vectors(geometry.assignment().to_vec(), config.seed);

        let fabric = PcieFabric::paper_single_host(n);
        let firmware = config
            .firmware_override
            .clone()
            .unwrap_or_else(|| config.tuning.firmware());
        let devices: Vec<SsdDevice> = (0..n)
            .map(|d| {
                SsdDevice::new(
                    SsdSpec::table1(),
                    firmware.clone(),
                    config.seed ^ (d as u64).wrapping_mul(0x9E37_79B9),
                )
            })
            .collect();

        let policy = config.tuning.fio_policy();
        let specs: Vec<JobSpec> = match &config.jobs_override {
            Some(specs) => specs.clone(),
            None => (0..n)
                .map(|d| {
                    let mut spec = JobSpec::paper_default(d)
                        .rw(config.rw)
                        .block_size_bytes(config.block_size)
                        .iodepth_n(config.iodepth)
                        .runtime(config.runtime)
                        .cpus_allowed(geometry.cpu_of_ssd(d))
                        .sched(policy)
                        .ioengine(config.engine)
                        .log_latency(config.log_latency);
                    if let Some(iops) = config.rate_iops {
                        spec = spec.rate_iops_cap(iops);
                    }
                    spec
                })
                .collect(),
        };
        let jobs: Vec<JobState> = specs
            .into_iter()
            .enumerate()
            .map(|(j, spec)| {
                JobState::new(
                    spec,
                    SimTime::ZERO,
                    SimRng::from_seed_and_stream(config.seed, 0x10_000 + j as u64),
                )
            })
            .collect();

        let horizon = jobs
            .iter()
            .map(JobState::deadline)
            .fold(SimTime::ZERO, SimTime::max)
            + SimDuration::millis(50);
        let world = IoPathWorld::new(
            host,
            fabric,
            devices,
            jobs,
            geometry,
            horizon,
            config.afa_socket,
            config
                .attribute_causes
                .then(afa_sim::trace::CauseAccumulator::new),
            (config.trace_ios > 0).then(|| crate::blktrace::TraceRecorder::new(config.trace_ios)),
            (config.ledger_log > 0).then(|| LedgerLog::new(config.ledger_log)),
            config.irq_coalescing,
        );
        // Pre-size the queue: each job keeps ~2 events in flight
        // (device completion + host interrupt), plus background
        // arrivals and coalescing timers — 4 × jobs covers the lot
        // without reallocation.
        let mut sim = Simulation::with_capacity(world, 4 * n);
        // fio staggers thread start-up by a few µs per thread; the
        // stagger also prevents an artificial phase-lock between
        // perfectly symmetric QD1 loops.
        for job in 0..n {
            sim.schedule_at(
                SimTime::ZERO + SimDuration::micros(job as u64 * 13 % 97),
                Event::Issue { job },
            );
        }
        sim.schedule_at(SimTime::ZERO, Event::BgArrival);
        sim.run_to_completion();

        let elapsed = sim.now();
        let events_processed = sim.events_processed();
        let clamped_past_schedules = sim.clamped_past_schedules();
        let world = sim.into_world();
        let fabric_stats = world.fabric.stats();
        let device_stats = world
            .devices
            .iter()
            .map(|d| (d.stats(), d.ftl_stats()))
            .collect();
        RunResult {
            reports: world.jobs.into_iter().map(JobState::into_report).collect(),
            causes: world.causes,
            traces: world.tracer,
            ledgers: world.ledger_log,
            elapsed,
            events_processed,
            clamped_past_schedules,
            host: world.host,
            fabric_stats,
            device_stats,
        }
    }
}
