//! Run configuration: everything needed to run one experiment.

use afa_host::BackgroundConfig;
use afa_sim::SimDuration;
use afa_ssd::DeviceProfile;
use afa_workload::{IoEngine, JobSpec, RwPattern};

use crate::geometry::CpuSsdGeometry;
use crate::tuning::{Tuning, TuningStage};

/// NVMe interrupt-coalescing parameters (the standard mitigation for
/// the §I "interrupt storm" concern): the device holds completions
/// until `max_batch` have accumulated or `timeout` has passed since
/// the first, then raises a single MSI for the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IrqCoalescing {
    /// Fire as soon as this many completions are pending.
    pub max_batch: u32,
    /// Fire this long after the first pending completion.
    pub timeout: SimDuration,
}

/// Everything needed to run one experiment.
#[derive(Clone, Debug)]
pub struct AfaConfig {
    /// CPU↔SSD mapping.
    pub geometry: CpuSsdGeometry,
    /// Tuning stage (kernel config + fio class + firmware).
    pub tuning: Tuning,
    /// Background daemon workload.
    pub background: BackgroundConfig,
    /// Per-job run time.
    pub runtime: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Enable per-sample latency logs on every job (Fig. 10).
    pub log_latency: bool,
    /// Completion model.
    pub engine: IoEngine,
    /// I/O mix (the paper uses 4 KiB random reads).
    pub rw: RwPattern,
    /// Block size in bytes (the paper uses 4 KiB).
    pub block_size: u32,
    /// Queue depth per job (the paper uses 1).
    pub iodepth: u32,
    /// Firmware override (the housekeeping-protocol ablation sweeps
    /// custom SMART policies); `None` uses the tuning stage's
    /// firmware.
    pub firmware_override: Option<afa_ssd::FirmwareProfile>,
    /// Timer-tick rate override in Hz (tick ablation).
    pub tick_override: Option<u32>,
    /// Idle-policy override (C-state ablation).
    pub idle_override: Option<afa_host::IdlePolicy>,
    /// Per-job issue-rate cap (fio's `rate_iops`); `None` = unpaced.
    pub rate_iops: Option<u64>,
    /// Override of the kernel's `rcu_nocbs` set (RCU ablation).
    pub rcu_override: Option<afa_host::CpuSet>,
    /// Wholesale kernel-config replacement (future-work prototypes).
    pub kernel_override: Option<afa_host::KernelConfig>,
    /// NVMe interrupt coalescing; `None` = one MSI per completion
    /// (the paper's devices).
    pub irq_coalescing: Option<IrqCoalescing>,
    /// Explicit job list (e.g. from [`afa_workload::parse_jobfile`]);
    /// replaces the per-device jobs the config would otherwise build.
    /// Each spec must target a distinct device; unpinned jobs get the
    /// paper's Fig. 5 CPU for their device.
    pub jobs_override: Option<Vec<JobSpec>>,
    /// Record blktrace-style stage timestamps for the first N I/Os
    /// (0 = off); results land in [`RunResult::traces`](crate::RunResult::traces).
    pub trace_ios: usize,
    /// Attribute every nanosecond of completion latency to a cause
    /// (the simulated LTTng analysis of §IV-B/§IV-D); results land in
    /// [`RunResult::causes`](crate::RunResult::causes).
    pub attribute_causes: bool,
    /// Capture the settled [`IoLedger`](crate::io_path::IoLedger) of
    /// the first N completed I/Os (0 = off); results land in
    /// [`RunResult::ledgers`](crate::RunResult::ledgers).
    pub ledger_log: usize,
    /// Socket the AFA's PCIe uplink attaches to (the paper's CPU2 =
    /// socket 1, §III-A). fio threads on the other socket pay a
    /// cross-socket (NUMA) penalty on the completion path.
    pub afa_socket: u16,
    /// Device class for every SSD in the array (Table-I 25 µs default,
    /// or the ULL ~9 µs class). Also selects the queue-pair topology:
    /// the ULL class models per-CPU NVMe SQ/CQ pairs.
    pub device_profile: DeviceProfile,
    /// Hybrid-poll sleep fraction: percent of the device profile's
    /// nominal read latency the thread sleeps before it starts
    /// spinning (io_uring's `hybrid_poll` knob). Integer percent keeps
    /// the derived sleep deterministic across platforms.
    pub hybrid_sleep_percent: u32,
}

impl AfaConfig {
    /// The paper's §III setup at a given tuning stage: 64 SSDs, the
    /// Fig. 5 geometry, CentOS-7-like background noise, 120 s runs.
    pub fn paper(stage: TuningStage) -> Self {
        AfaConfig {
            geometry: CpuSsdGeometry::paper(64),
            tuning: Tuning::new(stage),
            background: BackgroundConfig::centos7_desktop(),
            runtime: SimDuration::secs(120),
            seed: 42,
            log_latency: false,
            engine: IoEngine::Libaio,
            rw: RwPattern::RandRead,
            block_size: 4096,
            iodepth: 1,
            firmware_override: None,
            tick_override: None,
            idle_override: None,
            rate_iops: None,
            rcu_override: None,
            kernel_override: None,
            irq_coalescing: None,
            jobs_override: None,
            trace_ios: 0,
            attribute_causes: false,
            ledger_log: 0,
            afa_socket: 1,
            device_profile: DeviceProfile::Table1,
            hybrid_sleep_percent: 50,
        }
    }

    /// The hybrid-poll sleep this config implies: the sleep fraction
    /// applied to the device profile's nominal read latency.
    pub fn hybrid_sleep(&self) -> SimDuration {
        let nominal = self.device_profile.nominal_read_latency();
        SimDuration::nanos(nominal.as_nanos() * self.hybrid_sleep_percent as u64 / 100)
    }

    /// Caps each job's issue rate (fio's `rate_iops`).
    pub fn with_rate_iops(mut self, iops: u64) -> Self {
        self.rate_iops = Some(iops);
        self
    }

    /// Records blktrace-style stage timestamps for the first `n` I/Os.
    pub fn with_io_tracing(mut self, n: usize) -> Self {
        self.trace_ios = n;
        self
    }

    /// Captures the settled per-I/O ledgers of the first `n`
    /// completed I/Os.
    pub fn with_ledger_log(mut self, n: usize) -> Self {
        self.ledger_log = n;
        self
    }

    /// Enables NVMe interrupt coalescing on every device.
    pub fn with_irq_coalescing(mut self, coalescing: IrqCoalescing) -> Self {
        self.irq_coalescing = Some(coalescing);
        self
    }

    /// Runs an explicit job list (e.g. a parsed fio jobfile) instead
    /// of the config-generated per-device jobs. The geometry is
    /// derived from the jobs' `cpus_allowed` pinning.
    ///
    /// # Panics
    ///
    /// [`AfaSystem::run`](crate::AfaSystem::run) panics if two jobs
    /// target the same device or a job addresses a device beyond 64.
    pub fn with_jobs(mut self, jobs: Vec<JobSpec>) -> Self {
        self.jobs_override = Some(jobs);
        self
    }

    /// Enables per-cause latency attribution.
    pub fn with_cause_attribution(mut self, enable: bool) -> Self {
        self.attribute_causes = enable;
        self
    }

    /// Replaces the geometry with the paper mapping over `n` SSDs.
    pub fn with_ssds(mut self, n: usize) -> Self {
        self.geometry = CpuSsdGeometry::paper(n);
        self
    }

    /// Sets the per-job run time.
    pub fn with_runtime(mut self, runtime: SimDuration) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an explicit geometry (Table II rows).
    pub fn with_geometry(mut self, geometry: CpuSsdGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Sets the background workload.
    pub fn with_background(mut self, background: BackgroundConfig) -> Self {
        self.background = background;
        self
    }

    /// Enables per-sample latency logging.
    pub fn with_logging(mut self, log: bool) -> Self {
        self.log_latency = log;
        self
    }

    /// Sets the completion model.
    pub fn with_engine(mut self, engine: IoEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Installs custom firmware on every device (housekeeping
    /// ablations).
    pub fn with_firmware(mut self, firmware: afa_ssd::FirmwareProfile) -> Self {
        self.firmware_override = Some(firmware);
        self
    }

    /// Sets the I/O mix.
    pub fn with_rw(mut self, rw: RwPattern) -> Self {
        self.rw = rw;
        self
    }

    /// Selects the device class for every SSD in the array.
    pub fn with_device_profile(mut self, profile: DeviceProfile) -> Self {
        self.device_profile = profile;
        self
    }

    /// Sets the hybrid-poll sleep fraction (percent of the device's
    /// nominal read latency; io_uring's `hybrid_poll` knob).
    ///
    /// # Panics
    ///
    /// Panics if above 100.
    pub fn with_hybrid_sleep_percent(mut self, percent: u32) -> Self {
        assert!(percent <= 100, "sleep fraction is a percentage");
        self.hybrid_sleep_percent = percent;
        self
    }
}
