//! System assembly and experiments for the AFA reproduction.
//!
//! This crate is the paper's contribution as a library. It wires the
//! substrates together — [`afa_ssd`] devices behind an [`afa_pcie`]
//! fabric, driven by [`afa_workload`] jobs scheduled on an
//! [`afa_host`] host — and exposes:
//!
//! * [`CpuSsdGeometry`] — the Fig. 5 CPU↔SSD mapping (64 SSDs on 32
//!   logical CPUs, two fio threads per logical core) and the Table II
//!   run matrix,
//! * [`Tuning`] / [`TuningStage`] — the paper's cumulative tuning
//!   ladder: default → `chrt` → `isolcpus` → IRQ pinning →
//!   experimental firmware,
//! * [`AfaSystem`] — the whole-array discrete-event simulation,
//! * [`experiment`] — one runner per table and figure of the paper's
//!   evaluation (Fig. 6–14, Table I, Table II) plus the ablations
//!   listed in `DESIGN.md`,
//! * [`profiler`] — the §V/§VI parallel SSD-profiling framework
//!   ("x10 or even x100 faster" device characterization).
//!
//! # Example
//!
//! ```no_run
//! use afa_core::{AfaConfig, AfaSystem, TuningStage};
//! use afa_sim::SimDuration;
//!
//! let config = AfaConfig::paper(TuningStage::IrqAffinity)
//!     .with_ssds(8)
//!     .with_runtime(SimDuration::secs(1));
//! let result = AfaSystem::run(&config);
//! for (device, report) in result.reports.iter().enumerate() {
//!     println!("{}", report.to_fio_style(&format!("nvme{device}")));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blktrace;
pub mod calibration;
mod config;
pub mod experiment;
mod geometry;
pub mod io_path;
pub mod partition;
pub mod profiler;
mod system;
mod tuning;

pub use config::{AfaConfig, IrqCoalescing};
pub use geometry::{CpuSsdGeometry, Table2Row};
pub use partition::{FusionOverride, PlanOverride, PlanSpec};
pub use system::{AfaSystem, RunResult, ThreadsOverride};
pub use tuning::{Tuning, TuningStage};
