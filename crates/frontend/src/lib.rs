//! Client-request serving layer for the AFA reproduction.
//!
//! §I of the paper motivates the whole study at exactly this layer:
//! "one request from a client is divided into multiple I/Os, which are
//! then distributed to many SSDs in parallel as in RAID. In such a
//! setting, long tail latency of the slowest SSD would decide system's
//! overall responsiveness." The per-SSD experiments stop at fio jobs;
//! this crate is the NVMe-oF-target-like tier above `afa-volume` that
//! actually serves client requests, so the tail-at-scale effect can be
//! measured at the request level:
//!
//! * [`ArrivalGen`] — open-loop arrival generators (Poisson, bursty
//!   Markov-modulated on/off, fixed-rate) over the
//!   [`ArrivalProcess`](afa_workload::ArrivalProcess) vocabulary,
//! * [`TenantSpec`] — per-tenant traffic contract: arrival process,
//!   token-bucket rate limit, bounded admission queue, dequeue weight,
//!   and an SLO target,
//! * [`TokenBucket`] / [`AdmissionQueue`] / [`WeightedScheduler`] —
//!   the admission/QoS path: lazy-refill rate limiting, shed-on-overflow
//!   accounting, weighted deficit round-robin dequeue,
//! * [`RequestBook`] / [`HedgePolicy`] — striped fan-out bookkeeping
//!   parked on a free-listed [`HandleSlab`] with first-completion-wins
//!   hedged reads, plus the per-request cause ledger
//!   ([`RequestLedger`]),
//! * [`HandleSlab`] / [`Handle`] — the generation-checked slab the
//!   book (and any fleet-scale side table) parks state on,
//! * [`ArrivalWheel`] — the batched arrival calendar that turns a
//!   million pending tenant arrivals into one tick per slot boundary,
//! * [`SloTarget`] / [`SloTracker`] / [`SloReport`] — per-tenant online
//!   p50/p99/p99.9/6-nines accounting against configured targets.
//!
//! The whole-system serving experiments (`tailscale-fanout`,
//! `tailscale-hedge`) live in `afa-core::experiment`; this crate holds
//! the deterministic mechanisms, all seeded from `afa_sim::rng`
//! streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod qos;
mod request;
mod slab;
mod slo;
mod tenant;
mod wheel;

pub use arrival::ArrivalGen;
pub use qos::{AdmissionQueue, TokenBucket, WeightedScheduler};
pub use request::{FinishedSummary, HedgePolicy, RequestBook, RequestLedger, SubCompletion};
pub use slab::{Handle, HandleSlab};
pub use slo::{SloReport, SloTarget, SloTracker};
pub use tenant::TenantSpec;
pub use wheel::{ArrivalEntry, ArrivalWheel};
