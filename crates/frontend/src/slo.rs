//! Per-tenant SLO accounting.
//!
//! Each tenant is judged online against a configured latency target at
//! p50/p99/p99.9/6-nines. The tracker is a thin deterministic layer
//! over [`afa_stats::TailStats`] — the exact histogram by default (so
//! the report is a pure function of the recorded samples and
//! serializes byte-stably), or a [`QuantileSketch`] per tenant in the
//! fleet experiments, where 10⁵–10⁶ trackers must fit in memory.
//!
//! [`QuantileSketch`]: afa_stats::QuantileSketch

use afa_sim::SimDuration;
use afa_stats::json::Json;
use afa_stats::TailStats;

/// The percentile points an SLO is judged at, with stable keys.
const SLO_POINTS: [(&str, f64); 4] = [
    ("p50", 50.0),
    ("p99", 99.0),
    ("p99.9", 99.9),
    ("p99.9999", 99.9999),
];

/// A tenant's latency targets (nanoseconds) at the four SLO points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloTarget {
    /// Median target.
    pub p50_ns: u64,
    /// 99% target.
    pub p99_ns: u64,
    /// 99.9% target.
    pub p999_ns: u64,
    /// 99.9999% ("6-nines") target.
    pub p6n_ns: u64,
}

impl SloTarget {
    /// A read-serving default sized for the paper's device: ~90 µs
    /// median, 1 ms p99, 5 ms p99.9, 20 ms at 6-nines.
    pub fn default_read() -> Self {
        SloTarget {
            p50_ns: 90_000,
            p99_ns: 1_000_000,
            p999_ns: 5_000_000,
            p6n_ns: 20_000_000,
        }
    }

    /// The target at the `i`-th SLO point, in [`SLO_POINTS`] order.
    fn target_ns(&self, i: usize) -> u64 {
        [self.p50_ns, self.p99_ns, self.p999_ns, self.p6n_ns][i]
    }
}

/// Online per-tenant request-latency accounting against an
/// [`SloTarget`].
#[derive(Clone, Debug)]
pub struct SloTracker {
    target: SloTarget,
    stats: TailStats,
}

impl SloTracker {
    /// Creates a tracker judging against `target` over the exact
    /// histogram (the byte-stable default).
    pub fn new(target: SloTarget) -> Self {
        SloTracker {
            target,
            stats: TailStats::exact(),
        }
    }

    /// Creates a tracker judging against `target` over a streaming
    /// quantile sketch: <1 KiB per tenant instead of ~50 KiB, at the
    /// sketch's bounded relative error. The fleet experiments use this
    /// mode for their per-tenant trackers.
    pub fn sketched(target: SloTarget) -> Self {
        SloTracker {
            target,
            stats: TailStats::sketched(),
        }
    }

    /// Whether this tracker runs on the sketch rather than the exact
    /// histogram.
    pub fn is_sketch(&self) -> bool {
        self.stats.is_sketch()
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: SimDuration) {
        self.stats.record(latency.as_nanos());
    }

    /// Requests recorded so far.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Folds another same-mode tracker's samples into this one (O(1)
    /// in sample count for sketch mode) — cross-tenant rollups.
    ///
    /// # Panics
    ///
    /// Panics when the modes differ.
    pub fn absorb(&mut self, other: &SloTracker) {
        self.stats.merge(&other.stats);
    }

    /// This tracker's resident footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<SloTarget>() + self.stats.size_bytes()
    }

    /// Snapshots the achieved-vs-target report.
    pub fn report(&self) -> SloReport {
        let mut achieved_ns = [0u64; 4];
        let mut met = [true; 4];
        for (i, &(_, pct)) in SLO_POINTS.iter().enumerate() {
            achieved_ns[i] = self.stats.value_at_percentile(pct);
            met[i] = achieved_ns[i] <= self.target.target_ns(i);
        }
        SloReport {
            samples: self.stats.count(),
            target: self.target,
            achieved_ns,
            met,
        }
    }
}

/// Achieved latency vs target at each SLO point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloReport {
    /// Requests the report was computed from.
    pub samples: u64,
    /// The judged-against targets.
    pub target: SloTarget,
    /// Achieved latency (ns) at each point, in p50/p99/p99.9/6-nines
    /// order.
    pub achieved_ns: [u64; 4],
    /// Whether each point met its target.
    pub met: [bool; 4],
}

impl SloReport {
    /// Whether every SLO point met its target.
    pub fn all_met(&self) -> bool {
        self.met.iter().all(|&m| m)
    }

    /// Renders the report as a JSON object:
    /// `{"samples": …, "points": [{"point", "target_ns", "achieved_ns",
    /// "met"}, …]}`.
    pub fn to_json(&self) -> Json {
        let points = SLO_POINTS.iter().enumerate().map(|(i, &(key, _))| {
            Json::obj([
                ("point", Json::str(key)),
                ("target_ns", Json::u64(self.target.target_ns(i))),
                ("achieved_ns", Json::u64(self.achieved_ns[i])),
                ("met", Json::Bool(self.met[i])),
            ])
        });
        Json::obj([
            ("samples", Json::u64(self.samples)),
            ("points", Json::arr(points)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meets_targets_when_fast() {
        let mut t = SloTracker::new(SloTarget::default_read());
        for _ in 0..10_000 {
            t.record(SimDuration::micros(80));
        }
        let r = t.report();
        assert!(r.all_met(), "uniform 80us beats every target: {r:?}");
        assert_eq!(r.samples, 10_000);
    }

    #[test]
    fn tail_violation_is_flagged_at_the_right_point() {
        let mut t = SloTracker::new(SloTarget::default_read());
        // 99.5% fast, 0.5% at 8 ms: p50/p99 met, the 5 ms p99.9
        // target violated.
        for i in 0..10_000u64 {
            if i % 200 == 0 {
                t.record(SimDuration::millis(8));
            } else {
                t.record(SimDuration::micros(70));
            }
        }
        let r = t.report();
        assert!(r.met[0], "p50 met");
        assert!(r.met[1], "p99 met");
        assert!(!r.met[2], "p99.9 violated by the 8ms tail");
        assert!(!r.all_met());
    }

    #[test]
    fn sketched_tracker_is_small_and_close() {
        let mut exact = SloTracker::new(SloTarget::default_read());
        let mut lean = SloTracker::sketched(SloTarget::default_read());
        assert!(lean.is_sketch() && !exact.is_sketch());
        for i in 1..=20_000u64 {
            let lat = SimDuration::micros(50 + i % 400);
            exact.record(lat);
            lean.record(lat);
        }
        let (re, rl) = (exact.report(), lean.report());
        assert_eq!(re.samples, rl.samples);
        for i in 0..4 {
            let (e, l) = (re.achieved_ns[i] as f64, rl.achieved_ns[i] as f64);
            assert!((e - l).abs() / e < 0.06, "point {i}: {e} vs {l}");
        }
        assert!(lean.size_bytes() < 1024, "{} bytes", lean.size_bytes());
        // Rollup: absorbing doubles the count.
        let snapshot = lean.clone();
        lean.absorb(&snapshot);
        assert_eq!(lean.count(), 40_000);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut t = SloTracker::new(SloTarget::default_read());
        t.record(SimDuration::micros(100));
        let doc = t.report().to_json();
        assert_eq!(doc.get("samples"), Some(&Json::u64(1)));
        let rendered = doc.to_string();
        assert!(rendered.contains("\"point\":\"p99.9999\""));
        assert!(rendered.contains("\"met\""));
    }
}
