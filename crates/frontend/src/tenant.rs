//! Per-tenant traffic contracts.

use afa_workload::ArrivalProcess;

use crate::slo::SloTarget;

/// One tenant's contract with the frontend: how its requests arrive,
/// how much it may send, how much may queue, its dequeue weight, and
/// the latency SLO it is judged against.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Short stable name used in reports ("latency", "bursty", …).
    pub name: &'static str,
    /// Open-loop arrival process.
    pub process: ArrivalProcess,
    /// Token-bucket admission rate, requests per second; `None`
    /// disables rate limiting for this tenant.
    pub rate_limit: Option<f64>,
    /// Token-bucket burst capacity (requests), when rate-limited.
    pub burst: f64,
    /// Bounded admission-queue capacity (requests).
    pub queue_cap: usize,
    /// Weighted-dequeue share relative to other tenants.
    pub weight: u32,
    /// Latency targets this tenant is judged against.
    pub slo: SloTarget,
}

impl TenantSpec {
    /// A tenant with the given name, arrival process and weight, no
    /// rate limit, a 64-deep queue, and the default SLO.
    pub fn new(name: &'static str, process: ArrivalProcess, weight: u32) -> Self {
        process.validate();
        assert!(weight > 0, "tenant weight must be positive");
        TenantSpec {
            name,
            process,
            rate_limit: None,
            burst: 1.0,
            queue_cap: 64,
            weight,
            slo: SloTarget::default_read(),
        }
    }

    /// Adds a token-bucket rate limit.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or a burst below one request.
    pub fn rate_limited(mut self, rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0, "rate limit must be positive");
        assert!(burst >= 1.0, "burst must allow at least one request");
        self.rate_limit = Some(rate_per_sec);
        self.burst = burst;
        self
    }

    /// Sets the admission-queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_cap = cap;
        self
    }

    /// Sets the latency SLO target.
    pub fn slo_target(mut self, slo: SloTarget) -> Self {
        self.slo = slo;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let t = TenantSpec::new("latency", ArrivalProcess::Poisson { rate: 2_000.0 }, 4)
            .rate_limited(2_500.0, 8.0)
            .queue_capacity(32);
        assert_eq!(t.name, "latency");
        assert_eq!(t.weight, 4);
        assert_eq!(t.rate_limit, Some(2_500.0));
        assert_eq!(t.queue_cap, 32);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_rejected() {
        TenantSpec::new("x", ArrivalProcess::Poisson { rate: 1.0 }, 0);
    }
}
