//! Free-listed slab with generation-checked handles — the serving
//! layer's allocation-free parking lot for in-flight request state.
//!
//! The pre-fleet [`RequestBook`](crate::RequestBook) kept every open
//! request in a `HashMap<u64, OpenRequest>` plus a side `HashSet` for
//! hedge losers: two hash probes per completion and a heap
//! allocation per request. This slab replaces both. Slots are
//! recycled through a free list and **keep their values allocated
//! when vacated**, so a request's `Vec` of sub-I/O states is reused by
//! the next request that lands in the slot — after warm-up the book
//! allocates nothing. Handles embed a 32-bit generation stamped into
//! the slot at insert and bumped at free, so a completion addressed to
//! a dead request (the loser of a hedge race) misses cleanly instead
//! of corrupting the slot's new occupant — the same discipline the
//! core engine's event slab has used since the timing-wheel PR.

/// A generation-checked reference to a slab slot: slot index in the
/// low 32 bits, generation in the high 32. Stale handles (the slot
/// was freed, maybe reoccupied) fail the generation check and resolve
/// to `None` rather than aliasing the new occupant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Handle(u64);

impl Handle {
    /// The raw 64-bit encoding (stable for the handle's lifetime);
    /// round-trips through [`Handle::from_raw`].
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`Handle::raw`]'s encoding.
    pub fn from_raw(raw: u64) -> Self {
        Handle(raw)
    }

    /// The slot index this handle points at — dense in `0..slots()`,
    /// usable as a direct index into side tables that shadow the slab.
    pub fn index(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn new(index: u32, gen: u32) -> Self {
        Handle(u64::from(gen) << 32 | u64::from(index))
    }
}

#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    occupied: bool,
    value: T,
}

/// A free-listed slab of `T` handing out generation-checked
/// [`Handle`]s. Vacated slots keep their `T` allocated for reuse;
/// steady state performs no allocation once the high-water mark is
/// reached.
#[derive(Debug)]
pub struct HandleSlab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
}

impl<T> Default for HandleSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HandleSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        HandleSlab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
        }
    }

    /// Claims a slot — recycling a vacated one (its previous `T`
    /// intact, ready for in-place reuse) or growing the slab with
    /// `fresh()` — and returns its handle plus the value to fill in.
    pub fn claim(&mut self, fresh: impl FnOnce() -> T) -> (Handle, &mut T) {
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "slab full");
                self.slots.push(Slot {
                    gen: 0,
                    occupied: false,
                    value: fresh(),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[index as usize];
        debug_assert!(!slot.occupied);
        slot.occupied = true;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        (Handle::new(index, slot.gen), &mut slot.value)
    }

    /// Resolves a handle to its value, or `None` if the handle is
    /// stale (freed, possibly reoccupied by a later claim).
    pub fn get(&self, h: Handle) -> Option<&T> {
        let slot = self.slots.get(h.index())?;
        (slot.occupied && slot.gen == h.gen()).then_some(&slot.value)
    }

    /// Mutable [`HandleSlab::get`].
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        let slot = self.slots.get_mut(h.index())?;
        (slot.occupied && slot.gen == h.gen()).then_some(&mut slot.value)
    }

    /// Frees the slot behind `h`, bumping its generation so `h` (and
    /// any copy of it) goes stale. The value stays allocated for the
    /// next claim. Returns `false` if the handle was already stale.
    pub fn free(&mut self, h: Handle) -> bool {
        let index = h.index();
        let Some(slot) = self.slots.get_mut(index) else {
            return false;
        };
        if !slot.occupied || slot.gen != h.gen() {
            return false;
        }
        slot.occupied = false;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(index as u32);
        self.live -= 1;
        true
    }

    /// Occupied slots right now.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of concurrently occupied slots.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total slots ever allocated (the slab's footprint; never
    /// shrinks).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Resident bytes of the slab's own structures (slot array + free
    /// list), excluding any heap owned by the `T`s themselves.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_get_free_roundtrip() {
        let mut slab: HandleSlab<Vec<u32>> = HandleSlab::new();
        let (h, v) = slab.claim(Vec::new);
        v.extend([1, 2, 3]);
        assert_eq!(slab.get(h).unwrap(), &[1, 2, 3]);
        assert_eq!(slab.live(), 1);
        assert!(slab.free(h));
        assert_eq!(slab.live(), 0);
        assert!(slab.get(h).is_none(), "freed handle is stale");
        assert!(!slab.free(h), "double free is a miss, not a panic");
    }

    #[test]
    fn recycled_slot_keeps_allocation_and_changes_generation() {
        let mut slab: HandleSlab<Vec<u32>> = HandleSlab::new();
        let (h1, v) = slab.claim(Vec::new);
        v.extend([7; 64]);
        let cap = slab.get(h1).unwrap().capacity();
        slab.free(h1);
        let (h2, v2) = slab.claim(Vec::new);
        assert_eq!(h1.index(), h2.index(), "free list recycles the slot");
        assert_ne!(h1.raw(), h2.raw(), "generation differs");
        assert!(v2.capacity() >= cap, "vacated value kept its buffer");
        v2.clear();
        assert!(slab.get(h1).is_none(), "old handle misses new occupant");
        assert!(slab.get(h2).is_some());
    }

    #[test]
    fn peak_live_tracks_high_water_mark() {
        let mut slab: HandleSlab<u64> = HandleSlab::new();
        let hs: Vec<_> = (0..10).map(|i| slab.claim(|| i).0).collect();
        assert_eq!(slab.peak_live(), 10);
        for h in &hs[..8] {
            slab.free(*h);
        }
        assert_eq!(slab.live(), 2);
        slab.claim(|| 99);
        assert_eq!(slab.peak_live(), 10, "peak survives drain");
        assert_eq!(slab.slots(), 10, "no growth while free slots exist");
    }

    #[test]
    fn handle_raw_roundtrip() {
        let mut slab: HandleSlab<()> = HandleSlab::new();
        let (h, ()) = slab.claim(|| ());
        slab.free(h);
        let (h2, ()) = slab.claim(|| ());
        let back = Handle::from_raw(h2.raw());
        assert_eq!(back, h2);
        assert!(slab.get(back).is_some());
        assert!(slab.get(Handle::from_raw(h.raw())).is_none());
    }
}
