//! Admission control and QoS scheduling.
//!
//! Open-loop arrivals make back-pressure impossible — the clients do
//! not wait — so the frontend needs an explicit admission path:
//! a [`TokenBucket`] rate limit per tenant, a bounded
//! [`AdmissionQueue`] that sheds on overflow (with accounting), and a
//! [`WeightedScheduler`] (weighted deficit round-robin) deciding whose
//! queued request dispatches next.

use std::collections::VecDeque;

use afa_sim::SimTime;

/// A token-bucket rate limiter with lazy refill: tokens accrue as a
/// pure function of elapsed simulated time, so no refill events are
/// scheduled and determinism is free.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate_per_sec` with capacity
    /// `burst`, starting full at time zero.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or burst.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        assert!(rate_per_sec > 0.0, "token rate must be positive");
        assert!(burst >= 1.0, "burst must allow at least one request");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last_refill: SimTime::ZERO,
        }
    }

    /// Takes one token at `now` if available. Returns `false` — the
    /// request must be shed — when the bucket is empty.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.burst);
        self.last_refill = self.last_refill.max(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after the last refill).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

/// A bounded FIFO admission queue that sheds on overflow and counts
/// both outcomes.
#[derive(Clone, Debug)]
pub struct AdmissionQueue<T> {
    items: VecDeque<T>,
    cap: usize,
    admitted: u64,
    shed: u64,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue holding at most `cap` requests.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "admission queue needs capacity");
        AdmissionQueue {
            items: VecDeque::with_capacity(cap),
            cap,
            admitted: 0,
            shed: 0,
        }
    }

    /// Admits `item`, or sheds it (returning `false`) when full.
    pub fn offer(&mut self, item: T) -> bool {
        if self.items.len() >= self.cap {
            self.shed += 1;
            false
        } else {
            self.items.push_back(item);
            self.admitted += 1;
            true
        }
    }

    /// Counts a shed that happened before the queue (e.g. a token
    /// bucket refusal), so one counter covers the whole admission path.
    pub fn count_shed(&mut self) {
        self.shed += 1;
    }

    /// Dequeues the oldest admitted request.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total requests shed so far (overflow plus counted refusals).
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

/// Weighted deficit round-robin over N tenants with unit-cost
/// requests: each full cycle replenishes every tenant's deficit by its
/// weight, an empty queue forfeits its credit, and the next non-empty
/// tenant with credit is served.
#[derive(Clone, Debug)]
pub struct WeightedScheduler {
    weights: Vec<u32>,
    deficits: Vec<u64>,
    cursor: usize,
}

impl WeightedScheduler {
    /// Creates a scheduler for tenants with the given weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is zero.
    pub fn new(weights: &[u32]) -> Self {
        assert!(!weights.is_empty(), "scheduler needs at least one tenant");
        assert!(
            weights.iter().all(|&w| w > 0),
            "tenant weights must be positive"
        );
        WeightedScheduler {
            weights: weights.to_vec(),
            deficits: vec![0; weights.len()],
            cursor: 0,
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.weights.len()
    }

    /// Picks the tenant whose queued request dispatches next, given
    /// which tenants currently have work. Returns `None` when no one
    /// does.
    pub fn pick(&mut self, has_work: &[bool]) -> Option<usize> {
        assert_eq!(has_work.len(), self.weights.len(), "tenant count mismatch");
        if !has_work.iter().any(|&b| b) {
            return None;
        }
        // At most two full cycles: one to drain stale credit, then a
        // replenish guarantees some backlogged tenant can be served.
        let n = self.weights.len();
        let mut scanned = 0;
        loop {
            let t = self.cursor;
            if has_work[t] && self.deficits[t] > 0 {
                self.deficits[t] -= 1;
                return Some(t);
            }
            if !has_work[t] {
                // WDRR: an idle tenant forfeits accumulated credit.
                self.deficits[t] = 0;
            }
            self.cursor = (self.cursor + 1) % n;
            scanned += 1;
            if scanned % n == 0 {
                for (d, &w) in self.deficits.iter_mut().zip(self.weights.iter()) {
                    *d += u64::from(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afa_sim::SimDuration;

    #[test]
    fn bucket_starts_full_and_refills_lazily() {
        let mut b = TokenBucket::new(1_000.0, 2.0);
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst of 2 exhausted");
        // 1 ms at 1000/s refills one token.
        let t1 = t0 + SimDuration::millis(1);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1_000.0, 4.0);
        let later = SimTime::ZERO + SimDuration::secs(60);
        for _ in 0..4 {
            assert!(b.try_take(later));
        }
        assert!(!b.try_take(later), "idle time must not exceed burst");
    }

    #[test]
    fn queue_sheds_on_overflow() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.offer(1));
        assert!(q.offer(2));
        assert!(!q.offer(3), "third must shed");
        assert_eq!(q.admitted(), 2);
        assert_eq!(q.shed(), 1);
        assert_eq!(q.pop(), Some(1));
        assert!(q.offer(3));
        assert_eq!(q.len(), 2);
        q.count_shed();
        assert_eq!(q.shed(), 2);
    }

    #[test]
    fn wdrr_serves_proportionally() {
        let mut s = WeightedScheduler::new(&[3, 1]);
        let mut served = [0u32; 2];
        for _ in 0..400 {
            let t = s.pick(&[true, true]).expect("both have work");
            served[t] += 1;
        }
        assert_eq!(served[0] + served[1], 400);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "3:1 weights, got {served:?}");
    }

    #[test]
    fn wdrr_skips_idle_tenants_without_starving() {
        let mut s = WeightedScheduler::new(&[1, 8]);
        // Only tenant 0 has work: it must always be served.
        for _ in 0..50 {
            assert_eq!(s.pick(&[true, false]), Some(0));
        }
        // Tenant 1 wakes up: it gets its share, tenant 0 still runs.
        let mut served = [0u32; 2];
        for _ in 0..90 {
            served[s.pick(&[true, true]).expect("work exists")] += 1;
        }
        assert!(served[0] >= 8, "low-weight tenant must not starve");
        assert!(served[1] > served[0], "weights must bias service");
    }

    #[test]
    fn wdrr_returns_none_when_idle() {
        let mut s = WeightedScheduler::new(&[1, 1]);
        assert_eq!(s.pick(&[false, false]), None);
    }
}
