//! Batched arrival wheel: a rotating calendar that feeds admission in
//! slot-batched time order.
//!
//! The pre-fleet experiments schedule **one simulator event per tenant
//! arrival**. At 10⁴ open-loop tenants that is already most of the
//! event budget; at 10⁶ it is the scaling wall — a million idle
//! tenants would sit as a million queued events. The wheel inverts
//! that: arrivals are plain 16-byte entries in calendar slots, the
//! simulator carries **one** tick event per non-empty slot boundary,
//! and a drain hands the slot's arrivals to admission sorted by
//! `(arrival time, insertion order)`. A million idle tenants cost a
//! calendar entry each — and tenants whose next arrival falls beyond
//! the run deadline cost nothing at all, because the caller simply
//! never inserts them.
//!
//! Far-future arrivals (beyond the current rotation's span) park in
//! per-rotation overflow buckets and are distributed into slots when
//! the wheel wraps — O(1) amortized per entry, no rescans.
//!
//! The slot width is the admission quantum: an arrival is *processed*
//! at its slot's end boundary but carries its true arrival time, so
//! queueing-delay accounting stays exact while the event count drops
//! to one per slot.

use std::collections::VecDeque;

use afa_sim::{SimDuration, SimTime};

/// One pending arrival: when, which tenant, and the tenant's arrival
/// sequence number (`k`-th arrival), which the caller uses to derive
/// the next inter-arrival gap statelessly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrivalEntry {
    /// The arrival's true timestamp.
    pub at: SimTime,
    /// Tenant index.
    pub tenant: u32,
    /// Per-tenant arrival sequence number.
    pub k: u32,
}

#[derive(Clone, Copy, Debug)]
struct Parked {
    at: SimTime,
    seq: u64,
    tenant: u32,
    k: u32,
}

/// A rotating calendar wheel of pending tenant arrivals.
#[derive(Debug)]
pub struct ArrivalWheel {
    slot_ns: u64,
    /// Current rotation, indexed by slot.
    slots: Vec<Vec<Parked>>,
    /// Overflow for future rotations: `far[r]` holds entries landing
    /// `r + 1` rotations ahead of the current one.
    far: VecDeque<Vec<Parked>>,
    /// Slot index the wheel has drained up to (entries only land in
    /// `cursor..` within the current rotation).
    cursor: usize,
    /// Sim-time of the current rotation's slot 0 start.
    origin: SimTime,
    /// Monotone insertion counter for stable within-slot ordering.
    seq: u64,
    len: usize,
    /// Pushes whose timestamp fell at or before the drained horizon;
    /// they clamp into the cursor slot instead of being lost.
    clamped: u64,
    scratch: Vec<Parked>,
}

impl ArrivalWheel {
    /// Creates a wheel of `slots` slots of `slot_ns` nanoseconds each,
    /// starting at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `slot_ns` or `slots` is zero.
    pub fn new(slot_ns: u64, slots: usize) -> Self {
        assert!(slot_ns > 0, "slot width must be positive");
        assert!(slots > 0, "need at least one slot");
        ArrivalWheel {
            slot_ns,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            far: VecDeque::new(),
            cursor: 0,
            origin: SimTime::ZERO,
            seq: 0,
            len: 0,
            clamped: 0,
            scratch: Vec::new(),
        }
    }

    /// The wheel's slot width in nanoseconds — the admission quantum.
    pub fn slot_ns(&self) -> u64 {
        self.slot_ns
    }

    /// Pending arrivals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no arrivals are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes whose timestamps were already behind the drain horizon
    /// (clamped into the next drain rather than dropped).
    pub fn clamped_past(&self) -> u64 {
        self.clamped
    }

    /// Resident bytes of the wheel's slot ring, overflow buckets, and
    /// scratch — the wheel's contribution to the fleet memory story.
    pub fn footprint_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Parked>();
        std::mem::size_of::<Self>()
            + self.slots.capacity() * std::mem::size_of::<Vec<Parked>>()
            + self
                .slots
                .iter()
                .map(|s| s.capacity() * entry)
                .sum::<usize>()
            + self.far.capacity() * std::mem::size_of::<Vec<Parked>>()
            + self.far.iter().map(|s| s.capacity() * entry).sum::<usize>()
            + self.scratch.capacity() * entry
    }

    /// Inserts an arrival. Timestamps behind the drain horizon clamp
    /// into the cursor slot (and count in [`ArrivalWheel::clamped_past`]);
    /// everything else lands in the slot containing `at`, parking in a
    /// per-rotation overflow bucket when `at` is beyond the current
    /// rotation.
    pub fn push(&mut self, at: SimTime, tenant: u32, k: u32) {
        let entry = Parked {
            at,
            seq: self.seq,
            tenant,
            k,
        };
        self.seq += 1;
        self.len += 1;
        let rel = (at.as_nanos().saturating_sub(self.origin.as_nanos()) / self.slot_ns) as usize;
        let n = self.slots.len();
        if rel < self.cursor {
            self.clamped += 1;
            self.slots[self.cursor].push(entry);
        } else if rel < n {
            self.slots[rel].push(entry);
        } else {
            let rotation = rel / n - 1;
            if rotation >= self.far.len() {
                self.far.resize_with(rotation + 1, Vec::new);
            }
            self.far[rotation].push(entry);
        }
    }

    /// Drains every arrival with `at <= now` into `out`, sorted by
    /// `(at, insertion order)`, advancing the cursor (and rotating,
    /// promoting overflow buckets) as slot boundaries pass. Entries
    /// pushed during processing with timestamps at or before `now`
    /// are picked up by the next call — callers drive
    /// `drain_due` in a loop until it returns 0.
    pub fn drain_due(&mut self, now: SimTime, out: &mut Vec<ArrivalEntry>) -> usize {
        let mut scratch = std::mem::take(&mut self.scratch);
        debug_assert!(scratch.is_empty());
        loop {
            let end = self.origin + SimDuration::nanos((self.cursor as u64 + 1) * self.slot_ns);
            if end > now {
                break;
            }
            scratch.append(&mut self.slots[self.cursor]);
            self.cursor += 1;
            if self.cursor == self.slots.len() {
                self.cursor = 0;
                self.origin += SimDuration::nanos(self.slots.len() as u64 * self.slot_ns);
                if let Some(mut bucket) = self.far.pop_front() {
                    for e in bucket.drain(..) {
                        let rel =
                            ((e.at.as_nanos() - self.origin.as_nanos()) / self.slot_ns) as usize;
                        debug_assert!(rel < self.slots.len());
                        self.slots[rel].push(e);
                    }
                    // Keep the emptied bucket's allocation for reuse
                    // at the back of the overflow queue.
                    self.far.push_back(bucket);
                }
            }
        }
        // Partial drain of the cursor slot: clamped (or sub-slot)
        // entries that are already due even though the slot's end
        // boundary has not passed.
        let slot = &mut self.slots[self.cursor];
        let mut i = 0;
        while i < slot.len() {
            if slot[i].at <= now {
                scratch.push(slot.swap_remove(i));
            } else {
                i += 1;
            }
        }
        scratch.sort_unstable_by_key(|e| (e.at, e.seq));
        let drained = scratch.len();
        self.len -= drained;
        out.extend(scratch.iter().map(|e| ArrivalEntry {
            at: e.at,
            tenant: e.tenant,
            k: e.k,
        }));
        scratch.clear();
        self.scratch = scratch;
        drained
    }

    /// The next tick time: the end boundary of the first slot that
    /// could hold a due arrival, or `None` when the wheel is empty.
    /// Guaranteed to be in the future of any `now` already passed to
    /// [`ArrivalWheel::drain_due`].
    pub fn next_due(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        for s in self.cursor..self.slots.len() {
            if !self.slots[s].is_empty() {
                return Some(self.origin + SimDuration::nanos((s as u64 + 1) * self.slot_ns));
            }
        }
        // The current rotation is clear; hop to the wrap boundary,
        // where the next overflow bucket is promoted into slots.
        Some(self.origin + SimDuration::nanos(self.slots.len() as u64 * self.slot_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn drains_in_time_then_insertion_order() {
        let mut w = ArrivalWheel::new(1_000, 16);
        w.push(t(2_500), 1, 0);
        w.push(t(500), 2, 0);
        w.push(t(2_500), 3, 0);
        let mut out = Vec::new();
        assert_eq!(w.drain_due(t(3_000), &mut out), 3);
        let got: Vec<_> = out.iter().map(|e| (e.at.as_nanos(), e.tenant)).collect();
        assert_eq!(got, vec![(500, 2), (2_500, 1), (2_500, 3)]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_entries_survive_rotation() {
        let mut w = ArrivalWheel::new(1_000, 4); // 4 µs span
        w.push(t(9_500), 7, 3); // two rotations ahead
        w.push(t(1_500), 1, 0);
        let mut out = Vec::new();
        assert_eq!(w.drain_due(t(2_000), &mut out), 1);
        assert_eq!(out[0].tenant, 1);
        out.clear();
        // Walk boundaries until the far entry surfaces.
        let mut now = t(2_000);
        while out.is_empty() {
            now = w.next_due().expect("entry still pending");
            w.drain_due(now, &mut out);
        }
        assert_eq!(
            out[0],
            ArrivalEntry {
                at: t(9_500),
                tenant: 7,
                k: 3
            }
        );
        assert!(now.as_nanos() >= 9_500 && now.as_nanos() <= 10_000);
    }

    #[test]
    fn past_pushes_clamp_into_next_drain() {
        let mut w = ArrivalWheel::new(1_000, 8);
        let mut out = Vec::new();
        w.push(t(1_500), 1, 0);
        w.drain_due(t(2_000), &mut out);
        out.clear();
        w.push(t(100), 9, 1); // behind the horizon
        assert_eq!(w.clamped_past(), 1);
        assert_eq!(w.drain_due(t(2_000), &mut out), 1, "due immediately");
        assert_eq!(out[0].tenant, 9);
    }

    #[test]
    fn sub_slot_chained_pushes_drain_same_tick() {
        let mut w = ArrivalWheel::new(1_000, 8);
        let mut out = Vec::new();
        w.push(t(900), 1, 0);
        assert_eq!(w.drain_due(t(1_000), &mut out), 1);
        // Processing the arrival schedules the tenant's next one
        // inside the already-elapsed window; a second drain pass at
        // the same tick picks it up.
        w.push(t(950), 1, 1);
        out.clear();
        assert_eq!(w.drain_due(t(1_000), &mut out), 1);
        assert_eq!(out[0].k, 1);
        assert_eq!(w.drain_due(t(1_000), &mut out), 0, "then dry");
    }

    #[test]
    fn next_due_is_always_ahead_of_the_drain_horizon() {
        let mut w = ArrivalWheel::new(1_000, 4);
        let mut out = Vec::new();
        w.push(t(700), 1, 0);
        w.push(t(6_200), 2, 0);
        w.push(t(33_100), 3, 0);
        let mut now = SimTime::ZERO;
        let mut seen = Vec::new();
        while let Some(due) = w.next_due() {
            assert!(due > now, "due {due:?} must advance past {now:?}");
            now = due;
            w.drain_due(now, &mut out);
            seen.extend(out.drain(..).map(|e| e.tenant));
        }
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn million_idle_entries_cost_memory_not_events() {
        // 100k parked arrivals spread over ~100 rotations: the wheel
        // holds them all, and next_due still answers from the slot
        // ring without touching the parked mass.
        let mut w = ArrivalWheel::new(1_000, 64);
        for i in 0..100_000u64 {
            w.push(t(1_000 + i * 61), (i % 7) as u32, 0);
        }
        assert_eq!(w.len(), 100_000);
        let mut out = Vec::new();
        let mut drained = 0;
        let mut now = SimTime::ZERO;
        while let Some(due) = w.next_due() {
            now = due;
            drained += w.drain_due(now, &mut out);
            out.clear();
        }
        assert_eq!(drained, 100_000);
        assert_eq!(w.clamped_past(), 0);
        assert!(w.footprint_bytes() > 0);
        let _ = now;
    }
}
