//! Striped fan-out bookkeeping, hedged reads, and the per-request
//! cause ledger.
//!
//! A client request maps through
//! [`StripedVolume`](afa_volume::StripedVolume) into per-SSD sub-I/Os;
//! [`RequestBook`] tracks them with first-completion-wins semantics so
//! a hedged duplicate and its original can race. The request's
//! latency is, exactly, its frontend queueing delay plus the settle
//! time of the slowest winning sub-I/O — the invariant
//! [`RequestLedger`] makes checkable per request.
//!
//! In-flight requests live on a [`HandleSlab`]: request ids are
//! generation-checked handles, so the book performs no hashing and —
//! once warm — no allocation per request, and a hedge loser's late
//! completion addresses a stale generation instead of needing a side
//! set. This is what lets the fleet experiments hold 10⁵–10⁶ tenants'
//! worth of traffic on a book whose footprint is the *concurrency*
//! high-water mark, not the tenant count.

use std::cell::Cell;

use afa_sim::trace::Cause;
use afa_sim::{SimDuration, SimTime};
use afa_stats::LatencyHistogram;
use afa_volume::SubIo;

use crate::slab::{Handle, HandleSlab};

/// Per-request wall-clock attribution over the shared [`Cause`]
/// vocabulary: where this request's latency went.
#[derive(Clone, Debug)]
pub struct RequestLedger {
    acc: [SimDuration; Cause::COUNT],
}

impl Default for RequestLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RequestLedger {
            acc: [SimDuration::ZERO; Cause::COUNT],
        }
    }

    /// Resets every charge to zero — in-place reuse when ledgers park
    /// on recycled slab slots.
    pub fn reset(&mut self) {
        self.acc = [SimDuration::ZERO; Cause::COUNT];
    }

    /// Charges `d` to `cause`.
    pub fn charge(&mut self, cause: Cause, d: SimDuration) {
        self.acc[cause as usize] += d;
    }

    /// Time charged to `cause` so far.
    pub fn get(&self, cause: Cause) -> SimDuration {
        self.acc[cause as usize]
    }

    /// Sum over all causes — must equal the request's measured latency
    /// when the charges tile it exactly.
    pub fn total(&self) -> SimDuration {
        self.acc.iter().copied().sum()
    }

    /// Iterates the non-zero `(cause, duration)` entries in
    /// [`Cause::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Cause, SimDuration)> + '_ {
        Cause::ALL
            .iter()
            .map(|&c| (c, self.acc[c as usize]))
            .filter(|(_, d)| !d.is_zero())
    }
}

/// Outcome of one sub-I/O completion delivered to a [`RequestBook`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubCompletion {
    /// This sub already completed — the loser of a hedge race. The
    /// completion is dropped (cancel accounting).
    Duplicate,
    /// The request still has other sub-I/Os outstanding.
    Pending,
    /// This was the last outstanding sub-I/O; the request is done.
    Finished(FinishedSummary),
}

/// A finished request: identity, timeline, and hedge outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FinishedSummary {
    /// Owning tenant index.
    pub tenant: usize,
    /// When the request arrived at the frontend.
    pub arrived_at: SimTime,
    /// When a dispatch worker pulled it off the admission queue.
    pub dispatched_at: SimTime,
    /// When the slowest winning sub-I/O completed.
    pub finished_at: SimTime,
    /// How many sub-I/Os the request fanned out into.
    pub fanout: u32,
    /// Whether a hedged duplicate was fired for this request.
    pub hedge_fired: bool,
    /// Whether the duplicate beat the original it hedged.
    pub hedge_won: bool,
}

impl FinishedSummary {
    /// End-to-end request latency (arrival to last sub completion).
    pub fn latency(&self) -> SimDuration {
        self.finished_at.saturating_since(self.arrived_at)
    }

    /// Time spent queued in the frontend before dispatch.
    pub fn queueing(&self) -> SimDuration {
        self.dispatched_at.saturating_since(self.arrived_at)
    }
}

/// Slab-parked per-request state. The `subs` vector is the only heap
/// the request owns, and the slab recycles it with the slot.
#[derive(Debug, Default)]
struct OpenRequest {
    tenant: usize,
    arrived_at: SimTime,
    dispatched_at: SimTime,
    subs: Vec<SubState>,
    /// Winning completions still owed before the request finishes.
    remaining: u32,
    /// Latest winning completion seen so far (the running max that
    /// becomes `finished_at`).
    latest: SimTime,
    hedge_fired: bool,
    hedge_won: bool,
    /// The hedge loser already arrived (and was dropped) before the
    /// request finished.
    hedge_resolved: bool,
}

#[derive(Clone, Copy, Debug)]
struct SubState {
    io: SubIo,
    done: bool,
    hedged: bool,
}

/// Tracks in-flight client requests above the volume layer: striped
/// fan-out with first-completion-wins hedging and the arrival/dispatch
/// timeline, parked on a free-listed [`HandleSlab`].
#[derive(Debug, Default)]
pub struct RequestBook {
    open: HandleSlab<OpenRequest>,
    /// Requests that finished while their hedge duplicate's loser was
    /// still in flight: exactly this many more completions will arrive
    /// addressed to stale generations and must be dropped, not treated
    /// as unknown.
    pending_losers: u32,
    /// Bytes held across all slots' sub-I/O buffers (growth-only:
    /// vacated buffers stay allocated for reuse).
    subs_cap_bytes: usize,
}

impl RequestBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dispatched request fanning out into `subs`;
    /// returns its id (a [`Handle`] in raw form — dense slot index in
    /// the low 32 bits via [`Handle::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `subs` is empty.
    pub fn begin(
        &mut self,
        tenant: usize,
        arrived_at: SimTime,
        dispatched_at: SimTime,
        subs: &[SubIo],
    ) -> u64 {
        assert!(!subs.is_empty(), "a request needs at least one sub-I/O");
        let (handle, open) = self.open.claim(OpenRequest::default);
        open.tenant = tenant;
        open.arrived_at = arrived_at;
        open.dispatched_at = dispatched_at;
        let cap_before = open.subs.capacity();
        open.subs.clear();
        open.subs.extend(subs.iter().map(|&io| SubState {
            io,
            done: false,
            hedged: false,
        }));
        self.subs_cap_bytes +=
            (open.subs.capacity() - cap_before) * std::mem::size_of::<SubState>();
        open.remaining = subs.len() as u32;
        open.latest = SimTime::ZERO;
        open.hedge_fired = false;
        open.hedge_won = false;
        open.hedge_resolved = false;
        handle.raw()
    }

    /// Delivers the completion of sub `sub` of request `id` at time
    /// `at`. `from_hedge` marks the completion of a hedged duplicate
    /// rather than the original submission; whichever arrives first
    /// wins, the other is reported as [`SubCompletion::Duplicate`].
    ///
    /// # Panics
    ///
    /// Panics for a completion addressed to no live request when no
    /// hedge loser is owed — an unknown id is a bug, not a race.
    pub fn complete_sub(
        &mut self,
        id: u64,
        sub: usize,
        at: SimTime,
        from_hedge: bool,
    ) -> SubCompletion {
        let handle = Handle::from_raw(id);
        let Some(open) = self.open.get_mut(handle) else {
            // The slot generation moved on: the request already
            // finished, and this is its hedge loser limping home.
            assert!(
                self.pending_losers > 0,
                "completion for unknown request {id:#x}"
            );
            self.pending_losers -= 1;
            return SubCompletion::Duplicate;
        };
        let state = &mut open.subs[sub];
        if state.done {
            open.hedge_resolved = true;
            return SubCompletion::Duplicate;
        }
        state.done = true;
        if from_hedge {
            open.hedge_won = true;
        }
        open.latest = open.latest.max(at);
        open.remaining -= 1;
        if open.remaining > 0 {
            return SubCompletion::Pending;
        }
        let fin = FinishedSummary {
            tenant: open.tenant,
            arrived_at: open.arrived_at,
            dispatched_at: open.dispatched_at,
            finished_at: open.latest,
            fanout: open.subs.len() as u32,
            hedge_fired: open.hedge_fired,
            hedge_won: open.hedge_won,
        };
        if open.hedge_fired && !open.hedge_resolved {
            self.pending_losers += 1;
        }
        self.open.free(handle);
        SubCompletion::Finished(fin)
    }

    /// Fires a hedge for request `id` if it is still in flight with
    /// **exactly one** sub-I/O outstanding that has not already been
    /// hedged: marks it hedged and returns `(sub_index, sub_io)` for
    /// the duplicate submission. Returns `None` otherwise.
    pub fn hedge_straggler(&mut self, id: u64) -> Option<(usize, SubIo)> {
        let open = self.open.get_mut(Handle::from_raw(id))?;
        let mut outstanding = open.subs.iter().enumerate().filter(|(_, s)| !s.done);
        let (idx, state) = outstanding.next()?;
        if outstanding.next().is_some() || state.hedged {
            return None;
        }
        let io = state.io;
        open.subs[idx].hedged = true;
        open.hedge_fired = true;
        Some((idx, io))
    }

    /// Re-arms sub `sub` of request `id` for another attempt after its
    /// target died mid-flight: returns the [`SubIo`] to re-issue iff
    /// the request is still live and that sub has not completed.
    /// Returns `None` for finished/stale ids or already-done subs, so
    /// a failover sweep can race a completion without double-settling.
    ///
    /// The sub's `done`/hedge state is untouched — the retry is a new
    /// submission of the *same* sub, and first-completion-wins still
    /// applies if the original attempt's completion somehow limps home
    /// (the caller is expected to fence stale attempts itself).
    pub fn retry_sub(&mut self, id: u64, sub: usize) -> Option<SubIo> {
        let open = self.open.get_mut(Handle::from_raw(id))?;
        let state = open.subs.get(sub)?;
        if state.done {
            return None;
        }
        Some(state.io)
    }

    /// When request `id` was dispatched, while it is still in flight
    /// (used to measure per-sub settle times for the hedge policy).
    pub fn dispatched_at(&self, id: u64) -> Option<SimTime> {
        self.open.get(Handle::from_raw(id)).map(|o| o.dispatched_at)
    }

    /// Sub-I/Os of request `id` not yet completed (0 once finished or
    /// for an unknown id). A hedger watches for this hitting one.
    pub fn outstanding(&self, id: u64) -> usize {
        self.open
            .get(Handle::from_raw(id))
            .map_or(0, |o| o.subs.iter().filter(|s| !s.done).count())
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.open.live()
    }

    /// High-water mark of concurrently in-flight requests — the slab's
    /// occupancy story: memory scales with this, not with tenant
    /// count.
    pub fn peak_in_flight(&self) -> usize {
        self.open.peak_live()
    }

    /// Slots the book has ever allocated (its footprint never exceeds
    /// what peak concurrency demanded).
    pub fn slots(&self) -> usize {
        self.open.slots()
    }

    /// Resident bytes of the book: the slab's structures plus every
    /// slot's sub-I/O buffer (vacated buffers stay allocated for
    /// reuse, so they count too).
    pub fn footprint_bytes(&self) -> usize {
        self.open.footprint_bytes() + self.subs_cap_bytes
    }
}

/// When to duplicate a straggling sub-I/O: after the tracked
/// percentile of observed sub-I/O settle times, once enough samples
/// exist to trust it (Dean & Barroso's "tail at scale" hedged
/// requests).
#[derive(Clone, Debug)]
pub struct HedgePolicy {
    percentile: f64,
    min_samples: u64,
    hist: LatencyHistogram,
    /// Memoized percentile scan, invalidated by `observe`. Re-arming
    /// a hedge between observations costs a cache read instead of a
    /// 6,400-bucket histogram walk.
    cached_delay: Cell<Option<SimDuration>>,
}

impl HedgePolicy {
    /// A policy hedging after the given percentile of sub-I/O settle
    /// time, warmed up by 100 observations.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < percentile <= 100`.
    pub fn at_percentile(percentile: f64) -> Self {
        assert!(
            percentile > 0.0 && percentile <= 100.0,
            "percentile must be in (0, 100]"
        );
        HedgePolicy {
            percentile,
            min_samples: 100,
            hist: LatencyHistogram::new(),
            cached_delay: Cell::new(None),
        }
    }

    /// Feeds one observed sub-I/O settle time.
    pub fn observe(&mut self, settle: SimDuration) {
        self.hist.record(settle.as_nanos());
        self.cached_delay.set(None);
    }

    /// The current hedge delay: the tracked percentile of observed
    /// settle times, or `None` while still warming up.
    pub fn delay(&self) -> Option<SimDuration> {
        if self.hist.count() < self.min_samples {
            return None;
        }
        if let Some(cached) = self.cached_delay.get() {
            return Some(cached);
        }
        let delay = SimDuration::nanos(self.hist.value_at_percentile(self.percentile));
        self.cached_delay.set(Some(delay));
        Some(delay)
    }

    /// Observations seen so far.
    pub fn observations(&self) -> u64 {
        self.hist.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subs(members: &[usize]) -> Vec<SubIo> {
        members
            .iter()
            .map(|&m| SubIo {
                member: m,
                lba: 100 + m as u64,
                bytes: 4096,
            })
            .collect()
    }

    #[test]
    fn request_finishes_at_the_slowest_sub() {
        let mut book = RequestBook::new();
        let arrived = SimTime::from_nanos(1_000);
        let dispatched = SimTime::from_nanos(1_500);
        let id = book.begin(0, arrived, dispatched, &subs(&[0, 1, 2]));
        assert_eq!(
            book.complete_sub(id, 1, SimTime::from_nanos(9_000), false),
            SubCompletion::Pending
        );
        assert_eq!(
            book.complete_sub(id, 2, SimTime::from_nanos(4_000), false),
            SubCompletion::Pending
        );
        match book.complete_sub(id, 0, SimTime::from_nanos(6_000), false) {
            SubCompletion::Finished(fin) => {
                assert_eq!(fin.finished_at, SimTime::from_nanos(9_000));
                assert_eq!(fin.latency(), SimDuration::nanos(8_000));
                assert_eq!(fin.queueing(), SimDuration::nanos(500));
                assert_eq!(fin.fanout, 3);
                assert!(!fin.hedge_fired);
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        assert_eq!(book.in_flight(), 0);
    }

    #[test]
    fn hedge_race_is_first_completion_wins() {
        let mut book = RequestBook::new();
        let id = book.begin(1, SimTime::ZERO, SimTime::ZERO, &subs(&[0, 1]));
        assert_eq!(
            book.complete_sub(id, 0, SimTime::from_nanos(2_000), false),
            SubCompletion::Pending
        );
        // One straggler left: hedge fires exactly once.
        let (idx, io) = book.hedge_straggler(id).expect("one straggler");
        assert_eq!(idx, 1);
        assert_eq!(io.member, 1);
        assert!(book.hedge_straggler(id).is_none(), "no double hedge");
        // Duplicate wins the race...
        match book.complete_sub(id, 1, SimTime::from_nanos(5_000), true) {
            SubCompletion::Finished(fin) => {
                assert!(fin.hedge_fired);
                assert!(fin.hedge_won);
                assert_eq!(fin.finished_at, SimTime::from_nanos(5_000));
            }
            other => panic!("expected Finished, got {other:?}"),
        }
    }

    #[test]
    fn hedge_loser_is_cancelled() {
        let mut book = RequestBook::new();
        let id = book.begin(0, SimTime::ZERO, SimTime::ZERO, &subs(&[0]));
        let _ = book.hedge_straggler(id).expect("sole sub is the straggler");
        // Original wins; the duplicate's later completion is dropped.
        match book.complete_sub(id, 0, SimTime::from_nanos(3_000), false) {
            SubCompletion::Finished(fin) => {
                assert!(fin.hedge_fired);
                assert!(!fin.hedge_won);
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        let id2 = book.begin(0, SimTime::ZERO, SimTime::ZERO, &subs(&[0, 1]));
        book.complete_sub(id2, 0, SimTime::from_nanos(1_000), false);
        book.hedge_straggler(id2).expect("straggler");
        book.complete_sub(id2, 1, SimTime::from_nanos(2_000), false);
        assert_eq!(
            book.complete_sub(id2, 1, SimTime::from_nanos(2_500), true),
            SubCompletion::Duplicate
        );
    }

    #[test]
    fn no_hedge_while_multiple_outstanding() {
        let mut book = RequestBook::new();
        let id = book.begin(0, SimTime::ZERO, SimTime::ZERO, &subs(&[0, 1, 2]));
        assert!(book.hedge_straggler(id).is_none(), "two+ outstanding");
        book.complete_sub(id, 0, SimTime::from_nanos(1_000), false);
        assert!(book.hedge_straggler(id).is_none());
        book.complete_sub(id, 1, SimTime::from_nanos(1_100), false);
        assert!(book.hedge_straggler(id).is_some());
    }

    #[test]
    fn slots_recycle_and_stale_ids_miss() {
        let mut book = RequestBook::new();
        let id1 = book.begin(0, SimTime::ZERO, SimTime::ZERO, &subs(&[0]));
        book.complete_sub(id1, 0, SimTime::from_nanos(500), false);
        let id2 = book.begin(1, SimTime::ZERO, SimTime::ZERO, &subs(&[0, 1]));
        assert_eq!(
            id1 & 0xffff_ffff,
            id2 & 0xffff_ffff,
            "slot is recycled through the free list"
        );
        assert_ne!(id1, id2, "but the generation differs");
        assert_eq!(book.outstanding(id1), 0, "stale id resolves to nothing");
        assert_eq!(book.outstanding(id2), 2);
        assert_eq!(book.slots(), 1, "footprint equals peak concurrency");
        assert_eq!(book.peak_in_flight(), 1);
        assert!(book.footprint_bytes() > 0);
    }

    #[test]
    fn retry_reissues_only_live_unfinished_subs() {
        let mut book = RequestBook::new();
        let id = book.begin(0, SimTime::ZERO, SimTime::ZERO, &subs(&[0, 1]));
        book.complete_sub(id, 0, SimTime::from_nanos(1_000), false);
        assert!(book.retry_sub(id, 0).is_none(), "done sub never retries");
        let io = book.retry_sub(id, 1).expect("open sub retries");
        assert_eq!(io.member, 1);
        // The retry is a fresh submission of the same sub: its
        // completion settles the request exactly once.
        match book.complete_sub(id, 1, SimTime::from_nanos(9_000), false) {
            SubCompletion::Finished(fin) => {
                assert_eq!(fin.finished_at, SimTime::from_nanos(9_000))
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        assert!(book.retry_sub(id, 1).is_none(), "stale id never retries");
        assert!(book.retry_sub(id, 7).is_none(), "bad index is a miss");
    }

    #[test]
    #[should_panic(expected = "completion for unknown request")]
    fn unknown_completion_still_panics() {
        let mut book = RequestBook::new();
        let id = book.begin(0, SimTime::ZERO, SimTime::ZERO, &subs(&[0]));
        book.complete_sub(id, 0, SimTime::from_nanos(500), false);
        // No hedge was fired, so no loser is owed: a second completion
        // for the dead id is a bug and must be caught.
        book.complete_sub(id, 0, SimTime::from_nanos(900), false);
    }

    #[test]
    fn ledger_tiles_request_latency_exactly() {
        // The invariant the experiment asserts per request: frontend
        // queueing + the slowest sub's settle segments == latency.
        let mut book = RequestBook::new();
        let arrived = SimTime::from_nanos(10_000);
        let dispatched = SimTime::from_nanos(12_500);
        let id = book.begin(0, arrived, dispatched, &subs(&[0, 1]));
        book.complete_sub(id, 0, SimTime::from_nanos(20_000), false);
        let fin = match book.complete_sub(id, 1, SimTime::from_nanos(31_500), false) {
            SubCompletion::Finished(fin) => fin,
            other => panic!("expected Finished, got {other:?}"),
        };
        let mut ledger = RequestLedger::new();
        ledger.charge(Cause::FrontendQueue, fin.queueing());
        // Split the slowest sub's settle time across device + IRQ
        // segments; the split is arbitrary here, the *sum* must tile.
        let settle = fin.finished_at.saturating_since(fin.dispatched_at);
        ledger.charge(Cause::DeviceService, settle - SimDuration::nanos(700));
        ledger.charge(Cause::IrqHandling, SimDuration::nanos(700));
        assert_eq!(ledger.total(), fin.latency());
        assert_eq!(ledger.get(Cause::FrontendQueue), SimDuration::nanos(2_500));
        assert!(ledger.iter().count() >= 2);
        ledger.reset();
        assert_eq!(ledger.total(), SimDuration::ZERO);
    }

    #[test]
    fn hedge_policy_warms_up_then_tracks_percentile() {
        let mut p = HedgePolicy::at_percentile(95.0);
        assert!(p.delay().is_none(), "cold policy must not hedge");
        for i in 1..=200u64 {
            p.observe(SimDuration::micros(i));
        }
        let delay = p.delay().expect("warm policy");
        let delay_us = delay.as_nanos() / 1_000;
        assert!(
            (180..=200).contains(&delay_us),
            "p95 of 1..=200us was {delay_us}us"
        );
        // Re-arms between observations hit the memoized value; a new
        // observation invalidates it.
        assert_eq!(p.delay(), Some(delay));
        p.observe(SimDuration::micros(500));
        assert!(p.delay().expect("still warm") >= delay);
    }
}
