//! Stateful open-loop arrival generators.
//!
//! [`ArrivalGen`] turns an [`ArrivalProcess`] description into a
//! deterministic stream of arrival instants, owning its own
//! [`SimRng`] stream so adding tenants never perturbs any other
//! component's random sequence.

use afa_sim::{SimDuration, SimRng, SimTime};
use afa_workload::ArrivalProcess;

/// A deterministic generator of open-loop arrival instants.
///
/// # Example
///
/// ```
/// use afa_frontend::ArrivalGen;
/// use afa_sim::{SimRng, SimTime};
/// use afa_workload::ArrivalProcess;
///
/// let mut gen = ArrivalGen::new(
///     ArrivalProcess::FixedRate { rate: 1_000.0 },
///     SimRng::from_seed_and_stream(42, 0x0F00),
/// );
/// let t1 = gen.next_after(SimTime::ZERO);
/// assert_eq!(t1, SimTime::from_nanos(1_000_000)); // 1 ms pace
/// ```
#[derive(Clone, Debug)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SimRng,
    /// Bursty phase state: whether the current ON/OFF phase is ON and
    /// when it ends. Starts "before the first phase" so the first call
    /// draws an ON period.
    phase_on: bool,
    phase_ends: SimTime,
}

impl ArrivalGen {
    /// Creates a generator for `process`, drawing from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid
    /// (see [`ArrivalProcess::validate`]).
    pub fn new(process: ArrivalProcess, rng: SimRng) -> Self {
        process.validate();
        ArrivalGen {
            process,
            rng,
            phase_on: false,
            phase_ends: SimTime::ZERO,
        }
    }

    /// The process this generator realizes.
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Returns the next arrival instant strictly after `now`.
    pub fn next_after(&mut self, now: SimTime) -> SimTime {
        match self.process {
            ArrivalProcess::Poisson { rate } => now + exp_gap(&mut self.rng, 1.0 / rate),
            ArrivalProcess::FixedRate { rate } => now + SimDuration::from_secs_f64(1.0 / rate),
            ArrivalProcess::Bursty {
                on_rate,
                mean_on_ms,
                mean_off_ms,
            } => {
                let mut t = now;
                loop {
                    if t >= self.phase_ends {
                        // Advance to the next ON/OFF phase.
                        self.phase_on = !self.phase_on;
                        let mean_ms = if self.phase_on {
                            mean_on_ms
                        } else {
                            mean_off_ms
                        };
                        self.phase_ends = t + exp_gap(&mut self.rng, mean_ms / 1_000.0);
                        continue;
                    }
                    if !self.phase_on {
                        // Silent phase: fast-forward to its end.
                        t = self.phase_ends;
                        continue;
                    }
                    let candidate = t + exp_gap(&mut self.rng, 1.0 / on_rate);
                    if candidate <= self.phase_ends {
                        return candidate;
                    }
                    // The draw spilled past the ON phase; the process
                    // restarts (memoryless) at the phase boundary.
                    t = self.phase_ends;
                }
            }
        }
    }
}

/// An exponential gap with the given mean (seconds), floored at 1 ns so
/// time always advances.
fn exp_gap(rng: &mut SimRng, mean_s: f64) -> SimDuration {
    SimDuration::from_secs_f64(rng.exponential(mean_s)).max(SimDuration::nanos(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(stream: u64) -> SimRng {
        SimRng::from_seed_and_stream(7, stream)
    }

    #[test]
    fn fixed_rate_is_an_exact_pace() {
        let mut g = ArrivalGen::new(ArrivalProcess::FixedRate { rate: 500.0 }, rng(1));
        let mut t = SimTime::ZERO;
        for i in 1..=5u64 {
            t = g.next_after(t);
            assert_eq!(t.as_nanos(), i * 2_000_000);
        }
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let mut g = ArrivalGen::new(ArrivalProcess::Poisson { rate: 10_000.0 }, rng(2));
        let mut t = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            t = g.next_after(t);
        }
        let rate = n as f64 / t.as_secs_f64();
        assert!(
            (rate - 10_000.0).abs() < 500.0,
            "empirical rate {rate} too far from 10k"
        );
    }

    #[test]
    fn bursty_long_run_rate_matches_duty_cycle() {
        let proc = ArrivalProcess::Bursty {
            on_rate: 8_000.0,
            mean_on_ms: 2.0,
            mean_off_ms: 6.0,
        };
        let mut g = ArrivalGen::new(proc, rng(3));
        let mut t = SimTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            let next = g.next_after(t);
            assert!(next > t, "time must advance");
            t = next;
        }
        let rate = n as f64 / t.as_secs_f64();
        let expect = proc.mean_rate();
        assert!(
            (rate - expect).abs() / expect < 0.15,
            "empirical rate {rate} vs duty-cycle rate {expect}"
        );
    }

    #[test]
    fn deterministic_across_identical_generators() {
        let mk = || {
            ArrivalGen::new(
                ArrivalProcess::Bursty {
                    on_rate: 1_000.0,
                    mean_on_ms: 1.0,
                    mean_off_ms: 1.0,
                },
                rng(4),
            )
        };
        let (mut a, mut b) = (mk(), mk());
        let mut t_a = SimTime::ZERO;
        let mut t_b = SimTime::ZERO;
        for _ in 0..1_000 {
            t_a = a.next_after(t_a);
            t_b = b.next_after(t_b);
            assert_eq!(t_a, t_b);
        }
    }
}
