//! Firmware profiles.
//!
//! §IV-E of the paper traces the residual 6-nines/max tail to periodic
//! SMART data update/save operations inside the SSD and builds
//! *experimental firmware* with them disabled. [`FirmwareProfile`]
//! captures exactly that switch, plus the housekeeping parameters.

use afa_sim::SimDuration;

/// How the firmware performs SMART housekeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SmartPolicy {
    /// Production behaviour: periodically collect and persist SMART
    /// data, stalling command admission for the window's duration.
    Periodic {
        /// Mean interval between housekeeping windows.
        mean_period: SimDuration,
        /// Uniform jitter applied to each interval (± this much).
        period_jitter: SimDuration,
        /// Minimum stall duration per window.
        min_duration: SimDuration,
        /// Maximum stall duration per window.
        max_duration: SimDuration,
    },
    /// Experimental firmware: SMART update/save disabled (§IV-E).
    Disabled,
}

/// A firmware build: version string plus housekeeping policy.
///
/// # Example
///
/// ```
/// use afa_ssd::FirmwareProfile;
///
/// let prod = FirmwareProfile::production();
/// let exp = FirmwareProfile::experimental();
/// assert!(prod.smart_enabled());
/// assert!(!exp.smart_enabled());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FirmwareProfile {
    version: String,
    smart: SmartPolicy,
}

impl FirmwareProfile {
    /// Production firmware: SMART housekeeping every ~25 s (±20 %),
    /// stalling admission for ~0.6 ms per window.
    ///
    /// Calibration: the paper's Fig. 10 shows a handful of ~600 µs
    /// spikes over a 120 s / ~4 M-sample run, recurring with a stable
    /// period; a 25 s mean period yields the same four-to-five spikes
    /// per run, and the tight 580–620 µs duration matches both the
    /// observed worst case (Fig. 7–9 all top out near 600 µs) and the
    /// tiny cross-device std of the max (4 µs, Fig. 12) — at QD1 a
    /// read lands within ~33 µs of every window opening, so each
    /// device's maximum is almost exactly the window length.
    pub fn production() -> Self {
        FirmwareProfile {
            version: "PROD-1.0".to_owned(),
            smart: SmartPolicy::Periodic {
                mean_period: SimDuration::secs(25),
                period_jitter: SimDuration::secs(5),
                min_duration: SimDuration::micros(580),
                max_duration: SimDuration::micros(620),
            },
        }
    }

    /// Experimental firmware with SMART data update/save disabled —
    /// the §IV-E build that removes the periodic spikes entirely.
    pub fn experimental() -> Self {
        FirmwareProfile {
            version: "EXP-SMART-OFF".to_owned(),
            smart: SmartPolicy::Disabled,
        }
    }

    /// A custom housekeeping policy (used by the housekeeping-protocol
    /// ablation, which sweeps period and duration).
    pub fn with_smart_policy(version: impl Into<String>, smart: SmartPolicy) -> Self {
        FirmwareProfile {
            version: version.into(),
            smart,
        }
    }

    /// Firmware version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The housekeeping policy.
    pub fn smart_policy(&self) -> SmartPolicy {
        self.smart
    }

    /// Whether SMART housekeeping runs at all.
    pub fn smart_enabled(&self) -> bool {
        !matches!(self.smart, SmartPolicy::Disabled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_has_periodic_smart() {
        let fw = FirmwareProfile::production();
        assert!(fw.smart_enabled());
        match fw.smart_policy() {
            SmartPolicy::Periodic {
                mean_period,
                min_duration,
                max_duration,
                ..
            } => {
                assert!(mean_period >= SimDuration::secs(10));
                assert!(min_duration <= max_duration);
                assert!(max_duration <= SimDuration::millis(1));
            }
            SmartPolicy::Disabled => panic!("production must housekeep"),
        }
    }

    #[test]
    fn experimental_disables_smart() {
        let fw = FirmwareProfile::experimental();
        assert!(!fw.smart_enabled());
        assert_eq!(fw.smart_policy(), SmartPolicy::Disabled);
    }

    #[test]
    fn custom_policy_roundtrips() {
        let policy = SmartPolicy::Periodic {
            mean_period: SimDuration::secs(5),
            period_jitter: SimDuration::secs(1),
            min_duration: SimDuration::micros(100),
            max_duration: SimDuration::micros(200),
        };
        let fw = FirmwareProfile::with_smart_policy("TEST", policy);
        assert_eq!(fw.version(), "TEST");
        assert_eq!(fw.smart_policy(), policy);
    }

    #[test]
    fn versions_differ() {
        assert_ne!(
            FirmwareProfile::production().version(),
            FirmwareProfile::experimental().version()
        );
    }
}
