//! NAND flash array geometry and resource occupancy.
//!
//! The flash back end is channels × dies; each die serves one array
//! operation (read page / program page / erase block) at a time, and
//! each channel bus serializes data transfers between its dies and the
//! controller. Both are modeled as "next-free-time" resources.

use afa_sim::{SimDuration, SimTime};

/// Physical layout of the NAND array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Independent channels (buses) between controller and dies.
    pub channels: u32,
    /// Dies (LUNs) per channel.
    pub dies_per_channel: u32,
    /// Erase blocks per die.
    pub blocks_per_die: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Flash page size in KiB.
    pub page_kib: u64,
}

impl FlashGeometry {
    /// Geometry of the 960 GB Table I device: 8 channels × 4 dies,
    /// 16 KiB pages — 8 × 4 × 1906 × 1024 × 16 KiB ≈ 1 TiB raw.
    pub fn m2_960gb() -> Self {
        FlashGeometry {
            channels: 8,
            dies_per_channel: 4,
            blocks_per_die: 1_906,
            pages_per_block: 1_024,
            page_kib: 16,
        }
    }

    /// A scaled-down geometry holding roughly `capacity_mb` raw, with
    /// the same parallelism as the full device. Useful for tests and
    /// for GC experiments that must fill the device quickly.
    pub fn scaled(capacity_mb: u64) -> Self {
        let full = Self::m2_960gb();
        // Shrink both dimensions: 64-page (1 MiB) blocks, and only as
        // many blocks per die as the capacity requires.
        let pages_per_block = 64u32;
        let block_kib = pages_per_block as u64 * full.page_kib;
        let per_die_kib = (capacity_mb * 1024) / full.total_dies() as u64;
        let blocks = (per_die_kib / block_kib).max(6) as u32;
        FlashGeometry {
            blocks_per_die: blocks,
            pages_per_block,
            ..full
        }
    }

    /// Total dies in the array.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Total flash pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.total_dies() as u64 * self.blocks_per_die as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.total_pages() * self.page_kib * 1024
    }

    /// Maps a physical page number to its die.
    pub fn die_of_page(&self, physical_page: u64) -> DieAddress {
        let pages_per_die = self.blocks_per_die as u64 * self.pages_per_block as u64;
        let die_index = (physical_page / pages_per_die) as u32;
        DieAddress::from_index(die_index.min(self.total_dies() - 1), self)
    }
}

/// Identifies one die as `(channel, die-within-channel)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DieAddress {
    /// Channel index.
    pub channel: u32,
    /// Die index within the channel.
    pub die: u32,
}

impl DieAddress {
    /// Builds a die address from a flat index in
    /// `[0, geometry.total_dies())`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn from_index(index: u32, geometry: &FlashGeometry) -> Self {
        assert!(index < geometry.total_dies(), "die index out of range");
        DieAddress {
            channel: index / geometry.dies_per_channel,
            die: index % geometry.dies_per_channel,
        }
    }

    /// The flat index of this die.
    pub fn flat_index(&self, geometry: &FlashGeometry) -> u32 {
        self.channel * geometry.dies_per_channel + self.die
    }
}

/// Next-free-time occupancy of every die and channel in the array.
///
/// Reservations answer "when can this operation start, and when does
/// the resource free up" — the entire queueing behaviour of the flash
/// back end emerges from these two vectors.
#[derive(Clone, Debug)]
pub struct FlashArray {
    geometry: FlashGeometry,
    die_free: Vec<SimTime>,
    channel_free: Vec<SimTime>,
    ops_served: u64,
}

impl FlashArray {
    /// Creates an idle array.
    pub fn new(geometry: FlashGeometry) -> Self {
        FlashArray {
            geometry,
            die_free: vec![SimTime::ZERO; geometry.total_dies() as usize],
            channel_free: vec![SimTime::ZERO; geometry.channels as usize],
            ops_served: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Total array operations reserved so far.
    pub fn ops_served(&self) -> u64 {
        self.ops_served
    }

    /// Reserves a page read on `die` starting no earlier than `ready`:
    /// array read (`t_read`), then the channel bus for `t_xfer`.
    /// Returns the time the data is on the controller side of the bus.
    pub fn reserve_read(
        &mut self,
        die: DieAddress,
        ready: SimTime,
        t_read: SimDuration,
        t_xfer: SimDuration,
    ) -> SimTime {
        self.ops_served += 1;
        let di = die.flat_index(&self.geometry) as usize;
        let ci = die.channel as usize;
        let read_start = self.die_free[di].max(ready);
        let read_end = read_start + t_read;
        self.die_free[di] = read_end;
        let xfer_start = self.channel_free[ci].max(read_end);
        let xfer_end = xfer_start + t_xfer;
        self.channel_free[ci] = xfer_end;
        xfer_end
    }

    /// Reserves a page program on `die`: channel transfer of the data
    /// to the die, then the program time. Returns program completion.
    pub fn reserve_program(
        &mut self,
        die: DieAddress,
        ready: SimTime,
        t_xfer: SimDuration,
        t_prog: SimDuration,
    ) -> SimTime {
        self.ops_served += 1;
        let di = die.flat_index(&self.geometry) as usize;
        let ci = die.channel as usize;
        let xfer_start = self.channel_free[ci].max(ready);
        let xfer_end = xfer_start + t_xfer;
        self.channel_free[ci] = xfer_end;
        let prog_start = self.die_free[di].max(xfer_end);
        let prog_end = prog_start + t_prog;
        self.die_free[di] = prog_end;
        prog_end
    }

    /// Reserves a block erase on `die`. Returns erase completion.
    pub fn reserve_erase(
        &mut self,
        die: DieAddress,
        ready: SimTime,
        t_erase: SimDuration,
    ) -> SimTime {
        self.ops_served += 1;
        let di = die.flat_index(&self.geometry) as usize;
        let start = self.die_free[di].max(ready);
        let end = start + t_erase;
        self.die_free[di] = end;
        end
    }

    /// When `die` next becomes idle.
    pub fn die_free_at(&self, die: DieAddress) -> SimTime {
        self.die_free[die.flat_index(&self.geometry) as usize]
    }

    /// The least-loaded die (earliest free), ties broken by index —
    /// used by the FTL write allocator to stripe programs.
    pub fn least_loaded_die(&self) -> DieAddress {
        let (idx, _) = self
            .die_free
            .iter()
            .enumerate()
            .min_by_key(|&(i, t)| (*t, i))
            .expect("array has dies");
        DieAddress::from_index(idx as u32, &self.geometry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::micros(n)
    }

    fn t_us(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(n)
    }

    #[test]
    fn geometry_capacity_is_about_1tib_raw() {
        let g = FlashGeometry::m2_960gb();
        let gb = g.raw_bytes() / 1_000_000_000;
        assert!((950..=1100).contains(&gb), "raw {gb} GB");
        assert_eq!(g.total_dies(), 32);
    }

    #[test]
    fn die_address_roundtrips() {
        let g = FlashGeometry::m2_960gb();
        for i in 0..g.total_dies() {
            let addr = DieAddress::from_index(i, &g);
            assert_eq!(addr.flat_index(&g), i);
            assert!(addr.channel < g.channels);
            assert!(addr.die < g.dies_per_channel);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn die_index_out_of_range_panics() {
        let g = FlashGeometry::m2_960gb();
        let _ = DieAddress::from_index(g.total_dies(), &g);
    }

    #[test]
    fn idle_read_takes_read_plus_xfer() {
        let g = FlashGeometry::m2_960gb();
        let mut arr = FlashArray::new(g);
        let die = DieAddress { channel: 0, die: 0 };
        let done = arr.reserve_read(die, t_us(0), us(14), us(5));
        assert_eq!(done, t_us(19));
    }

    #[test]
    fn same_die_reads_serialize() {
        let g = FlashGeometry::m2_960gb();
        let mut arr = FlashArray::new(g);
        let die = DieAddress { channel: 0, die: 0 };
        let first = arr.reserve_read(die, t_us(0), us(14), us(5));
        let second = arr.reserve_read(die, t_us(0), us(14), us(5));
        assert!(second > first);
        // Second array read starts only after the first (die busy), at
        // 14 µs; transfer waits for bus free at 19 µs.
        assert_eq!(second, t_us(33));
    }

    #[test]
    fn different_channels_are_independent() {
        let g = FlashGeometry::m2_960gb();
        let mut arr = FlashArray::new(g);
        let a = DieAddress { channel: 0, die: 0 };
        let b = DieAddress { channel: 1, die: 0 };
        let da = arr.reserve_read(a, t_us(0), us(14), us(5));
        let db = arr.reserve_read(b, t_us(0), us(14), us(5));
        assert_eq!(da, db, "independent channels must not interfere");
    }

    #[test]
    fn same_channel_shares_bus() {
        let g = FlashGeometry::m2_960gb();
        let mut arr = FlashArray::new(g);
        let a = DieAddress { channel: 0, die: 0 };
        let b = DieAddress { channel: 0, die: 1 };
        let da = arr.reserve_read(a, t_us(0), us(14), us(5));
        let db = arr.reserve_read(b, t_us(0), us(14), us(5));
        // Array reads overlap; transfers serialize on the shared bus.
        assert_eq!(da, t_us(19));
        assert_eq!(db, t_us(24));
    }

    #[test]
    fn program_occupies_die_then_read_waits() {
        let g = FlashGeometry::m2_960gb();
        let mut arr = FlashArray::new(g);
        let die = DieAddress { channel: 2, die: 1 };
        let prog_done = arr.reserve_program(die, t_us(0), us(20), us(600));
        assert_eq!(prog_done, t_us(620));
        let read_done = arr.reserve_read(die, t_us(0), us(14), us(5));
        assert!(read_done >= t_us(634), "read must wait for program");
    }

    #[test]
    fn erase_blocks_the_die() {
        let g = FlashGeometry::m2_960gb();
        let mut arr = FlashArray::new(g);
        let die = DieAddress { channel: 0, die: 3 };
        let done = arr.reserve_erase(die, t_us(1), SimDuration::millis(3));
        assert_eq!(done, t_us(3_001));
        assert_eq!(arr.die_free_at(die), t_us(3_001));
    }

    #[test]
    fn least_loaded_die_prefers_idle() {
        let g = FlashGeometry::m2_960gb();
        let mut arr = FlashArray::new(g);
        let busy = DieAddress { channel: 0, die: 0 };
        arr.reserve_erase(busy, t_us(0), SimDuration::millis(3));
        let pick = arr.least_loaded_die();
        assert_ne!(pick, busy);
    }

    #[test]
    fn scaled_geometry_shrinks() {
        let g = FlashGeometry::scaled(256);
        assert!(g.raw_bytes() <= 512 * 1024 * 1024);
        assert_eq!(g.channels, FlashGeometry::m2_960gb().channels);
    }

    #[test]
    fn die_of_page_covers_all_dies() {
        let g = FlashGeometry::scaled(256);
        let pages_per_die = g.blocks_per_die as u64 * g.pages_per_block as u64;
        for die_idx in 0..g.total_dies() {
            let page = die_idx as u64 * pages_per_die;
            assert_eq!(g.die_of_page(page).flat_index(&g), die_idx);
        }
    }
}
