//! Device specification and timing parameters.

use afa_sim::SimDuration;

use crate::flash::FlashGeometry;

/// The data-sheet specification of an SSD (the paper's Table I), plus
/// the derived internal timing model.
///
/// # Example
///
/// ```
/// use afa_ssd::SsdSpec;
///
/// let spec = SsdSpec::table1();
/// assert_eq!(spec.capacity_gb, 960);
/// assert_eq!(spec.random_read_iops, 160_000);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SsdSpec {
    /// Marketing capacity in gigabytes.
    pub capacity_gb: u64,
    /// Host interface description (informational).
    pub interface: String,
    /// Rated 4 KiB random-read IOPS.
    pub random_read_iops: u64,
    /// Rated 4 KiB random-write IOPS.
    pub random_write_iops: u64,
    /// Rated sequential-read bandwidth, MB/s.
    pub seq_read_mbps: u64,
    /// Rated sequential-write bandwidth, MB/s.
    pub seq_write_mbps: u64,
    /// NAND type description (informational).
    pub nand_type: String,
    /// Flash array geometry.
    pub geometry: FlashGeometry,
    /// Internal timing model.
    pub timing: SsdTiming,
    /// Percentage of raw flash exposed as logical capacity; the rest
    /// is over-provisioning for the FTL.
    pub logical_share_percent: u32,
}

/// Which device class backs each SSD in the array.
///
/// The profile is an explicit experiment axis: the paper's evaluation
/// runs one Table-I device, but ROADMAP item 3 asks where each tuning
/// stage stops mattering as the device gets faster, which needs a
/// second, much faster class to sweep against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DeviceProfile {
    /// The paper's Table I 25 µs M.2 NVMe device.
    #[default]
    Table1,
    /// A ~9 µs Z-NAND/Optane-class ultra-low-latency device with a
    /// queue-depth-dependent service curve and per-CPU SQ/CQ pairs.
    UltraLowLatency,
}

impl DeviceProfile {
    /// The full data-sheet spec for this class.
    pub fn spec(self) -> SsdSpec {
        match self {
            DeviceProfile::Table1 => SsdSpec::table1(),
            DeviceProfile::UltraLowLatency => SsdSpec::ull(),
        }
    }

    /// The internal timing model for this class (cheap: no allocation).
    pub fn timing(self) -> SsdTiming {
        match self {
            DeviceProfile::Table1 => SsdTiming::table1(),
            DeviceProfile::UltraLowLatency => SsdTiming::ull(),
        }
    }

    /// Short label for tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            DeviceProfile::Table1 => "table1",
            DeviceProfile::UltraLowLatency => "ull",
        }
    }

    /// Whether the host driver models per-CPU NVMe SQ/CQ pairs for
    /// this class (modern multi-queue drivers) instead of the single
    /// shared-doorbell submission path the Table-I era used.
    pub fn per_cpu_queue_pairs(self) -> bool {
        matches!(self, DeviceProfile::UltraLowLatency)
    }

    /// Nominal unloaded 4 KiB read latency of this class.
    pub fn nominal_read_latency(self) -> SimDuration {
        self.timing().nominal_read_latency()
    }
}

impl SsdSpec {
    /// The paper's Table I device: a 960 GB M.2 NVMe SSD
    /// (NVMe 1.2, PCIe 3.0 x4, 160 K/30 K IOPS, 1700/750 MB/s,
    /// 3D MLC NAND).
    pub fn table1() -> Self {
        SsdSpec {
            capacity_gb: 960,
            interface: "NVMe 1.2 - PCIe 3.0 x4".to_owned(),
            random_read_iops: 160_000,
            random_write_iops: 30_000,
            seq_read_mbps: 1_700,
            seq_write_mbps: 750,
            nand_type: "3D MLC NAND".to_owned(),
            geometry: FlashGeometry::m2_960gb(),
            timing: SsdTiming::table1(),
            logical_share_percent: 93,
        }
    }

    /// An ultra-low-latency Z-NAND/Optane-class device (the "Faster
    /// than Flash" study's ~10 µs class): same array geometry, much
    /// faster media and firmware, and a queue-depth-dependent service
    /// curve because the fast media exposes little internal
    /// parallelism to hide queueing behind.
    pub fn ull() -> Self {
        SsdSpec {
            capacity_gb: 960,
            interface: "NVMe 1.3 - PCIe 3.0 x4".to_owned(),
            random_read_iops: 550_000,
            random_write_iops: 200_000,
            seq_read_mbps: 2_200,
            seq_write_mbps: 2_000,
            nand_type: "Z-NAND (SLC-mode ULL)".to_owned(),
            geometry: FlashGeometry::m2_960gb(),
            timing: SsdTiming::ull(),
            logical_share_percent: 93,
        }
    }

    /// A small device (same timing, tiny capacity) for tests and for
    /// the garbage-collection ablation, where the FTL must fill up
    /// quickly.
    pub fn scaled_down(capacity_mb: u64) -> Self {
        let mut spec = Self::table1();
        spec.capacity_gb = capacity_mb.div_euclid(1024).max(1);
        spec.geometry = FlashGeometry::scaled(capacity_mb);
        // A scaled device has very few blocks per die, so the
        // full-size 7 % over-provisioning would amount to less than
        // the GC watermark; give it proportionally more.
        spec.logical_share_percent = 75;
        spec
    }

    /// Number of 4 KiB logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        // The remainder of the raw flash is over-provisioning,
        // matching commodity enterprise drives (7 % on the Table I
        // device).
        self.geometry.total_pages() * self.geometry.page_kib / 4 * self.logical_share_percent as u64
            / 100
    }
}

/// Internal timing parameters of the SSD model.
///
/// These are the calibration constants that make the model meet the
/// Table I data-sheet figures; see `DESIGN.md` §4 for the derivation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsdTiming {
    /// Firmware command-intake overhead (fetch + decode + map lookup).
    pub fw_in: SimDuration,
    /// Firmware completion-path overhead (CQ entry + doorbell).
    pub fw_out: SimDuration,
    /// Minimum gap between *read* command admissions — the controller
    /// pipeline rate that pins rated random-read IOPS (1/160 K ≈
    /// 6.25 µs for the Table I device).
    pub read_cmd_gap: SimDuration,
    /// Minimum gap between *write* command admissions (1/30 K ≈
    /// 33.3 µs sustained for Table I).
    pub write_cmd_gap: SimDuration,
    /// NAND array read time (tR) for one 4 KiB read unit.
    pub flash_read: SimDuration,
    /// NAND program time (tProg) for one full page.
    pub flash_program: SimDuration,
    /// NAND block erase time (tBERS).
    pub flash_erase: SimDuration,
    /// Channel bus transfer time per 4 KiB.
    pub channel_xfer_4k: SimDuration,
    /// Controller DMA read bandwidth in MB/s (pins sequential reads).
    pub dma_read_mbps: u64,
    /// Controller DMA write bandwidth in MB/s (pins sequential writes).
    pub dma_write_mbps: u64,
    /// Write-buffer (DRAM) insert latency for a buffered write.
    pub buffer_insert: SimDuration,
    /// Write-buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// Probability (per read) of an ECC read-retry.
    pub read_retry_prob_ppm: u32,
    /// Extra latency range for a read-retry, min..max.
    pub read_retry_min: SimDuration,
    /// See [`SsdTiming::read_retry_min`].
    pub read_retry_max: SimDuration,
    /// Admin command service time (Identify / GetLogPage).
    pub admin_service: SimDuration,
    /// NVMe Format execution time.
    pub format_time: SimDuration,
    /// Extra read service per already-outstanding read — the
    /// queue-depth-dependent service curve of ULL media ("Multi-Queue
    /// SSD I/O Modeling"). Zero for the Table I device, whose deep
    /// internal parallelism hides this slope entirely.
    pub qd_service_slope: SimDuration,
}

impl SsdTiming {
    /// Timing calibrated to the Table I data sheet:
    ///
    /// * QD1 4 KiB read ≈ `fw_in + flash_read + channel_xfer + dma +
    ///   fw_out` ≈ 25 µs (§IV-A: "designed to deliver 25 µs"),
    /// * saturated random read = 1 / `read_cmd_gap` = 160 K IOPS,
    /// * sequential read = `dma_read_mbps` = 1.7 GB/s,
    /// * sequential write = `dma_write_mbps` = 750 MB/s,
    /// * sustained random write = 1 / `write_cmd_gap` = 30 K IOPS.
    pub fn table1() -> Self {
        SsdTiming {
            fw_in: SimDuration::nanos(2_500),
            fw_out: SimDuration::nanos(1_500),
            read_cmd_gap: SimDuration::nanos(6_250),
            write_cmd_gap: SimDuration::nanos(33_333),
            flash_read: SimDuration::nanos(14_000),
            flash_program: SimDuration::micros(660),
            flash_erase: SimDuration::millis(3),
            channel_xfer_4k: SimDuration::nanos(4_700),
            dma_read_mbps: 1_780,
            dma_write_mbps: 770,
            buffer_insert: SimDuration::micros(8),
            buffer_bytes: 256 * 1024 * 1024,
            read_retry_prob_ppm: 2,
            read_retry_min: SimDuration::micros(20),
            read_retry_max: SimDuration::micros(60),
            admin_service: SimDuration::micros(80),
            format_time: SimDuration::millis(500),
            qd_service_slope: SimDuration::ZERO,
        }
    }

    /// Timing for the ULL class: every pipeline stage shrinks (Z-NAND
    /// tR ≈ 3 µs against 3D MLC's 14 µs, leaner firmware, faster
    /// channel), giving a nominal QD1 read of ≈ 9 µs, and a non-zero
    /// [`SsdTiming::qd_service_slope`] stands in for the media's lack
    /// of queueing headroom.
    pub fn ull() -> Self {
        SsdTiming {
            fw_in: SimDuration::nanos(1_500),
            fw_out: SimDuration::nanos(1_000),
            read_cmd_gap: SimDuration::nanos(1_800),
            write_cmd_gap: SimDuration::nanos(5_000),
            flash_read: SimDuration::nanos(3_000),
            flash_program: SimDuration::micros(100),
            flash_erase: SimDuration::millis(1),
            channel_xfer_4k: SimDuration::nanos(1_500),
            dma_read_mbps: 2_200,
            dma_write_mbps: 2_000,
            buffer_insert: SimDuration::micros(2),
            buffer_bytes: 256 * 1024 * 1024,
            read_retry_prob_ppm: 1,
            read_retry_min: SimDuration::micros(10),
            read_retry_max: SimDuration::micros(30),
            admin_service: SimDuration::micros(80),
            format_time: SimDuration::millis(500),
            qd_service_slope: SimDuration::nanos(600),
        }
    }

    /// Nominal unloaded 4 KiB read latency implied by the pipeline —
    /// the "~25 µs" figure quoted in §IV-A.
    pub fn nominal_read_latency(&self) -> SimDuration {
        let dma = SimDuration::from_secs_f64(4096.0 / (self.dma_read_mbps as f64 * 1e6));
        self.fw_in + self.flash_read + self.channel_xfer_4k + dma + self.fw_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let s = SsdSpec::table1();
        assert_eq!(s.capacity_gb, 960);
        assert_eq!(s.random_read_iops, 160_000);
        assert_eq!(s.random_write_iops, 30_000);
        assert_eq!(s.seq_read_mbps, 1_700);
        assert_eq!(s.seq_write_mbps, 750);
        assert!(s.interface.contains("PCIe 3.0 x4"));
        assert!(s.nand_type.contains("MLC"));
    }

    #[test]
    fn nominal_read_latency_is_about_25us() {
        let t = SsdTiming::table1();
        let us = t.nominal_read_latency().as_micros_f64();
        assert!((24.0..27.0).contains(&us), "nominal latency {us} us");
    }

    #[test]
    fn cmd_gaps_match_rated_iops() {
        let t = SsdTiming::table1();
        let read_iops = 1e9 / t.read_cmd_gap.as_nanos() as f64;
        assert!((read_iops - 160_000.0).abs() < 1_000.0, "{read_iops}");
        let write_iops = 1e9 / t.write_cmd_gap.as_nanos() as f64;
        assert!((write_iops - 30_000.0).abs() < 500.0, "{write_iops}");
    }

    #[test]
    fn logical_capacity_close_to_marketing() {
        let s = SsdSpec::table1();
        let logical_gb = s.logical_pages() * 4096 / 1_000_000_000;
        assert!(
            (900..=1000).contains(&logical_gb),
            "logical capacity {logical_gb} GB"
        );
    }

    #[test]
    fn scaled_down_has_small_geometry() {
        let s = SsdSpec::scaled_down(64);
        assert!(s.geometry.total_pages() < SsdSpec::table1().geometry.total_pages());
        assert_eq!(s.timing, SsdSpec::table1().timing);
    }

    #[test]
    fn ull_nominal_read_latency_is_about_9us() {
        let us = SsdTiming::ull().nominal_read_latency().as_micros_f64();
        assert!((8.0..12.0).contains(&us), "ULL nominal latency {us} us");
    }

    #[test]
    fn profiles_resolve_to_their_specs() {
        assert_eq!(DeviceProfile::default(), DeviceProfile::Table1);
        assert_eq!(DeviceProfile::Table1.spec(), SsdSpec::table1());
        assert_eq!(DeviceProfile::UltraLowLatency.spec(), SsdSpec::ull());
        assert_eq!(DeviceProfile::Table1.timing(), SsdTiming::table1());
        assert_eq!(DeviceProfile::UltraLowLatency.timing(), SsdTiming::ull());
        assert_eq!(DeviceProfile::Table1.label(), "table1");
        assert_eq!(DeviceProfile::UltraLowLatency.label(), "ull");
        assert!(!DeviceProfile::Table1.per_cpu_queue_pairs());
        assert!(DeviceProfile::UltraLowLatency.per_cpu_queue_pairs());
    }

    #[test]
    fn table1_has_no_qd_slope_and_ull_does() {
        assert!(SsdTiming::table1().qd_service_slope.is_zero());
        assert!(!SsdTiming::ull().qd_service_slope.is_zero());
    }
}
