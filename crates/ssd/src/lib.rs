//! NVMe SSD device model for the AFA reproduction.
//!
//! Models a single M.2 NVMe SSD of the class used by the paper's
//! all-flash array (Table I: 960 GB, NVMe 1.2 over PCIe 3.0 x4,
//! 160 K / 30 K random read/write IOPS, 1700 / 750 MB/s sequential,
//! 3D MLC NAND) as a resource-reservation queueing network:
//!
//! * a **controller** admission stage (command-processing rate caps —
//!   this is what pins random-read IOPS), a DMA engine with separate
//!   read/write bandwidth caps (what pins sequential throughput), and
//!   small per-command firmware overheads,
//! * a **flash back end** of channels × dies with per-die read/program/
//!   erase occupancy and per-channel bus transfer occupancy,
//! * a page-mapped **FTL** with a write buffer, greedy garbage
//!   collection and an explicit FOB (fresh-out-of-box) state reachable
//!   via the NVMe `Format` command — the paper formats all devices to
//!   FOB before each experiment (§III-B),
//! * a **firmware profile**: production firmware runs periodic SMART
//!   data update/save windows that stall command admission (the source
//!   of the paper's Fig. 10 latency spikes); the experimental firmware
//!   of §IV-E disables them,
//! * rare **read-retry** events that keep the post-firmware maximum
//!   spread realistic (Fig. 11 shows 40–90 µs after SMART removal).
//!
//! Because every stage is modeled as a "next-free-time" resource,
//! submitting a command computes its completion instant in O(1) with no
//! internal events, which keeps whole-array simulations (64 devices ×
//! millions of I/Os) fast.
//!
//! # Example
//!
//! ```
//! use afa_sim::SimTime;
//! use afa_ssd::{FirmwareProfile, NvmeCommand, SsdDevice, SsdSpec};
//!
//! let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::experimental(), 42);
//! let done = dev.submit(SimTime::ZERO, NvmeCommand::read(1234, 4096));
//! // A QD1 4 KiB random read completes in ~25 µs on this device.
//! let us = done.completes_at.as_micros_f64();
//! assert!(us > 15.0 && us < 40.0, "latency {us} us");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod firmware;
mod flash;
mod ftl;
mod nvme;
mod smart;
mod spec;

pub use device::{CompletionInfo, DeviceStats, SsdDevice};
pub use firmware::{FirmwareProfile, SmartPolicy};
pub use flash::{DieAddress, FlashArray, FlashGeometry};
pub use ftl::{Ftl, FtlConfig, FtlStats, GcEvent};
pub use nvme::{NvmeCommand, NvmeOpcode};
pub use smart::{SmartEngine, SmartLog};
pub use spec::{DeviceProfile, SsdSpec, SsdTiming};
