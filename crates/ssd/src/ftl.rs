//! Page-mapped flash translation layer with greedy garbage collection.
//!
//! The paper keeps all SSDs in the FOB (fresh-out-of-box) state so
//! that FTL activity never pollutes its latency measurements (§III-B),
//! and defers GC analysis to future work (§VI). We implement the FTL
//! anyway: (a) `Format` must genuinely reset state, (b) write workloads
//! need a real allocation path, and (c) the `ablate_gc` experiment
//! reproduces the future-work scenario on aged devices.
//!
//! Logical space is addressed in 4 KiB pages; flash pages are larger
//! (16 KiB on the Table I device), so `page_kib / 4` logical pages pack
//! into one flash page. Writes stripe across dies at flash-page
//! granularity. When a die's free-block count reaches the low
//! watermark, greedy GC picks its minimum-valid sealed block, relocates
//! the survivors and erases it.

use std::collections::HashMap;

use crate::flash::{DieAddress, FlashGeometry};

/// A physical 4 KiB slot: `flash_page_index * subs_per_page + sub`.
type Slot = u64;

/// FTL tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtlConfig {
    /// GC starts when a die's free-block count drops to this value.
    pub gc_low_watermark: u32,
    /// Static wear leveling: when a die's erase-count spread exceeds
    /// this, the coldest sealed block is relocated onto a hot one.
    /// `None` disables wear leveling.
    pub wear_level_threshold: Option<u32>,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            gc_low_watermark: 2,
            wear_level_threshold: Some(16),
        }
    }
}

/// A physical flash operation the device must account for in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtlAction {
    /// Program one flash page on `die` (host or buffered data).
    Program {
        /// Die receiving the program.
        die: DieAddress,
    },
    /// GC relocation read of one flash page on `die`.
    GcRead {
        /// Die being read for relocation.
        die: DieAddress,
    },
    /// GC relocation program of one flash page on `die`.
    GcProgram {
        /// Die receiving relocated data.
        die: DieAddress,
    },
    /// Erase of one block on `die`.
    Erase {
        /// Die whose block is erased.
        die: DieAddress,
    },
}

/// Summary of one completed GC cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcEvent {
    /// Die the cycle ran on.
    pub die: DieAddress,
    /// Flash pages whose data was relocated.
    pub pages_copied: u32,
    /// Valid 4 KiB slots relocated.
    pub slots_copied: u32,
}

/// Lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host 4 KiB pages written.
    pub host_slots_written: u64,
    /// 4 KiB slots rewritten by GC.
    pub gc_slots_copied: u64,
    /// Blocks erased.
    pub blocks_erased: u64,
    /// GC cycles run.
    pub gc_cycles: u64,
    /// Static wear-leveling swaps performed.
    pub wl_swaps: u64,
    /// 4 KiB slots relocated by wear leveling.
    pub wl_slots_copied: u64,
}

impl FtlStats {
    /// Write amplification: (host + GC writes) / host writes.
    /// 1.0 when no GC has run (or nothing written).
    pub fn write_amplification(&self) -> f64 {
        if self.host_slots_written == 0 {
            1.0
        } else {
            (self.host_slots_written + self.gc_slots_copied) as f64 / self.host_slots_written as f64
        }
    }
}

#[derive(Clone, Debug)]
struct BlockInfo {
    valid: u32,
    sealed: bool,
}

#[derive(Clone, Debug)]
struct DieState {
    free_blocks: Vec<u32>,
    active_block: u32,
    next_page: u32,
    next_sub: u32,
}

/// The page-mapped FTL.
///
/// # Example
///
/// ```
/// use afa_ssd::{FlashGeometry, Ftl, FtlConfig};
///
/// let mut ftl = Ftl::new(FlashGeometry::scaled(64), FtlConfig::default());
/// assert!(ftl.read_slot(7).is_none()); // FOB: nothing mapped
/// ftl.write_slot(7);
/// assert!(ftl.read_slot(7).is_some());
/// ftl.format();
/// assert!(ftl.read_slot(7).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Ftl {
    geometry: FlashGeometry,
    config: FtlConfig,
    map: HashMap<u64, Slot>,
    reverse: HashMap<Slot, u64>,
    blocks: Vec<BlockInfo>,
    /// Lifetime erase count per (global) block.
    erase_counts: Vec<u32>,
    dies: Vec<DieState>,
    current_die: u32,
    stats: FtlStats,
    gc_events: Vec<GcEvent>,
}

impl Ftl {
    /// Creates an FTL in FOB state.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has fewer blocks per die than the GC
    /// watermark requires (watermark + 2).
    pub fn new(geometry: FlashGeometry, config: FtlConfig) -> Self {
        assert!(
            geometry.blocks_per_die >= config.gc_low_watermark + 2,
            "geometry too small for GC watermark"
        );
        let total_blocks = geometry.total_dies() as usize * geometry.blocks_per_die as usize;
        let mut ftl = Ftl {
            geometry,
            config,
            map: HashMap::new(),
            reverse: HashMap::new(),
            blocks: Vec::new(),
            erase_counts: vec![0; total_blocks],
            dies: Vec::new(),
            current_die: 0,
            stats: FtlStats::default(),
            gc_events: Vec::new(),
        };
        ftl.reset_layout();
        ftl
    }

    fn reset_layout(&mut self) {
        let total_blocks =
            self.geometry.total_dies() as usize * self.geometry.blocks_per_die as usize;
        self.blocks = (0..total_blocks)
            .map(|_| BlockInfo {
                valid: 0,
                sealed: false,
            })
            .collect();
        self.dies = (0..self.geometry.total_dies())
            .map(|_| {
                // Highest block index first so pops allocate block 0 first.
                let mut free: Vec<u32> = (1..self.geometry.blocks_per_die).rev().collect();
                let active = 0;
                free.shrink_to_fit();
                DieState {
                    free_blocks: free,
                    active_block: active,
                    next_page: 0,
                    next_sub: 0,
                }
            })
            .collect();
        self.current_die = 0;
    }

    /// 4 KiB slots per flash page.
    pub fn subs_per_page(&self) -> u32 {
        (self.geometry.page_kib / 4) as u32
    }

    /// The flash geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// GC cycles completed so far (drain with
    /// [`Ftl::take_gc_events`]).
    pub fn gc_events(&self) -> &[GcEvent] {
        &self.gc_events
    }

    /// Removes and returns the recorded GC events.
    pub fn take_gc_events(&mut self) -> Vec<GcEvent> {
        std::mem::take(&mut self.gc_events)
    }

    /// Returns the die holding logical 4 KiB page `lpn`, or `None` if
    /// the page has never been written (FOB reads).
    pub fn read_slot(&self, lpn: u64) -> Option<DieAddress> {
        self.map.get(&lpn).map(|&slot| self.die_of_slot(slot))
    }

    /// Fraction of the drive's logical slots currently mapped.
    pub fn utilization(&self, logical_slots: u64) -> f64 {
        if logical_slots == 0 {
            0.0
        } else {
            self.map.len() as f64 / logical_slots as f64
        }
    }

    fn slots_per_block(&self) -> u64 {
        self.geometry.pages_per_block as u64 * self.subs_per_page() as u64
    }

    fn slots_per_die(&self) -> u64 {
        self.geometry.blocks_per_die as u64 * self.slots_per_block()
    }

    fn die_of_slot(&self, slot: Slot) -> DieAddress {
        let die_idx = (slot / self.slots_per_die()) as u32;
        DieAddress::from_index(die_idx, &self.geometry)
    }

    fn global_block_of_slot(&self, slot: Slot) -> usize {
        (slot / self.slots_per_block()) as usize
    }

    fn slot_at(&self, die_idx: u32, block_in_die: u32, page: u32, sub: u32) -> Slot {
        let base =
            die_idx as u64 * self.slots_per_die() + block_in_die as u64 * self.slots_per_block();
        base + page as u64 * self.subs_per_page() as u64 + sub as u64
    }

    /// Writes logical page `lpn`, returning the physical actions the
    /// device must charge time for (page programs when a flash page
    /// seals, plus any GC work triggered).
    pub fn write_slot(&mut self, lpn: u64) -> Vec<FtlAction> {
        let mut actions = Vec::new();
        self.stats.host_slots_written += 1;
        self.invalidate(lpn);
        let die = self.current_die;
        self.append(lpn, die, false, &mut actions);
        actions
    }

    fn invalidate(&mut self, lpn: u64) {
        if let Some(old) = self.map.remove(&lpn) {
            self.reverse.remove(&old);
            let b = self.global_block_of_slot(old);
            self.blocks[b].valid = self.blocks[b].valid.saturating_sub(1);
        }
    }

    /// Appends `lpn` to `die_idx`'s write frontier. Host writes target
    /// [`Ftl::current_die`] (striping); GC relocations target the
    /// victim's own die so collection never consumes other dies' free
    /// blocks. `is_gc` selects accounting and suppresses recursive GC.
    fn append(&mut self, lpn: u64, die_idx: u32, is_gc: bool, actions: &mut Vec<FtlAction>) {
        let geometry = self.geometry;
        let subs = self.subs_per_page();

        let (page, sub, block) = {
            let die = &self.dies[die_idx as usize];
            (die.next_page, die.next_sub, die.active_block)
        };
        let slot = self.slot_at(die_idx, block, page, sub);
        self.map.insert(lpn, slot);
        self.reverse.insert(slot, lpn);
        let gb = die_idx as usize * geometry.blocks_per_die as usize + block as usize;
        self.blocks[gb].valid += 1;

        // Advance the frontier.
        let die = &mut self.dies[die_idx as usize];
        die.next_sub += 1;
        let mut sealed_page = false;
        if die.next_sub == subs {
            die.next_sub = 0;
            die.next_page += 1;
            sealed_page = true;
        }
        let mut need_new_block = false;
        if die.next_page == geometry.pages_per_block {
            die.next_page = 0;
            self.blocks[gb].sealed = true;
            need_new_block = true;
        }

        if sealed_page {
            let die_addr = DieAddress::from_index(die_idx, &geometry);
            actions.push(if is_gc {
                FtlAction::GcProgram { die: die_addr }
            } else {
                FtlAction::Program { die: die_addr }
            });
            if !is_gc {
                // Stripe host writes across dies at flash-page
                // granularity.
                self.current_die = (self.current_die + 1) % geometry.total_dies();
            }
        }

        if need_new_block {
            let die = &mut self.dies[die_idx as usize];
            let next = die.free_blocks.pop().expect(
                "out of free blocks: the die has no reclaimable space \
                 (over-provisioning exhausted relative to the GC watermark)",
            );
            die.active_block = next;
            if !is_gc {
                self.collect_until_watermark(die_idx, actions);
            }
        }
    }

    /// Runs GC cycles until the die's free-block count clears the
    /// watermark. A single greedy cycle can net *zero* free blocks
    /// (the relocation itself consumed the block the erase returned),
    /// so one-cycle-per-seal decays free space under sustained
    /// full-capacity writes; looping with a progress guard restores
    /// the invariant the allocator relies on.
    fn collect_until_watermark(&mut self, die_idx: u32, actions: &mut Vec<FtlAction>) {
        let limit = self.geometry.blocks_per_die as usize * 4;
        let mut rounds = 0;
        while (self.dies[die_idx as usize].free_blocks.len() as u32) <= self.config.gc_low_watermark
        {
            rounds += 1;
            if rounds > limit || !self.collect(die_idx, actions) {
                // No sealed victim, a fully-valid victim (nothing
                // reclaimable), or a runaway loop: stop. The device
                // is genuinely out of reclaimable space on this die;
                // the next allocation failure will say so loudly.
                break;
            }
        }
    }

    /// One greedy GC cycle on one die: relocate the minimum-valid
    /// sealed block. Returns `false` when no progress is possible
    /// (no sealed victim, or the best victim is fully valid).
    fn collect(&mut self, die_idx: u32, actions: &mut Vec<FtlAction>) -> bool {
        let geometry = self.geometry;
        let blocks_per_die = geometry.blocks_per_die as usize;
        let base = die_idx as usize * blocks_per_die;
        let active = self.dies[die_idx as usize].active_block as usize;

        let victim_local = (0..blocks_per_die)
            .filter(|&b| b != active && self.blocks[base + b].sealed)
            .min_by_key(|&b| self.blocks[base + b].valid);
        let Some(victim_local) = victim_local else {
            return false; // nothing sealed yet
        };
        if self.blocks[base + victim_local].valid as u64 >= self.slots_per_block() {
            // Fully valid: relocating it reclaims nothing.
            return false;
        }
        // With no spare block, relocation is only safe when the
        // survivors fit into the active block's remaining slots
        // (true right after a fresh allocation, which is exactly when
        // the free list bottoms out).
        if self.dies[die_idx as usize].free_blocks.is_empty() {
            let die = &self.dies[die_idx as usize];
            let used = die.next_page as u64 * self.subs_per_page() as u64 + die.next_sub as u64;
            let remaining = self.slots_per_block() - used;
            // Strictly less: filling the block to the brim would seal
            // it and demand another allocation mid-relocation.
            if (self.blocks[base + victim_local].valid as u64) >= remaining {
                return false;
            }
        }
        let die_addr = DieAddress::from_index(die_idx, &geometry);
        let victim_global = base + victim_local;

        // Gather surviving lpns.
        let spb = self.slots_per_block();
        let first_slot = die_idx as u64 * self.slots_per_die() + victim_local as u64 * spb;
        let mut survivors = Vec::new();
        for s in first_slot..first_slot + spb {
            if let Some(&lpn) = self.reverse.get(&s) {
                survivors.push(lpn);
            }
        }

        // Relocation reads: one per flash page that holds a survivor.
        let subs = self.subs_per_page() as u64;
        let mut pages_read = 0u32;
        {
            let mut last_page = u64::MAX;
            for lpn in &survivors {
                let slot = self.map[lpn];
                let page = slot / subs;
                if page != last_page {
                    pages_read += 1;
                    last_page = page;
                    actions.push(FtlAction::GcRead { die: die_addr });
                }
            }
        }

        // Relocate survivors into this die (GC appends; no recursive
        // GC).
        for lpn in &survivors {
            self.invalidate(*lpn);
            self.stats.gc_slots_copied += 1;
            self.append(*lpn, die_idx, true, actions);
        }

        // Erase and free the victim.
        self.blocks[victim_global] = BlockInfo {
            valid: 0,
            sealed: false,
        };
        self.erase_counts[victim_global] += 1;
        self.dies[die_idx as usize]
            .free_blocks
            .push(victim_local as u32);
        actions.push(FtlAction::Erase { die: die_addr });
        self.stats.blocks_erased += 1;
        self.stats.gc_cycles += 1;
        self.gc_events.push(GcEvent {
            die: die_addr,
            pages_copied: pages_read,
            slots_copied: survivors.len() as u32,
        });
        self.maybe_wear_level(die_idx, actions);
        true
    }

    /// Erase-count spread (max − min) within one die.
    pub fn erase_spread(&self, die_idx: u32) -> u32 {
        let base = die_idx as usize * self.geometry.blocks_per_die as usize;
        let counts = &self.erase_counts[base..base + self.geometry.blocks_per_die as usize];
        let min = counts.iter().min().copied().unwrap_or(0);
        let max = counts.iter().max().copied().unwrap_or(0);
        max - min
    }

    /// Largest erase-count spread across all dies.
    pub fn max_erase_spread(&self) -> u32 {
        (0..self.geometry.total_dies())
            .map(|d| self.erase_spread(d))
            .max()
            .unwrap_or(0)
    }

    /// Static wear leveling: if this die's erase-count spread exceeds
    /// the threshold, relocate the *coldest* sealed block (its data is
    /// static, pinning its low erase count) so the block re-enters
    /// circulation.
    fn maybe_wear_level(&mut self, die_idx: u32, actions: &mut Vec<FtlAction>) {
        let Some(threshold) = self.config.wear_level_threshold else {
            return;
        };
        if self.erase_spread(die_idx) <= threshold {
            return;
        }
        // Relocating a (typically fully-valid) cold block consumes up
        // to one spare block before the erase returns it — net zero,
        // but it needs the spare to exist.
        if self.dies[die_idx as usize].free_blocks.is_empty() {
            return;
        }
        let geometry = self.geometry;
        let blocks_per_die = geometry.blocks_per_die as usize;
        let base = die_idx as usize * blocks_per_die;
        let active = self.dies[die_idx as usize].active_block as usize;
        let Some(cold_local) = (0..blocks_per_die)
            .filter(|&b| b != active && self.blocks[base + b].sealed)
            .min_by_key(|&b| self.erase_counts[base + b])
        else {
            return;
        };
        let die_addr = DieAddress::from_index(die_idx, &geometry);
        let spb = self.slots_per_block();
        let first_slot = die_idx as u64 * self.slots_per_die() + cold_local as u64 * spb;
        let survivors: Vec<u64> = (first_slot..first_slot + spb)
            .filter_map(|slot| self.reverse.get(&slot).copied())
            .collect();
        // One relocation read per flash page that holds data.
        let pages = survivors.len().div_ceil(self.subs_per_page() as usize);
        for _ in 0..pages {
            actions.push(FtlAction::GcRead { die: die_addr });
        }
        for lpn in &survivors {
            self.invalidate(*lpn);
            self.stats.wl_slots_copied += 1;
            self.append(*lpn, die_idx, true, actions);
        }
        let cold_global = base + cold_local;
        self.blocks[cold_global] = BlockInfo {
            valid: 0,
            sealed: false,
        };
        self.erase_counts[cold_global] += 1;
        self.dies[die_idx as usize]
            .free_blocks
            .push(cold_local as u32);
        actions.push(FtlAction::Erase { die: die_addr });
        self.stats.blocks_erased += 1;
        self.stats.wl_swaps += 1;
    }

    /// NVMe Format: returns the device to FOB state and zeroes the
    /// mapping, keeping lifetime erase counters.
    pub fn format(&mut self) {
        self.map.clear();
        self.reverse.clear();
        self.gc_events.clear();
        self.reset_layout();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ftl() -> Ftl {
        Ftl::new(FlashGeometry::scaled(16), FtlConfig::default())
    }

    #[test]
    fn fob_reads_are_unmapped() {
        let ftl = small_ftl();
        for lpn in [0u64, 1, 1_000, 123_456] {
            assert!(ftl.read_slot(lpn).is_none());
        }
    }

    #[test]
    fn write_then_read_maps_to_a_die() {
        let mut ftl = small_ftl();
        ftl.write_slot(42);
        let die = ftl.read_slot(42).expect("mapped");
        assert!(die.channel < ftl.geometry().channels);
    }

    #[test]
    fn overwrite_moves_the_page() {
        let mut ftl = small_ftl();
        ftl.write_slot(5);
        let subs = ftl.subs_per_page() as u64;
        // Fill the rest of the flash page so the next write lands elsewhere.
        for lpn in 100..100 + subs {
            ftl.write_slot(lpn);
        }
        ftl.write_slot(5);
        assert!(ftl.read_slot(5).is_some());
        assert_eq!(ftl.stats().host_slots_written, 2 + subs);
    }

    #[test]
    fn program_emitted_when_flash_page_seals() {
        let mut ftl = small_ftl();
        let subs = ftl.subs_per_page() as u64;
        let mut actions = Vec::new();
        for lpn in 0..subs {
            actions.extend(ftl.write_slot(lpn));
        }
        let programs = actions
            .iter()
            .filter(|a| matches!(a, FtlAction::Program { .. }))
            .count();
        assert_eq!(programs, 1, "exactly one program per sealed page");
    }

    #[test]
    fn striping_rotates_dies() {
        let mut ftl = small_ftl();
        let subs = ftl.subs_per_page() as u64;
        let mut dies_seen = Vec::new();
        for lpn in 0..subs * 4 {
            for action in ftl.write_slot(lpn) {
                if let FtlAction::Program { die } = action {
                    dies_seen.push(die);
                }
            }
        }
        assert_eq!(dies_seen.len(), 4);
        let mut unique = dies_seen.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            4,
            "pages must stripe across dies: {dies_seen:?}"
        );
    }

    #[test]
    fn gc_triggers_under_overwrite_pressure() {
        let mut ftl = small_ftl();
        let logical = ftl.slots_per_die() * ftl.geometry().total_dies() as u64 / 2;
        // Two full overwrite passes over half the logical space forces
        // block exhaustion and therefore GC.
        for pass in 0..6 {
            for lpn in 0..logical {
                ftl.write_slot(lpn + pass % 2);
            }
        }
        assert!(ftl.stats().gc_cycles > 0, "GC never ran");
        assert!(ftl.stats().write_amplification() >= 1.0);
        assert!(!ftl.gc_events().is_empty());
    }

    #[test]
    fn gc_preserves_all_mapped_data() {
        let mut ftl = small_ftl();
        let logical = ftl.slots_per_die() * ftl.geometry().total_dies() as u64 / 2;
        for pass in 0..6u64 {
            for lpn in 0..logical {
                ftl.write_slot(lpn.wrapping_mul(pass + 1) % logical);
            }
        }
        // Every previously written lpn in range must still resolve.
        for lpn in 0..logical {
            assert!(ftl.read_slot(lpn).is_some(), "lpn {lpn} lost after GC");
        }
    }

    #[test]
    fn format_restores_fob() {
        let mut ftl = small_ftl();
        for lpn in 0..1_000 {
            ftl.write_slot(lpn);
        }
        ftl.format();
        for lpn in 0..1_000 {
            assert!(ftl.read_slot(lpn).is_none());
        }
        assert_eq!(ftl.utilization(10_000), 0.0);
    }

    #[test]
    fn write_amplification_is_one_without_gc() {
        let mut ftl = small_ftl();
        for lpn in 0..100 {
            ftl.write_slot(lpn);
        }
        assert_eq!(ftl.stats().write_amplification(), 1.0);
    }

    #[test]
    fn take_gc_events_drains() {
        let mut ftl = small_ftl();
        let logical = ftl.slots_per_die() * ftl.geometry().total_dies() as u64 / 2;
        for _ in 0..6 {
            for lpn in 0..logical {
                ftl.write_slot(lpn);
            }
        }
        let events = ftl.take_gc_events();
        assert!(!events.is_empty());
        assert!(ftl.gc_events().is_empty());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_geometry_rejected() {
        let mut g = FlashGeometry::scaled(16);
        g.blocks_per_die = 2;
        let _ = Ftl::new(g, FtlConfig::default());
    }
}
