//! The SSD device: controller pipeline + flash back end + FTL +
//! firmware housekeeping, combined as a resource-reservation model.
//!
//! Submitting a command computes its completion instant in O(1): each
//! stage (admission, dies, channel buses, DMA engines) keeps a
//! next-free time, and a command reserves the stages in pipeline
//! order. All queueing behaviour — die conflicts, channel contention,
//! DMA saturation, SMART stalls, GC interference — emerges from the
//! reservations.

use afa_sim::{SimDuration, SimRng, SimTime};

use crate::firmware::FirmwareProfile;
use crate::flash::{DieAddress, FlashArray};
use crate::ftl::{Ftl, FtlAction, FtlConfig, FtlStats};
use crate::nvme::{NvmeCommand, NvmeOpcode};
use crate::smart::{SmartEngine, SmartLog};
use crate::spec::SsdSpec;

/// Completion information for one submitted command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompletionInfo {
    /// Instant the device posts the completion (interrupt time follows
    /// after fabric + host delays, which other crates model).
    pub completes_at: SimTime,
    /// Time stalled behind a SMART housekeeping window.
    pub housekeeping_stall: SimDuration,
    /// Time queued behind other commands (admission, die, channel and
    /// DMA waits).
    pub queue_wait: SimDuration,
    /// Pure pipeline service time (everything else).
    pub service: SimDuration,
    /// Whether a media read-retry occurred.
    pub retried: bool,
}

impl CompletionInfo {
    /// Total latency relative to `submitted`.
    pub fn latency_since(&self, submitted: SimTime) -> SimDuration {
        self.completes_at.saturating_since(submitted)
    }
}

/// Lifetime device counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Read commands completed.
    pub reads: u64,
    /// Write commands completed.
    pub writes: u64,
    /// Admin / management commands completed.
    pub admin: u64,
    /// Media read-retries.
    pub retries: u64,
    /// Commands that stalled behind housekeeping.
    pub housekeeping_hits: u64,
}

/// One simulated NVMe SSD.
///
/// See the crate docs for the model; see [`SsdSpec::table1`] for the
/// paper's device.
#[derive(Clone, Debug)]
pub struct SsdDevice {
    spec: SsdSpec,
    firmware: FirmwareProfile,
    flash: FlashArray,
    ftl: Ftl,
    smart: SmartEngine,
    rng: SimRng,
    admission_free: SimTime,
    dma_read_free: SimTime,
    dma_write_free: SimTime,
    buffered_bytes: u64,
    outstanding_programs: std::collections::VecDeque<(SimTime, u64)>,
    outstanding_reads: std::collections::VecDeque<SimTime>,
    stats: DeviceStats,
}

impl SsdDevice {
    /// Creates a device in FOB state.
    pub fn new(spec: SsdSpec, firmware: FirmwareProfile, seed: u64) -> Self {
        let mut rng = SimRng::from_seed(seed);
        let smart_rng = rng.fork();
        let smart = SmartEngine::new(firmware.smart_policy(), smart_rng);
        SsdDevice {
            flash: FlashArray::new(spec.geometry),
            ftl: Ftl::new(spec.geometry, FtlConfig::default()),
            spec,
            firmware,
            smart,
            rng,
            admission_free: SimTime::ZERO,
            dma_read_free: SimTime::ZERO,
            dma_write_free: SimTime::ZERO,
            buffered_bytes: 0,
            outstanding_programs: std::collections::VecDeque::new(),
            outstanding_reads: std::collections::VecDeque::new(),
            stats: DeviceStats::default(),
        }
    }

    /// The device specification.
    pub fn spec(&self) -> &SsdSpec {
        &self.spec
    }

    /// The installed firmware profile.
    pub fn firmware(&self) -> &FirmwareProfile {
        &self.firmware
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// FTL lifetime counters (GC, write amplification).
    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl.stats()
    }

    /// The SMART log (as `GetLogPage` would return).
    pub fn smart_log(&self) -> &SmartLog {
        self.smart.log()
    }

    /// Submits one command at `now`, returning its completion info.
    ///
    /// # Panics
    ///
    /// Panics if an I/O command addresses beyond the device's logical
    /// capacity.
    pub fn submit(&mut self, now: SimTime, cmd: NvmeCommand) -> CompletionInfo {
        if cmd.is_io() {
            let last = cmd.lba + cmd.lba_count();
            assert!(
                last <= self.spec.logical_pages(),
                "I/O beyond device capacity: lba {} + {} > {}",
                cmd.lba,
                cmd.lba_count(),
                self.spec.logical_pages()
            );
        }
        match cmd.opcode {
            NvmeOpcode::Read => self.submit_read(now, cmd),
            NvmeOpcode::Write => self.submit_write(now, cmd),
            NvmeOpcode::Flush => self.submit_flush(now),
            NvmeOpcode::Format => self.submit_format(now),
            NvmeOpcode::Identify | NvmeOpcode::GetLogPage => self.submit_admin(now),
        }
    }

    /// Admits a command through the controller front end, honouring
    /// SMART windows and the per-opcode command gap.
    fn admit(&mut self, now: SimTime, gap: SimDuration) -> (SimTime, SimDuration) {
        let queue_start = now.max(self.admission_free);
        let admitted = self.smart.admission_after(queue_start);
        let stall = admitted.saturating_since(queue_start);
        if !stall.is_zero() {
            self.stats.housekeeping_hits += 1;
        }
        self.admission_free = admitted + gap;
        (admitted, stall)
    }

    fn die_for_read(&mut self, lpn: u64) -> DieAddress {
        match self.ftl.read_slot(lpn) {
            Some(die) => die,
            None => {
                // FOB read: nothing mapped. The controller still walks
                // the full pipeline (the paper measures ~25 us on
                // freshly formatted devices); spread pseudo-locations
                // uniformly across dies.
                let g = self.spec.geometry;
                let idx = (lpn.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32 % g.total_dies();
                DieAddress::from_index(idx, &g)
            }
        }
    }

    fn submit_read(&mut self, now: SimTime, cmd: NvmeCommand) -> CompletionInfo {
        let t = self.spec.timing;
        let (admitted, hk_stall) = self.admit(now, t.read_cmd_gap);
        let ready = admitted + t.fw_in;

        // Reserve a flash read per 4 KiB unit; rare ECC retries extend
        // the array time.
        let mut retried = false;
        let mut flash_done = ready;
        for i in 0..cmd.lba_count() {
            let die = self.die_for_read(cmd.lba + i);
            let mut t_read = t.flash_read;
            if self.rng.below(1_000_000) < t.read_retry_prob_ppm as u64 {
                retried = true;
                let extra = self
                    .rng
                    .range_inclusive(t.read_retry_min.as_nanos(), t.read_retry_max.as_nanos());
                t_read += SimDuration::nanos(extra);
            }
            let done = self
                .flash
                .reserve_read(die, ready, t_read, t.channel_xfer_4k);
            flash_done = flash_done.max(done);
        }

        // DMA to host memory.
        let dma_time =
            SimDuration::from_secs_f64(cmd.bytes as f64 / (t.dma_read_mbps as f64 * 1e6));
        let dma_start = flash_done.max(self.dma_read_free);
        let dma_end = dma_start + dma_time;
        self.dma_read_free = dma_end;

        // Queue-depth-dependent service: ULL-class media exposes
        // little internal parallelism, so each already-outstanding
        // read stretches this one's service by the profile's slope.
        // The slope is zero on Table-I devices, and the tracking deque
        // is only touched when it is non-zero, so the classic profile
        // keeps its exact reservation (and RNG) sequence.
        let qd_extra = if t.qd_service_slope.is_zero() {
            SimDuration::ZERO
        } else {
            while let Some(&done) = self.outstanding_reads.front() {
                if done <= admitted {
                    self.outstanding_reads.pop_front();
                } else {
                    break;
                }
            }
            t.qd_service_slope * self.outstanding_reads.len() as u64
        };

        // Completion path with a touch of controller jitter.
        let jitter = SimDuration::nanos(self.rng.range_inclusive(0, 1_200));
        let completes_at = dma_end + qd_extra + t.fw_out + jitter;
        if !t.qd_service_slope.is_zero() {
            self.outstanding_reads.push_back(completes_at);
        }

        if retried {
            self.stats.retries += 1;
            self.smart.log_mut().note_retry();
        }
        self.stats.reads += 1;
        self.smart.log_mut().note_read(cmd.lba_count());

        let total = completes_at.saturating_since(now);
        let service =
            t.fw_in + t.flash_read + t.channel_xfer_4k + dma_time + qd_extra + t.fw_out + jitter;
        CompletionInfo {
            completes_at,
            housekeeping_stall: hk_stall,
            queue_wait: total.saturating_sub(service + hk_stall),
            service,
            retried,
        }
    }

    /// Applies FTL actions (programs, GC work) to the flash array,
    /// returning the last program completion time, if any.
    fn apply_ftl_actions(&mut self, ready: SimTime, actions: &[FtlAction]) -> Option<SimTime> {
        let t = self.spec.timing;
        let page_xfer = t.channel_xfer_4k * (self.spec.geometry.page_kib / 4);
        let mut last_program = None;
        for action in actions {
            match *action {
                FtlAction::Program { die } | FtlAction::GcProgram { die } => {
                    let done = self
                        .flash
                        .reserve_program(die, ready, page_xfer, t.flash_program);
                    last_program = Some(last_program.map_or(done, |p: SimTime| p.max(done)));
                    let page_bytes = self.spec.geometry.page_kib * 1024;
                    self.outstanding_programs.push_back((done, page_bytes));
                }
                FtlAction::GcRead { die } => {
                    let _ = self.flash.reserve_read(die, ready, t.flash_read, page_xfer);
                }
                FtlAction::Erase { die } => {
                    let _ = self.flash.reserve_erase(die, ready, t.flash_erase);
                }
            }
        }
        last_program
    }

    /// Drains write-buffer accounting up to `now` and returns the
    /// instant at which at least `needed` bytes of space exist.
    fn buffer_space_at(&mut self, now: SimTime, needed: u64) -> SimTime {
        while let Some(&(done, bytes)) = self.outstanding_programs.front() {
            if done <= now {
                self.outstanding_programs.pop_front();
                self.buffered_bytes = self.buffered_bytes.saturating_sub(bytes);
            } else {
                break;
            }
        }
        let cap = self.spec.timing.buffer_bytes;
        let mut projected = self.buffered_bytes;
        let mut at = now;
        let mut idx = 0;
        while projected + needed > cap {
            match self.outstanding_programs.get(idx) {
                Some(&(done, bytes)) => {
                    projected = projected.saturating_sub(bytes);
                    at = done;
                    idx += 1;
                }
                None => break, // buffer larger than backlog; accept
            }
        }
        at
    }

    fn submit_write(&mut self, now: SimTime, cmd: NvmeCommand) -> CompletionInfo {
        let t = self.spec.timing;
        let (admitted, hk_stall) = self.admit(now, t.write_cmd_gap);
        let ready = admitted + t.fw_in;

        // Host-side DMA into the write buffer.
        let dma_time =
            SimDuration::from_secs_f64(cmd.bytes as f64 / (t.dma_write_mbps as f64 * 1e6));
        let dma_start = ready.max(self.dma_write_free);
        let dma_end = dma_start + dma_time;
        self.dma_write_free = dma_end;

        // Buffer admission: wait for space if the buffer is full.
        let space_at = self.buffer_space_at(now, cmd.bytes as u64);
        self.buffered_bytes += cmd.bytes as u64;

        // FTL allocation and any triggered flash work.
        let mut actions = Vec::new();
        for i in 0..cmd.lba_count() {
            actions.extend(self.ftl.write_slot(cmd.lba + i));
        }
        self.apply_ftl_actions(ready, &actions);

        let completes_at = dma_end.max(space_at) + t.buffer_insert + t.fw_out;
        self.stats.writes += 1;
        self.smart.log_mut().note_write(cmd.lba_count());

        let total = completes_at.saturating_since(now);
        let service = t.fw_in + dma_time + t.buffer_insert + t.fw_out;
        CompletionInfo {
            completes_at,
            housekeeping_stall: hk_stall,
            queue_wait: total.saturating_sub(service + hk_stall),
            service,
            retried: false,
        }
    }

    fn submit_flush(&mut self, now: SimTime) -> CompletionInfo {
        let t = self.spec.timing;
        let (admitted, hk_stall) = self.admit(now, t.read_cmd_gap);
        let drained = self
            .outstanding_programs
            .iter()
            .map(|&(done, _)| done)
            .fold(admitted, SimTime::max);
        self.outstanding_programs.clear();
        self.buffered_bytes = 0;
        let completes_at = drained + t.fw_out;
        self.stats.admin += 1;
        CompletionInfo {
            completes_at,
            housekeeping_stall: hk_stall,
            queue_wait: SimDuration::ZERO,
            service: completes_at.saturating_since(admitted),
            retried: false,
        }
    }

    fn submit_format(&mut self, now: SimTime) -> CompletionInfo {
        let t = self.spec.timing;
        let (admitted, hk_stall) = self.admit(now, t.read_cmd_gap);
        self.ftl.format();
        self.smart.log_mut().reset();
        self.outstanding_programs.clear();
        self.buffered_bytes = 0;
        let completes_at = admitted + t.format_time;
        // The device is busy formatting.
        self.admission_free = completes_at;
        self.stats.admin += 1;
        CompletionInfo {
            completes_at,
            housekeeping_stall: hk_stall,
            queue_wait: SimDuration::ZERO,
            service: t.format_time,
            retried: false,
        }
    }

    fn submit_admin(&mut self, now: SimTime) -> CompletionInfo {
        let t = self.spec.timing;
        let (admitted, hk_stall) = self.admit(now, t.read_cmd_gap);
        let completes_at = admitted + t.admin_service;
        self.stats.admin += 1;
        CompletionInfo {
            completes_at,
            housekeeping_stall: hk_stall,
            queue_wait: SimDuration::ZERO,
            service: t.admin_service,
            retried: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::SmartPolicy;
    use crate::spec::SsdTiming;

    fn quiet_device(seed: u64) -> SsdDevice {
        SsdDevice::new(SsdSpec::table1(), FirmwareProfile::experimental(), seed)
    }

    fn t_us(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::micros(n)
    }

    #[test]
    fn qd1_read_latency_about_25us() {
        let mut dev = quiet_device(1);
        let mut sum = 0.0;
        let n = 1_000;
        let mut now = SimTime::ZERO;
        for i in 0..n {
            let info = dev.submit(now, NvmeCommand::read(i * 97 % 1_000_000, 4096));
            sum += info.latency_since(now).as_micros_f64();
            now = info.completes_at + SimDuration::micros(5);
        }
        let mean = sum / n as f64;
        assert!((23.0..28.0).contains(&mean), "QD1 mean {mean} us");
    }

    #[test]
    fn saturated_random_read_hits_rated_iops() {
        let mut dev = quiet_device(2);
        // Closed-loop QD32 for a simulated 50 ms.
        let mut inflight: Vec<SimTime> = (0..32).map(|_| SimTime::ZERO).collect();
        let mut completed = 0u64;
        let horizon = t_us(50_000);
        let mut lba = 0u64;
        loop {
            let idx = inflight
                .iter()
                .enumerate()
                .min_by_key(|&(_, t)| *t)
                .map(|(i, _)| i)
                .unwrap();
            let now = inflight[idx];
            if now >= horizon {
                break;
            }
            lba = (lba + 7_919) % 1_000_000;
            let info = dev.submit(now, NvmeCommand::read(lba, 4096));
            inflight[idx] = info.completes_at;
            completed += 1;
        }
        let iops = completed as f64 / 0.05;
        assert!(
            (140_000.0..175_000.0).contains(&iops),
            "saturated read IOPS {iops}"
        );
    }

    #[test]
    fn sequential_read_hits_rated_bandwidth() {
        let mut dev = quiet_device(3);
        // 128 KiB sequential reads, QD8, 50 ms.
        let mut inflight: Vec<SimTime> = (0..8).map(|_| SimTime::ZERO).collect();
        let mut bytes = 0u64;
        let horizon = t_us(50_000);
        let mut lba = 0u64;
        loop {
            let idx = inflight
                .iter()
                .enumerate()
                .min_by_key(|&(_, t)| *t)
                .map(|(i, _)| i)
                .unwrap();
            let now = inflight[idx];
            if now >= horizon {
                break;
            }
            let info = dev.submit(now, NvmeCommand::read(lba, 131_072));
            lba += 32;
            inflight[idx] = info.completes_at;
            bytes += 131_072;
        }
        let mbps = bytes as f64 / 0.05 / 1e6;
        assert!((1_500.0..1_900.0).contains(&mbps), "seq read {mbps} MB/s");
    }

    #[test]
    fn sustained_random_write_hits_rated_iops() {
        let mut dev = quiet_device(4);
        let mut now = SimTime::ZERO;
        let mut completed = 0u64;
        let horizon = t_us(200_000);
        let mut lba = 0u64;
        // QD1 writes back-to-back; the admission gap paces to ~30 K.
        while now < horizon {
            lba = (lba + 104_729) % 1_000_000;
            let info = dev.submit(now, NvmeCommand::write(lba, 4096));
            now = info.completes_at;
            completed += 1;
        }
        let iops = completed as f64 / 0.2;
        assert!((25_000.0..33_000.0).contains(&iops), "write IOPS {iops}");
    }

    #[test]
    fn smart_window_stalls_reads() {
        let policy = SmartPolicy::Periodic {
            mean_period: SimDuration::millis(10),
            period_jitter: SimDuration::ZERO,
            min_duration: SimDuration::micros(500),
            max_duration: SimDuration::micros(500),
        };
        let fw = FirmwareProfile::with_smart_policy("TEST", policy);
        let mut dev = SsdDevice::new(SsdSpec::table1(), fw, 5);
        // QD1 reads back to back for 30 ms must cross several windows
        // (10 ms period, phase-randomized start).
        let mut now = SimTime::ZERO;
        let mut worst = SimDuration::ZERO;
        while now < t_us(30_000) {
            let info = dev.submit(now, NvmeCommand::read(0, 4096));
            worst = worst.max(info.housekeeping_stall);
            now = info.completes_at + SimDuration::micros(5);
        }
        assert!(
            worst >= SimDuration::micros(300),
            "expected a stall, worst {worst}"
        );
        assert!(dev.stats().housekeeping_hits >= 1);
    }

    #[test]
    fn experimental_firmware_never_housekeeps() {
        let mut dev = quiet_device(6);
        let mut now = SimTime::ZERO;
        for i in 0..10_000u64 {
            let info = dev.submit(now, NvmeCommand::read(i % 4_000, 4096));
            assert_eq!(info.housekeeping_stall, SimDuration::ZERO);
            now = info.completes_at + SimDuration::micros(3);
        }
        assert_eq!(dev.stats().housekeeping_hits, 0);
    }

    #[test]
    fn max_read_latency_without_smart_stays_under_100us() {
        // Fig. 11: with experimental firmware the worst case is ~90 us.
        let mut dev = quiet_device(7);
        let mut now = SimTime::ZERO;
        let mut max_us: f64 = 0.0;
        for i in 0..200_000u64 {
            let lba = (i * 48_271) % 1_000_000;
            let info = dev.submit(now, NvmeCommand::read(lba, 4096));
            max_us = max_us.max(info.latency_since(now).as_micros_f64());
            now = info.completes_at + SimDuration::micros(4);
        }
        assert!(max_us < 100.0, "QD1 max {max_us} us");
        assert!(max_us > 25.0, "should see some queueing/retry spread");
    }

    #[test]
    fn format_resets_state_and_busy_time() {
        let mut dev = quiet_device(8);
        for lba in 0..100 {
            dev.submit(SimTime::ZERO, NvmeCommand::write(lba, 4096));
        }
        let info = dev.submit(t_us(10_000), NvmeCommand::format());
        assert!(info.completes_at >= t_us(10_000) + SimDuration::millis(400));
        assert_eq!(dev.smart_log().host_writes, 0, "SMART log reset");
        // Reads after format are FOB (unmapped) but still serve.
        let r = dev.submit(info.completes_at, NvmeCommand::read(0, 4096));
        assert!(r.completes_at > info.completes_at);
    }

    #[test]
    fn flush_waits_for_programs() {
        let mut dev = quiet_device(9);
        let w = dev.submit(SimTime::ZERO, NvmeCommand::write(0, 65_536));
        let f = dev.submit(w.completes_at, NvmeCommand::flush());
        // The flash page program (660 us) dominates the buffer insert.
        assert!(
            f.completes_at.as_micros_f64() >= 600.0,
            "flush at {}",
            f.completes_at
        );
    }

    #[test]
    fn admin_commands_are_fast() {
        let mut dev = quiet_device(10);
        let info = dev.submit(SimTime::ZERO, NvmeCommand::get_log_page());
        let us = info.latency_since(SimTime::ZERO).as_micros_f64();
        assert!(us < 200.0, "admin {us} us");
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn read_past_capacity_panics() {
        let mut dev = quiet_device(11);
        let last = dev.spec().logical_pages();
        let _ = dev.submit(SimTime::ZERO, NvmeCommand::read(last, 4096));
    }

    #[test]
    fn identical_seeds_identical_behaviour() {
        let mut a = quiet_device(12);
        let mut b = quiet_device(12);
        let mut now = SimTime::ZERO;
        for i in 0..1_000u64 {
            let ca = a.submit(now, NvmeCommand::read(i * 31 % 9_999, 4096));
            let cb = b.submit(now, NvmeCommand::read(i * 31 % 9_999, 4096));
            assert_eq!(ca, cb);
            now = ca.completes_at + SimDuration::micros(2);
        }
    }

    #[test]
    fn ull_qd1_read_latency_about_9us() {
        let mut dev = SsdDevice::new(SsdSpec::ull(), FirmwareProfile::experimental(), 21);
        let mut sum = 0.0;
        let n = 1_000;
        let mut now = SimTime::ZERO;
        for i in 0..n {
            let info = dev.submit(now, NvmeCommand::read(i * 97 % 1_000_000, 4096));
            sum += info.latency_since(now).as_micros_f64();
            now = info.completes_at + SimDuration::micros(5);
        }
        let mean = sum / n as f64;
        assert!((8.0..12.0).contains(&mean), "ULL QD1 mean {mean} us");
    }

    #[test]
    fn ull_service_stretches_with_queue_depth() {
        // Two batches of overlapping reads to distinct LBAs: the first
        // submitted alone, the second at QD8. The per-outstanding-read
        // slope must make the loaded batch visibly slower on average.
        let solo = {
            let mut dev = SsdDevice::new(SsdSpec::ull(), FirmwareProfile::experimental(), 22);
            let info = dev.submit(SimTime::ZERO, NvmeCommand::read(0, 4096));
            info.latency_since(SimTime::ZERO)
        };
        let mut dev = SsdDevice::new(SsdSpec::ull(), FirmwareProfile::experimental(), 22);
        let mut worst = SimDuration::ZERO;
        for i in 0..8u64 {
            let info = dev.submit(SimTime::ZERO, NvmeCommand::read(i * 1_000, 4096));
            worst = worst.max(info.latency_since(SimTime::ZERO));
        }
        assert!(
            worst >= solo + SsdTiming::ull().qd_service_slope,
            "QD8 worst {worst} should exceed solo {solo} by at least one slope step"
        );
    }

    #[test]
    fn table1_rng_stream_untouched_by_qd_tracking() {
        // The QD deque must be invisible on the classic profile: the
        // exact test from identical_seeds_identical_behaviour, run at
        // overlapping submit times, still matches a fresh device.
        let mut a = quiet_device(23);
        let mut b = quiet_device(23);
        for i in 0..200u64 {
            let now = t_us(i);
            let ca = a.submit(now, NvmeCommand::read(i * 31 % 9_999, 4096));
            let cb = b.submit(now, NvmeCommand::read(i * 31 % 9_999, 4096));
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn smart_log_counts_io() {
        let mut dev = quiet_device(13);
        dev.submit(SimTime::ZERO, NvmeCommand::read(0, 8192));
        dev.submit(t_us(100), NvmeCommand::write(0, 4096));
        let log = dev.smart_log();
        assert_eq!(log.host_reads, 1);
        assert_eq!(log.data_units_read, 2);
        assert_eq!(log.host_writes, 1);
        assert_eq!(log.data_units_written, 1);
    }
}
