//! SMART housekeeping engine and log data.
//!
//! Production firmware periodically collects and persists SMART data;
//! while a window is open, command admission stalls, producing the
//! periodic latency spikes of the paper's Fig. 10. The engine derives
//! its window schedule deterministically from the device's RNG stream.

use afa_sim::{SimDuration, SimRng, SimTime};

use crate::firmware::SmartPolicy;

/// Generates the (lazy, deterministic) schedule of housekeeping
/// windows and answers "does admission at time `t` stall, and until
/// when?".
#[derive(Clone, Debug)]
pub struct SmartEngine {
    policy: SmartPolicy,
    rng: SimRng,
    /// Current window, if housekeeping is enabled.
    window: Option<(SimTime, SimTime)>,
    windows_run: u64,
    log: SmartLog,
}

impl SmartEngine {
    /// Creates an engine for the given policy; `rng` seeds the window
    /// schedule.
    pub fn new(policy: SmartPolicy, mut rng: SimRng) -> Self {
        let window = Self::first_window(policy, &mut rng);
        SmartEngine {
            policy,
            rng,
            window,
            windows_run: 0,
            log: SmartLog::default(),
        }
    }

    fn first_window(policy: SmartPolicy, rng: &mut SimRng) -> Option<(SimTime, SimTime)> {
        match policy {
            SmartPolicy::Disabled => None,
            SmartPolicy::Periodic {
                mean_period,
                min_duration,
                max_duration,
                ..
            } => {
                // Phase-randomize: the device has been powered on for
                // a long time already, so the measurement window cuts
                // into its schedule at a uniformly random phase.
                let start =
                    SimTime::ZERO + SimDuration::nanos(rng.below(mean_period.as_nanos().max(1)));
                let dur = SimDuration::nanos(
                    rng.range_inclusive(min_duration.as_nanos(), max_duration.as_nanos()),
                );
                Some((start, start + dur))
            }
        }
    }

    fn next_window(policy: SmartPolicy, after: SimTime, rng: &mut SimRng) -> (SimTime, SimTime) {
        match policy {
            SmartPolicy::Disabled => unreachable!("no windows when disabled"),
            SmartPolicy::Periodic {
                mean_period,
                period_jitter,
                min_duration,
                max_duration,
            } => {
                let jitter_ns = if period_jitter.is_zero() {
                    0
                } else {
                    rng.range_inclusive(0, 2 * period_jitter.as_nanos())
                };
                let gap = SimDuration::nanos(
                    (mean_period.as_nanos() + jitter_ns).saturating_sub(period_jitter.as_nanos()),
                );
                let dur = SimDuration::nanos(
                    rng.range_inclusive(min_duration.as_nanos(), max_duration.as_nanos()),
                );
                let start = after + gap;
                (start, start + dur)
            }
        }
    }

    /// If command admission at `t` falls inside a housekeeping window,
    /// returns the window's end (admission resumes there); otherwise
    /// returns `t` unchanged. Advances the schedule as time passes.
    pub fn admission_after(&mut self, t: SimTime) -> SimTime {
        let policy = self.policy;
        while let Some((start, end)) = self.window {
            if t < start {
                return t;
            }
            if t < end {
                // Stalled behind this window.
                self.log.note_housekeeping();
                return end;
            }
            // Window fully in the past; generate the next one.
            self.windows_run += 1;
            self.window = Some(Self::next_window(policy, start, &mut self.rng));
        }
        t
    }

    /// Start of the next window at or after `t`, if housekeeping is
    /// enabled (used by tests and the housekeeping ablation).
    pub fn next_window_start(&mut self, t: SimTime) -> Option<SimTime> {
        let policy = self.policy;
        loop {
            let (start, end) = self.window?;
            if t <= end {
                return Some(start);
            }
            self.windows_run += 1;
            self.window = Some(Self::next_window(policy, start, &mut self.rng));
        }
    }

    /// Number of windows that have fully elapsed.
    pub fn windows_run(&self) -> u64 {
        self.windows_run
    }

    /// The device's SMART log (served to `GetLogPage`).
    pub fn log(&self) -> &SmartLog {
        &self.log
    }

    /// Mutable access for the device to update counters.
    pub fn log_mut(&mut self) -> &mut SmartLog {
        &mut self.log
    }
}

/// Host-visible SMART / health counters (NVMe log page 0x02 subset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmartLog {
    /// Composite temperature in Kelvin (modeled constant).
    pub temperature_k: u16,
    /// 4 KiB units read since format.
    pub data_units_read: u64,
    /// 4 KiB units written since format.
    pub data_units_written: u64,
    /// Host read commands completed.
    pub host_reads: u64,
    /// Host write commands completed.
    pub host_writes: u64,
    /// Media read-retry events.
    pub media_retries: u64,
    /// Housekeeping stalls encountered by host commands.
    pub housekeeping_stalls: u64,
}

impl SmartLog {
    /// Records a host read of `units` 4 KiB blocks.
    pub fn note_read(&mut self, units: u64) {
        self.host_reads += 1;
        self.data_units_read += units;
    }

    /// Records a host write of `units` 4 KiB blocks.
    pub fn note_write(&mut self, units: u64) {
        self.host_writes += 1;
        self.data_units_written += units;
    }

    /// Records a media read-retry.
    pub fn note_retry(&mut self) {
        self.media_retries += 1;
    }

    /// Records a host command stalled behind housekeeping.
    pub fn note_housekeeping(&mut self) {
        self.housekeeping_stalls += 1;
    }

    /// Clears all counters (NVMe Format).
    pub fn reset(&mut self) {
        *self = SmartLog {
            temperature_k: self.temperature_k,
            ..SmartLog::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(period_s: u64, dur_us: u64) -> SmartPolicy {
        SmartPolicy::Periodic {
            mean_period: SimDuration::secs(period_s),
            period_jitter: SimDuration::ZERO,
            min_duration: SimDuration::micros(dur_us),
            max_duration: SimDuration::micros(dur_us),
        }
    }

    #[test]
    fn disabled_never_stalls() {
        let mut e = SmartEngine::new(SmartPolicy::Disabled, SimRng::from_seed(1));
        for s in 0..1000 {
            let t = SimTime::ZERO + SimDuration::millis(s * 100);
            assert_eq!(e.admission_after(t), t);
        }
        assert_eq!(e.windows_run(), 0);
    }

    #[test]
    fn first_window_is_phase_randomized_within_one_period() {
        let mut starts = Vec::new();
        for seed in 0..50 {
            let mut e = SmartEngine::new(periodic(10, 500), SimRng::from_seed(seed));
            let start = e.next_window_start(SimTime::ZERO).expect("window");
            assert!(
                start < SimTime::ZERO + SimDuration::secs(10),
                "phase beyond period"
            );
            starts.push(start);
        }
        starts.sort_unstable();
        starts.dedup();
        assert!(starts.len() > 40, "phases should differ across devices");
    }

    #[test]
    fn admission_inside_window_stalls_to_end() {
        let mut e = SmartEngine::new(periodic(10, 500), SimRng::from_seed(2));
        let start = e.next_window_start(SimTime::ZERO).expect("window");
        let inside = start + SimDuration::micros(100);
        let resumed = e.admission_after(inside);
        assert_eq!(resumed, start + SimDuration::micros(500));
    }

    #[test]
    fn admission_outside_window_passes_through() {
        let mut e = SmartEngine::new(periodic(10, 500), SimRng::from_seed(3));
        let start = e.next_window_start(SimTime::ZERO).expect("window");
        if start > SimTime::ZERO {
            let before = start - SimDuration::micros(1);
            assert_eq!(e.admission_after(before), before);
        }
    }

    #[test]
    fn windows_repeat_periodically() {
        let mut e = SmartEngine::new(periodic(10, 500), SimRng::from_seed(4));
        // Jump far ahead: the first window starts within the first
        // 10 s, then one window per 10 s follows.
        let t = SimTime::ZERO + SimDuration::secs(35);
        assert_eq!(e.admission_after(t), t);
        assert!((3..=4).contains(&e.windows_run()), "{}", e.windows_run());
    }

    #[test]
    fn jittered_schedule_is_deterministic_per_seed() {
        let policy = SmartPolicy::Periodic {
            mean_period: SimDuration::secs(25),
            period_jitter: SimDuration::secs(5),
            min_duration: SimDuration::micros(300),
            max_duration: SimDuration::micros(600),
        };
        let mut a = SmartEngine::new(policy, SimRng::from_seed(7));
        let mut b = SmartEngine::new(policy, SimRng::from_seed(7));
        for s in 0..20 {
            let t = SimTime::ZERO + SimDuration::secs(s * 10);
            assert_eq!(a.admission_after(t), b.admission_after(t));
        }
    }

    #[test]
    fn log_counters_accumulate_and_reset() {
        let mut log = SmartLog::default();
        log.note_read(8);
        log.note_write(1);
        log.note_retry();
        log.note_housekeeping();
        assert_eq!(log.data_units_read, 8);
        assert_eq!(log.host_writes, 1);
        assert_eq!(log.media_retries, 1);
        assert_eq!(log.housekeeping_stalls, 1);
        log.reset();
        assert_eq!(log, SmartLog::default());
    }

    #[test]
    fn stall_increments_log() {
        let mut e = SmartEngine::new(periodic(1, 500), SimRng::from_seed(9));
        let start = e.next_window_start(SimTime::ZERO).unwrap();
        e.admission_after(start + SimDuration::micros(1));
        assert_eq!(e.log().housekeeping_stalls, 1);
    }
}
