//! A compact NVMe-like command set.
//!
//! The host accesses each SSD through raw block I/O plus the admin
//! commands the paper exercises: `Format` (to reach the FOB state,
//! §III-B) and `GetLogPage` for SMART (§IV-E).

/// NVMe opcodes supported by the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NvmeOpcode {
    /// 4 KiB-granular read.
    Read,
    /// 4 KiB-granular write.
    Write,
    /// Flush the volatile write buffer to flash.
    Flush,
    /// NVMe Format: discard all data, restoring FOB state.
    Format,
    /// Identify controller (admin).
    Identify,
    /// Get Log Page — SMART / health information (admin).
    GetLogPage,
}

/// One host command submitted to a device.
///
/// LBAs address 4 KiB logical blocks; `bytes` must be a positive
/// multiple of 4096.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvmeCommand {
    /// Operation to perform.
    pub opcode: NvmeOpcode,
    /// Starting logical block (4 KiB units). Ignored by admin commands.
    pub lba: u64,
    /// Transfer length in bytes. Ignored by admin commands.
    pub bytes: u32,
}

/// Logical-block size used throughout the model.
pub const LBA_BYTES: u32 = 4096;

impl NvmeCommand {
    /// Builds a read of `bytes` starting at `lba`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a multiple of 4096.
    pub fn read(lba: u64, bytes: u32) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(LBA_BYTES),
            "bytes must be a positive multiple of 4096"
        );
        NvmeCommand {
            opcode: NvmeOpcode::Read,
            lba,
            bytes,
        }
    }

    /// Builds a write of `bytes` starting at `lba`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a multiple of 4096.
    pub fn write(lba: u64, bytes: u32) -> Self {
        assert!(
            bytes > 0 && bytes.is_multiple_of(LBA_BYTES),
            "bytes must be a positive multiple of 4096"
        );
        NvmeCommand {
            opcode: NvmeOpcode::Write,
            lba,
            bytes,
        }
    }

    /// Builds a flush command.
    pub fn flush() -> Self {
        NvmeCommand {
            opcode: NvmeOpcode::Flush,
            lba: 0,
            bytes: 0,
        }
    }

    /// Builds a format command (returns the device to FOB state).
    pub fn format() -> Self {
        NvmeCommand {
            opcode: NvmeOpcode::Format,
            lba: 0,
            bytes: 0,
        }
    }

    /// Builds an identify admin command.
    pub fn identify() -> Self {
        NvmeCommand {
            opcode: NvmeOpcode::Identify,
            lba: 0,
            bytes: 0,
        }
    }

    /// Builds a SMART / health Get Log Page admin command.
    pub fn get_log_page() -> Self {
        NvmeCommand {
            opcode: NvmeOpcode::GetLogPage,
            lba: 0,
            bytes: 0,
        }
    }

    /// Number of 4 KiB logical blocks this command covers.
    pub fn lba_count(&self) -> u64 {
        (self.bytes / LBA_BYTES) as u64
    }

    /// Whether this is an I/O (read/write) rather than an admin or
    /// management command.
    pub fn is_io(&self) -> bool {
        matches!(self.opcode, NvmeOpcode::Read | NvmeOpcode::Write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_constructors() {
        let r = NvmeCommand::read(10, 8192);
        assert_eq!(r.opcode, NvmeOpcode::Read);
        assert_eq!(r.lba_count(), 2);
        assert!(r.is_io());

        let w = NvmeCommand::write(0, 4096);
        assert_eq!(w.opcode, NvmeOpcode::Write);
        assert_eq!(w.lba_count(), 1);
    }

    #[test]
    fn admin_commands_are_not_io() {
        assert!(!NvmeCommand::flush().is_io());
        assert!(!NvmeCommand::format().is_io());
        assert!(!NvmeCommand::identify().is_io());
        assert!(!NvmeCommand::get_log_page().is_io());
    }

    #[test]
    #[should_panic(expected = "multiple of 4096")]
    fn unaligned_read_panics() {
        let _ = NvmeCommand::read(0, 1000);
    }

    #[test]
    #[should_panic(expected = "multiple of 4096")]
    fn zero_byte_write_panics() {
        let _ = NvmeCommand::write(0, 0);
    }
}
