//! Failure-injection tests: crank the device's rare-event knobs and
//! verify the tail responds the way the model promises.

use afa_sim::{SimDuration, SimTime};
use afa_ssd::{FirmwareProfile, NvmeCommand, SmartPolicy, SsdDevice, SsdSpec};

fn qd1_max_us(mut dev: SsdDevice, ios: u64) -> f64 {
    let mut now = SimTime::ZERO;
    let mut max = 0.0f64;
    for i in 0..ios {
        let lba = (i * 48_271) % 1_000_000;
        let info = dev.submit(now, NvmeCommand::read(lba, 4096));
        max = max.max(info.latency_since(now).as_micros_f64());
        now = info.completes_at + SimDuration::micros(5);
    }
    max
}

#[test]
fn elevated_read_retry_rate_fattens_the_tail() {
    let mut healthy = SsdSpec::table1();
    healthy.timing.read_retry_prob_ppm = 0;
    let mut flaky = SsdSpec::table1();
    // A dying drive: 1 % of reads need a retry.
    flaky.timing.read_retry_prob_ppm = 10_000;
    flaky.timing.read_retry_min = SimDuration::micros(100);
    flaky.timing.read_retry_max = SimDuration::micros(300);

    let max_healthy = qd1_max_us(
        SsdDevice::new(healthy, FirmwareProfile::experimental(), 1),
        20_000,
    );
    let max_flaky = qd1_max_us(
        SsdDevice::new(flaky, FirmwareProfile::experimental(), 1),
        20_000,
    );
    assert!(max_healthy < 60.0, "healthy max {max_healthy}");
    assert!(
        max_flaky > 120.0,
        "flaky drive should show retry tail, got {max_flaky}"
    );
}

#[test]
fn pathological_housekeeping_dominates_everything() {
    // A firmware bug: SMART every 50 ms for 5 ms.
    let fw = FirmwareProfile::with_smart_policy(
        "BUGGY",
        SmartPolicy::Periodic {
            mean_period: SimDuration::millis(50),
            period_jitter: SimDuration::millis(5),
            min_duration: SimDuration::millis(5),
            max_duration: SimDuration::millis(5),
        },
    );
    let max = qd1_max_us(SsdDevice::new(SsdSpec::table1(), fw, 2), 20_000);
    assert!(
        (4_000.0..6_000.0).contains(&max),
        "buggy firmware max should be ~5 ms, got {max}"
    );
}

#[test]
fn slow_flash_shifts_the_whole_distribution() {
    let mut worn = SsdSpec::table1();
    // End-of-life flash: tripled array read time.
    worn.timing.flash_read = SimDuration::micros(42);
    let mut dev = SsdDevice::new(worn, FirmwareProfile::experimental(), 3);
    let mut now = SimTime::ZERO;
    let mut sum = 0.0;
    let n = 5_000;
    for i in 0..n {
        let info = dev.submit(now, NvmeCommand::read(i % 100_000, 4096));
        sum += info.latency_since(now).as_micros_f64();
        now = info.completes_at + SimDuration::micros(5);
    }
    let mean = sum / n as f64;
    assert!(
        (50.0..60.0).contains(&mean),
        "worn-flash mean should shift by ~tR delta, got {mean}"
    );
}

#[test]
fn write_buffer_saturation_backpressures_writes() {
    let mut small_buffer = SsdSpec::table1();
    small_buffer.timing.buffer_bytes = 256 * 1024; // 256 KiB cache
    let mut dev = SsdDevice::new(small_buffer, FirmwareProfile::experimental(), 4);
    // Hammer 128 KiB writes back-to-back; once the tiny buffer fills,
    // completions must wait for flash programs.
    let mut now = SimTime::ZERO;
    let mut worst = SimDuration::ZERO;
    for i in 0..200u64 {
        let info = dev.submit(now, NvmeCommand::write(i * 32, 131_072));
        worst = worst.max(info.latency_since(now));
        now = info.completes_at;
    }
    assert!(
        worst >= SimDuration::micros(300),
        "saturated buffer should stall writes, worst {worst}"
    );
}

#[test]
fn degraded_dma_caps_sequential_throughput() {
    let mut degraded = SsdSpec::table1();
    degraded.timing.dma_read_mbps = 400; // a Gen1-x1-class bottleneck
    let mut dev = SsdDevice::new(degraded, FirmwareProfile::experimental(), 5);
    let mut inflight = [SimTime::ZERO; 8];
    let mut bytes = 0u64;
    let horizon = SimTime::ZERO + SimDuration::millis(100);
    let mut lba = 0;
    loop {
        let (idx, &now) = inflight
            .iter()
            .enumerate()
            .min_by_key(|&(_, t)| *t)
            .unwrap();
        if now >= horizon {
            break;
        }
        let info = dev.submit(now, NvmeCommand::read(lba, 131_072));
        lba += 32;
        inflight[idx] = info.completes_at;
        bytes += 131_072;
    }
    let mbps = bytes as f64 / 0.1 / 1e6;
    assert!(
        (300.0..480.0).contains(&mbps),
        "throughput should track the degraded DMA: {mbps} MB/s"
    );
}

mod wear {
    use afa_ssd::{FlashGeometry, Ftl, FtlConfig};

    /// A workload that hammers a small hot range while a large cold
    /// range sits still — the classic wear-leveling stress.
    fn hot_cold_workload(ftl: &mut Ftl, logical: u64, rounds: u64) {
        // Cold fill.
        for lpn in 0..logical {
            ftl.write_slot(lpn);
        }
        // Hot overwrites of the first 5 %.
        let hot = (logical / 20).max(1);
        let mut x = 9u64;
        for _ in 0..rounds {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ftl.write_slot(x % hot);
        }
    }

    #[test]
    fn wear_leveling_bounds_the_erase_spread() {
        let g = FlashGeometry::scaled(64);
        let logical = g.total_pages() * (g.page_kib / 4) * 75 / 100;

        let mut without = Ftl::new(
            g,
            FtlConfig {
                wear_level_threshold: None,
                ..FtlConfig::default()
            },
        );
        hot_cold_workload(&mut without, logical, 400_000);

        let mut with_wl = Ftl::new(g, FtlConfig::default());
        hot_cold_workload(&mut with_wl, logical, 400_000);

        let spread_without = without.max_erase_spread();
        let spread_with = with_wl.max_erase_spread();
        assert!(
            spread_without > 32,
            "hot/cold workload should skew wear: spread {spread_without}"
        );
        assert!(
            spread_with < spread_without / 2,
            "WL must bound the spread: {spread_with} vs {spread_without}"
        );
        assert!(with_wl.stats().wl_swaps > 0);
        // Data integrity after all that churn.
        for lpn in 0..logical {
            assert!(with_wl.read_slot(lpn).is_some(), "lpn {lpn} lost");
        }
    }
}
