//! Property-based tests for the SSD model.

use afa_sim::{SimDuration, SimTime};
use afa_ssd::{FirmwareProfile, FlashGeometry, Ftl, FtlConfig, NvmeCommand, SsdDevice, SsdSpec};
use proptest::prelude::*;

proptest! {
    /// Completions never travel back in time, and consecutive
    /// submissions to one device see monotone admission.
    #[test]
    fn completions_after_submission(seed in 0u64..1000, lbas in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed);
        let mut now = SimTime::ZERO;
        for lba in lbas {
            let info = dev.submit(now, NvmeCommand::read(lba, 4096));
            prop_assert!(info.completes_at > now);
            now = now + SimDuration::micros(1);
        }
    }

    /// The latency breakdown components never exceed the total.
    #[test]
    fn breakdown_is_consistent(seed in 0u64..500, lba in 0u64..1_000_000) {
        let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed);
        let now = SimTime::ZERO + SimDuration::millis(seed % 60_000);
        let info = dev.submit(now, NvmeCommand::read(lba, 4096));
        let total = info.latency_since(now);
        let parts = info.housekeeping_stall + info.queue_wait + info.service;
        // Parts must equal total (within the saturating arithmetic).
        prop_assert!(parts <= total + SimDuration::nanos(1), "{parts} vs {total}");
        prop_assert!(total <= parts + SimDuration::nanos(1), "{parts} vs {total}");
    }

    /// FTL mapping coherence under random write/overwrite streams:
    /// every written lpn stays mapped, dies stay in range, and write
    /// amplification is at least 1.
    #[test]
    fn ftl_mapping_coherent(writes in prop::collection::vec(0u64..2_000, 1..3_000)) {
        let mut ftl = Ftl::new(FlashGeometry::scaled(16), FtlConfig::default());
        for &lpn in &writes {
            ftl.write_slot(lpn);
        }
        for &lpn in &writes {
            let die = ftl.read_slot(lpn);
            prop_assert!(die.is_some(), "lpn {lpn} unmapped");
            let die = die.unwrap();
            prop_assert!(die.channel < ftl.geometry().channels);
            prop_assert!(die.die < ftl.geometry().dies_per_channel);
        }
        prop_assert!(ftl.stats().write_amplification() >= 1.0);
    }

    /// Unwritten lpns never become mapped.
    #[test]
    fn unwritten_stays_unmapped(writes in prop::collection::vec(0u64..500, 0..500)) {
        let mut ftl = Ftl::new(FlashGeometry::scaled(16), FtlConfig::default());
        for &lpn in &writes {
            ftl.write_slot(lpn);
        }
        for probe in 10_000u64..10_050 {
            prop_assert!(ftl.read_slot(probe).is_none());
        }
    }

    /// Device behaviour is a pure function of (seed, command stream).
    #[test]
    fn device_is_deterministic(seed in 0u64..200, ops in prop::collection::vec((0u64..10_000, prop::bool::ANY), 1..100)) {
        let mut a = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed);
        let mut b = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed);
        let mut now = SimTime::ZERO;
        for (lba, is_write) in ops {
            let cmd = if is_write {
                NvmeCommand::write(lba, 4096)
            } else {
                NvmeCommand::read(lba, 4096)
            };
            let ca = a.submit(now, cmd);
            let cb = b.submit(now, cmd);
            prop_assert_eq!(ca, cb);
            now = ca.completes_at;
        }
    }
}
