//! Property-based tests for the SSD model, on the first-party
//! [`afa_sim::check`] harness.

use afa_sim::check::run_cases;
use afa_sim::{SimDuration, SimTime};
use afa_ssd::{FirmwareProfile, FlashGeometry, Ftl, FtlConfig, NvmeCommand, SsdDevice, SsdSpec};

/// Completions never travel back in time, and consecutive submissions
/// to one device see monotone admission.
#[test]
fn completions_after_submission() {
    run_cases("completions_after_submission", 64, |g| {
        let seed = g.u64_in(0, 1000);
        let lbas = g.vec_u64(1, 200, 0, 100_000);
        let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed);
        let mut now = SimTime::ZERO;
        for lba in lbas {
            let info = dev.submit(now, NvmeCommand::read(lba, 4096));
            assert!(info.completes_at > now);
            now += SimDuration::micros(1);
        }
    });
}

/// The latency breakdown components never exceed the total.
#[test]
fn breakdown_is_consistent() {
    run_cases("breakdown_is_consistent", 128, |g| {
        let seed = g.u64_in(0, 500);
        let lba = g.u64_in(0, 1_000_000);
        let mut dev = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed);
        let now = SimTime::ZERO + SimDuration::millis(seed % 60_000);
        let info = dev.submit(now, NvmeCommand::read(lba, 4096));
        let total = info.latency_since(now);
        let parts = info.housekeeping_stall + info.queue_wait + info.service;
        // Parts must equal total (within the saturating arithmetic).
        assert!(parts <= total + SimDuration::nanos(1), "{parts} vs {total}");
        assert!(total <= parts + SimDuration::nanos(1), "{parts} vs {total}");
    });
}

/// FTL mapping coherence under random write/overwrite streams: every
/// written lpn stays mapped, dies stay in range, and write
/// amplification is at least 1.
#[test]
fn ftl_mapping_coherent() {
    run_cases("ftl_mapping_coherent", 32, |g| {
        let writes = g.vec_u64(1, 3_000, 0, 2_000);
        let mut ftl = Ftl::new(FlashGeometry::scaled(16), FtlConfig::default());
        for &lpn in &writes {
            ftl.write_slot(lpn);
        }
        for &lpn in &writes {
            let die = ftl.read_slot(lpn);
            assert!(die.is_some(), "lpn {lpn} unmapped");
            let die = die.unwrap();
            assert!(die.channel < ftl.geometry().channels);
            assert!(die.die < ftl.geometry().dies_per_channel);
        }
        assert!(ftl.stats().write_amplification() >= 1.0);
    });
}

/// Unwritten lpns never become mapped.
#[test]
fn unwritten_stays_unmapped() {
    run_cases("unwritten_stays_unmapped", 64, |g| {
        let writes = g.vec_u64(0, 500, 0, 500);
        let mut ftl = Ftl::new(FlashGeometry::scaled(16), FtlConfig::default());
        for &lpn in &writes {
            ftl.write_slot(lpn);
        }
        for probe in 10_000u64..10_050 {
            assert!(ftl.read_slot(probe).is_none());
        }
    });
}

/// Device behaviour is a pure function of (seed, command stream).
#[test]
fn device_is_deterministic() {
    run_cases("device_is_deterministic", 32, |g| {
        let seed = g.u64_in(0, 200);
        let ops = g.vec_of(1, 100, |g| (g.u64_in(0, 10_000), g.bool()));
        let mut a = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed);
        let mut b = SsdDevice::new(SsdSpec::table1(), FirmwareProfile::production(), seed);
        let mut now = SimTime::ZERO;
        for (lba, is_write) in ops {
            let cmd = if is_write {
                NvmeCommand::write(lba, 4096)
            } else {
                NvmeCommand::read(lba, 4096)
            };
            let ca = a.submit(now, cmd);
            let cb = b.submit(now, cmd);
            assert_eq!(ca, cb);
            now = ca.completes_at;
        }
    });
}
