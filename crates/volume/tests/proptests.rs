//! Property-based tests for the striped-volume layer, on the
//! first-party [`afa_sim::check`] harness.

use afa_sim::check::run_cases;
use afa_sim::SimTime;
use afa_volume::{RequestTracker, StripeConfig, StripedVolume};

/// The page mapping is injective and stays within bounds for any
/// width/unit combination.
#[test]
fn page_mapping_is_injective() {
    run_cases("page_mapping_is_injective", 64, |g| {
        let width = g.usize_in(1, 16);
        let unit_pages = g.u32_in(1, 32);
        let pages = g.u64_in(100, 2_000);
        let volume = StripedVolume::new((0..width).collect(), StripeConfig::new(unit_pages * 4096));
        let mut seen = std::collections::HashSet::new();
        for p in 0..pages {
            let (member, member_page) = volume.map_page(p);
            assert!(member < width);
            assert!(seen.insert((member, member_page)), "collision at page {p}");
        }
    });
}

/// Splitting a request never loses or duplicates pages: the sub-I/O
/// page sets partition the request exactly.
#[test]
fn map_read_partitions_the_request() {
    run_cases("map_read_partitions_the_request", 128, |g| {
        let width = g.usize_in(1, 16);
        let unit_pages = g.u32_in(1, 16);
        let start = g.u64_in(0, 10_000);
        let req_pages = g.u32_in(1, 64);
        let volume = StripedVolume::new((0..width).collect(), StripeConfig::new(unit_pages * 4096));
        let subs = volume.map_read(start, req_pages * 4096);
        let mut covered = std::collections::HashSet::new();
        for sub in &subs {
            assert!(sub.member < width);
            assert_eq!(sub.bytes % 4096, 0);
            for i in 0..(sub.bytes / 4096) as u64 {
                assert!(
                    covered.insert((sub.member, sub.lba + i)),
                    "duplicate member page"
                );
            }
        }
        assert_eq!(covered.len() as u32, req_pages);
        // Every covered (member, page) must invert to a request page.
        for p in start..start + req_pages as u64 {
            let key = volume.map_page(p);
            assert!(covered.contains(&key), "page {p} lost");
        }
    });
}

/// A tracked request completes exactly on its last sub-I/O.
#[test]
fn tracker_counts_exactly() {
    run_cases("tracker_counts_exactly", 64, |g| {
        let fanouts = g.vec_of(1, 50, |g| g.u32_in(1, 32));
        let mut tracker = RequestTracker::new();
        let ids: Vec<(u64, u32)> = fanouts
            .iter()
            .enumerate()
            .map(|(i, &f)| (tracker.begin(i, SimTime::ZERO, f), f))
            .collect();
        assert_eq!(tracker.in_flight(), ids.len());
        for (id, fanout) in ids {
            for k in 0..fanout {
                let done = tracker.complete_sub(id);
                if k + 1 == fanout {
                    assert!(done.is_some(), "must finish on last sub");
                } else {
                    assert!(done.is_none(), "finished early at {k}/{fanout}");
                }
            }
        }
        assert_eq!(tracker.in_flight(), 0);
    });
}

/// Timed completion fires exactly once, on the last sub-I/O, and
/// reports `finished_at` equal to the maximum sub-completion time no
/// matter the completion order.
#[test]
fn tracker_timed_completion_is_the_max() {
    run_cases("tracker_timed_completion_is_the_max", 64, |g| {
        let fanout = g.u32_in(1, 32);
        let issued = SimTime::from_nanos(g.u64_in(0, 1_000));
        let mut times: Vec<u64> = (0..fanout)
            .map(|_| issued.as_nanos() + g.u64_in(1, 1_000_000))
            .collect();
        let expected_max = *times.iter().max().expect("fanout >= 1");
        // Complete in a shuffled (index-rotated) order.
        let rot = g.usize_in(0, fanout as usize);
        times.rotate_left(rot);

        let mut tracker = RequestTracker::new();
        let id = tracker.begin(0, issued, fanout);
        let mut finishes = 0;
        for (k, &t) in times.iter().enumerate() {
            match tracker.complete_sub_at(id, SimTime::from_nanos(t)) {
                Some(done) => {
                    finishes += 1;
                    assert_eq!(k as u32 + 1, fanout, "finished before last sub");
                    assert_eq!(done.finished_at, SimTime::from_nanos(expected_max));
                    assert_eq!(done.issued_at, issued);
                    assert_eq!(done.fanout, fanout);
                }
                None => assert!((k as u32) < fanout - 1),
            }
        }
        assert_eq!(finishes, 1, "completion must fire exactly once");
        assert_eq!(tracker.in_flight(), 0);
    });
}
