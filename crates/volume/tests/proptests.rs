//! Property-based tests for the striped-volume layer.

use afa_sim::SimTime;
use afa_volume::{RequestTracker, StripeConfig, StripedVolume};
use proptest::prelude::*;

proptest! {
    /// The page mapping is injective and stays within bounds for any
    /// width/unit combination.
    #[test]
    fn page_mapping_is_injective(width in 1usize..16,
                                 unit_pages in 1u32..32,
                                 pages in 100u64..2_000) {
        let volume = StripedVolume::new(
            (0..width).collect(),
            StripeConfig::new(unit_pages * 4096),
        );
        let mut seen = std::collections::HashSet::new();
        for p in 0..pages {
            let (member, member_page) = volume.map_page(p);
            prop_assert!(member < width);
            prop_assert!(seen.insert((member, member_page)), "collision at page {p}");
        }
    }

    /// Splitting a request never loses or duplicates pages: the
    /// sub-I/O page sets partition the request exactly.
    #[test]
    fn map_read_partitions_the_request(width in 1usize..16,
                                       unit_pages in 1u32..16,
                                       start in 0u64..10_000,
                                       req_pages in 1u32..64) {
        let volume = StripedVolume::new(
            (0..width).collect(),
            StripeConfig::new(unit_pages * 4096),
        );
        let subs = volume.map_read(start, req_pages * 4096);
        let mut covered = std::collections::HashSet::new();
        for sub in &subs {
            prop_assert!(sub.member < width);
            prop_assert_eq!(sub.bytes % 4096, 0);
            for i in 0..(sub.bytes / 4096) as u64 {
                prop_assert!(
                    covered.insert((sub.member, sub.lba + i)),
                    "duplicate member page"
                );
            }
        }
        prop_assert_eq!(covered.len() as u32, req_pages);
        // Every covered (member, page) must invert to a request page.
        for p in start..start + req_pages as u64 {
            let key = volume.map_page(p);
            prop_assert!(covered.contains(&key), "page {p} lost");
        }
    }

    /// A tracked request completes exactly on its last sub-I/O.
    #[test]
    fn tracker_counts_exactly(fanouts in prop::collection::vec(1u32..32, 1..50)) {
        let mut tracker = RequestTracker::new();
        let ids: Vec<(u64, u32)> = fanouts
            .iter()
            .enumerate()
            .map(|(i, &f)| (tracker.begin(i, SimTime::ZERO, f), f))
            .collect();
        prop_assert_eq!(tracker.in_flight(), ids.len());
        for (id, fanout) in ids {
            for k in 0..fanout {
                let done = tracker.complete_sub(id);
                if k + 1 == fanout {
                    prop_assert!(done.is_some(), "must finish on last sub");
                } else {
                    prop_assert!(done.is_none(), "finished early at {k}/{fanout}");
                }
            }
        }
        prop_assert_eq!(tracker.in_flight(), 0);
    }
}
