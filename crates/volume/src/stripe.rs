//! RAID-0 address mapping.

/// Striping parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StripeConfig {
    unit_bytes: u32,
}

impl StripeConfig {
    /// Creates a config with the given stripe unit.
    ///
    /// # Panics
    ///
    /// Panics unless the unit is a positive multiple of 4096.
    pub fn new(unit_bytes: u32) -> Self {
        assert!(
            unit_bytes > 0 && unit_bytes.is_multiple_of(4096),
            "stripe unit must be a positive multiple of 4096"
        );
        StripeConfig { unit_bytes }
    }

    /// The stripe unit in bytes.
    pub fn unit_bytes(&self) -> u32 {
        self.unit_bytes
    }

    /// The stripe unit in 4 KiB pages.
    pub fn unit_pages(&self) -> u64 {
        (self.unit_bytes / 4096) as u64
    }
}

impl Default for StripeConfig {
    /// 64 KiB — a common RAID-0 default.
    fn default() -> Self {
        StripeConfig::new(65_536)
    }
}

/// One per-member I/O produced by splitting a client request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubIo {
    /// Member index *within the volume* (0-based); callers translate
    /// to physical device ids via [`StripedVolume::member_device`].
    pub member: usize,
    /// Starting 4 KiB page on the member device.
    pub lba: u64,
    /// Transfer length in bytes.
    pub bytes: u32,
}

/// A RAID-0 volume over a set of member devices.
///
/// Volume pages are distributed round-robin in stripe-unit chunks:
/// volume page `v` lives on member `(v / unit) % width` at member page
/// `(v / (unit * width)) * unit + v % unit`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StripedVolume {
    members: Vec<usize>,
    config: StripeConfig,
}

impl StripedVolume {
    /// Creates a volume over `members` (physical device ids).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<usize>, config: StripeConfig) -> Self {
        assert!(!members.is_empty(), "a volume needs at least one member");
        StripedVolume { members, config }
    }

    /// Number of member devices (the stripe width).
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// The striping parameters.
    pub fn config(&self) -> StripeConfig {
        self.config
    }

    /// Physical device id of volume member `member`.
    ///
    /// # Panics
    ///
    /// Panics if `member >= width()`.
    pub fn member_device(&self, member: usize) -> usize {
        self.members[member]
    }

    /// Maps one volume page to `(member, member_page)`.
    pub fn map_page(&self, volume_page: u64) -> (usize, u64) {
        let unit = self.config.unit_pages();
        let width = self.width() as u64;
        let chunk = volume_page / unit;
        let member = (chunk % width) as usize;
        let member_page = (chunk / width) * unit + volume_page % unit;
        (member, member_page)
    }

    /// Splits a read of `bytes` at `volume_page` into per-member
    /// sub-I/Os, coalescing contiguous pages on the same member.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a positive multiple of 4096.
    pub fn map_read(&self, volume_page: u64, bytes: u32) -> Vec<SubIo> {
        let mut out = Vec::new();
        self.map_read_into(volume_page, bytes, &mut out);
        out
    }

    /// [`StripedVolume::map_read`] into a caller-owned buffer, cleared
    /// first — the serving hot path reuses one buffer across requests
    /// instead of allocating per dispatch.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a positive multiple of 4096.
    pub fn map_read_into(&self, volume_page: u64, bytes: u32, out: &mut Vec<SubIo>) {
        assert!(
            bytes > 0 && bytes.is_multiple_of(4096),
            "request must be a positive multiple of 4096"
        );
        let pages = (bytes / 4096) as u64;
        out.clear();
        for p in volume_page..volume_page + pages {
            let (member, member_page) = self.map_page(p);
            if let Some(last) = out.last_mut() {
                if last.member == member && last.lba + (last.bytes / 4096) as u64 == member_page {
                    last.bytes += 4096;
                    continue;
                }
            }
            out.push(SubIo {
                member,
                lba: member_page,
                bytes: 4096,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol(width: usize, unit: u32) -> StripedVolume {
        StripedVolume::new((100..100 + width).collect(), StripeConfig::new(unit))
    }

    #[test]
    fn small_read_hits_one_member() {
        let v = vol(8, 65_536);
        let sub = v.map_read(3, 4096);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].member, 0);
        assert_eq!(sub[0].lba, 3);
    }

    #[test]
    fn unit_boundary_splits() {
        let v = vol(4, 16_384); // 4-page units
        let sub = v.map_read(2, 4 * 4096); // pages 2..6 span two units
        assert_eq!(sub.len(), 2);
        assert_eq!(
            sub[0],
            SubIo {
                member: 0,
                lba: 2,
                bytes: 8192
            }
        );
        assert_eq!(
            sub[1],
            SubIo {
                member: 1,
                lba: 0,
                bytes: 8192
            }
        );
    }

    #[test]
    fn full_stripe_read_touches_every_member() {
        let v = vol(8, 65_536);
        let sub = v.map_read(0, 8 * 65_536);
        assert_eq!(sub.len(), 8);
        let members: Vec<usize> = sub.iter().map(|s| s.member).collect();
        assert_eq!(members, (0..8).collect::<Vec<_>>());
        for s in &sub {
            assert_eq!(s.bytes, 65_536);
        }
    }

    #[test]
    fn map_read_into_reuses_the_buffer() {
        let v = vol(4, 16_384);
        let mut buf = Vec::new();
        v.map_read_into(2, 4 * 4096, &mut buf);
        assert_eq!(buf, v.map_read(2, 4 * 4096));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        v.map_read_into(0, 4096, &mut buf);
        assert_eq!(buf, v.map_read(0, 4096));
        assert_eq!(buf.capacity(), cap, "no shrink");
        assert_eq!(buf.as_ptr(), ptr, "no reallocation on reuse");
    }

    #[test]
    fn wraparound_returns_to_member_zero() {
        let v = vol(4, 16_384);
        // Page 16 = unit 4 → member 0, second row.
        let (member, page) = v.map_page(16);
        assert_eq!(member, 0);
        assert_eq!(page, 4);
    }

    #[test]
    fn mapping_is_a_bijection() {
        let v = vol(4, 16_384);
        let mut seen = std::collections::HashSet::new();
        for p in 0..1_000u64 {
            let key = v.map_page(p);
            assert!(seen.insert(key), "collision at volume page {p}: {key:?}");
        }
    }

    #[test]
    fn member_devices_translate() {
        let v = StripedVolume::new(vec![7, 11, 13], StripeConfig::default());
        assert_eq!(v.width(), 3);
        assert_eq!(v.member_device(1), 11);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_volume_panics() {
        let _ = StripedVolume::new(vec![], StripeConfig::default());
    }

    #[test]
    #[should_panic(expected = "multiple of 4096")]
    fn bad_unit_panics() {
        let _ = StripeConfig::new(1000);
    }
}
