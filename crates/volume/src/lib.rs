//! Striped-volume (RAID-0) layer over the SSD array.
//!
//! §I of the paper motivates the whole study with exactly this layer:
//! "one request from a client is divided into multiple I/Os, which are
//! then distributed to many SSDs in parallel as in RAID. In such a
//! setting, long tail latency of the slowest SSD would decide system's
//! overall responsiveness" — the *tail at scale* effect. This crate
//! provides the address-mapping and request-tracking substrate; the
//! whole-system tail-at-scale experiment lives in
//! `afa-core::experiment`.
//!
//! # Example
//!
//! ```
//! use afa_volume::{StripeConfig, StripedVolume};
//!
//! // 8 members, 64 KiB stripe unit.
//! let vol = StripedVolume::new((0..8).collect(), StripeConfig::new(65_536));
//! // A 256 KiB read spans 4 members.
//! let sub = vol.map_read(0, 262_144);
//! assert_eq!(sub.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod stripe;
mod tracker;

pub use stripe::{StripeConfig, StripedVolume, SubIo};
pub use tracker::{ClientRequest, FinishedRequest, RequestTracker};
