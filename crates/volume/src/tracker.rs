//! In-flight client-request tracking.
//!
//! A striped read completes when its *last* sub-I/O completes — the
//! "slowest SSD decides responsiveness" semantics. [`RequestTracker`]
//! matches sub-completions back to their parent requests.

use afa_sim::SimTime;

/// One outstanding client request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientRequest {
    /// Caller-chosen identifier (e.g. the client index).
    pub client: usize,
    /// When the request was issued.
    pub issued_at: SimTime,
    /// Sub-I/Os still in flight.
    pub pending: u32,
}

/// A request whose last sub-I/O has completed, with the completion
/// time recorded ("slowest SSD decides": `finished_at` is the max of
/// the per-sub completion times passed to
/// [`RequestTracker::complete_sub_at`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FinishedRequest {
    /// Caller-chosen identifier (e.g. the client index).
    pub client: usize,
    /// When the request was issued.
    pub issued_at: SimTime,
    /// When the slowest sub-I/O completed.
    pub finished_at: SimTime,
    /// How many sub-I/Os the request fanned out into.
    pub fanout: u32,
}

/// Tracks outstanding striped requests by id.
#[derive(Clone, Debug, Default)]
pub struct RequestTracker {
    requests: std::collections::HashMap<u64, Pending>,
    next_id: u64,
}

#[derive(Clone, Copy, Debug)]
struct Pending {
    request: ClientRequest,
    fanout: u32,
    latest_sub: SimTime,
}

impl RequestTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a request with `fanout` sub-I/Os; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn begin(&mut self, client: usize, issued_at: SimTime, fanout: u32) -> u64 {
        assert!(fanout > 0, "a request needs at least one sub-I/O");
        let id = self.next_id;
        self.next_id += 1;
        self.requests.insert(
            id,
            Pending {
                request: ClientRequest {
                    client,
                    issued_at,
                    pending: fanout,
                },
                fanout,
                latest_sub: issued_at,
            },
        );
        id
    }

    /// Records one sub-completion. Returns the finished request when
    /// it was the last one.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id (a completion without a request is a
    /// simulator bug, not a recoverable condition).
    pub fn complete_sub(&mut self, id: u64) -> Option<ClientRequest> {
        let pending = self
            .requests
            .get_mut(&id)
            .expect("sub-completion for unknown request");
        pending.request.pending -= 1;
        if pending.request.pending == 0 {
            self.requests.remove(&id).map(|p| p.request)
        } else {
            None
        }
    }

    /// Records one sub-completion at simulation time `at`. Returns the
    /// finished request — with `finished_at` equal to the **maximum**
    /// of the sub-completion times, however they were ordered — when
    /// this was the last outstanding sub-I/O.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id, like [`RequestTracker::complete_sub`].
    pub fn complete_sub_at(&mut self, id: u64, at: SimTime) -> Option<FinishedRequest> {
        let pending = self
            .requests
            .get_mut(&id)
            .expect("sub-completion for unknown request");
        pending.request.pending -= 1;
        pending.latest_sub = pending.latest_sub.max(at);
        if pending.request.pending == 0 {
            self.requests.remove(&id).map(|p| FinishedRequest {
                client: p.request.client,
                issued_at: p.request.issued_at,
                finished_at: p.latest_sub,
                fanout: p.fanout,
            })
        } else {
            None
        }
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_on_last_sub() {
        let mut t = RequestTracker::new();
        let id = t.begin(3, SimTime::from_nanos(100), 4);
        assert_eq!(t.in_flight(), 1);
        for _ in 0..3 {
            assert!(t.complete_sub(id).is_none());
        }
        let done = t.complete_sub(id).expect("last sub completes");
        assert_eq!(done.client, 3);
        assert_eq!(done.issued_at, SimTime::from_nanos(100));
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn ids_are_unique_and_concurrent() {
        let mut t = RequestTracker::new();
        let a = t.begin(0, SimTime::ZERO, 2);
        let b = t.begin(1, SimTime::ZERO, 1);
        assert_ne!(a, b);
        assert!(t.complete_sub(b).is_some());
        assert!(t.complete_sub(a).is_none());
        assert!(t.complete_sub(a).is_some());
    }

    #[test]
    fn timed_completion_takes_the_max() {
        let mut t = RequestTracker::new();
        let id = t.begin(7, SimTime::from_nanos(10), 3);
        // Out-of-order completions: the middle one is the slowest.
        assert!(t.complete_sub_at(id, SimTime::from_nanos(500)).is_none());
        assert!(t.complete_sub_at(id, SimTime::from_nanos(900)).is_none());
        let done = t
            .complete_sub_at(id, SimTime::from_nanos(700))
            .expect("last sub completes");
        assert_eq!(done.client, 7);
        assert_eq!(done.issued_at, SimTime::from_nanos(10));
        assert_eq!(done.finished_at, SimTime::from_nanos(900));
        assert_eq!(done.fanout, 3);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown request")]
    fn unknown_id_panics() {
        let mut t = RequestTracker::new();
        t.complete_sub(42);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_fanout_panics() {
        let mut t = RequestTracker::new();
        t.begin(0, SimTime::ZERO, 0);
    }
}
