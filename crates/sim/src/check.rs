//! First-party property-testing harness (stdlib-only).
//!
//! The workspace builds in offline environments, so the property suites
//! cannot depend on an external crate. This module provides the small
//! slice of a property-testing framework those suites actually use: a
//! deterministic per-case value generator ([`Gen`]) seeded from the
//! property name, and a driver ([`run_cases`]) that reports the failing
//! case's seed so a counterexample can be replayed exactly.
//!
//! # Example
//!
//! ```
//! use afa_sim::check::run_cases;
//!
//! run_cases("addition_commutes", 32, |g| {
//!     let a = g.u64_in(0, 1_000);
//!     let b = g.u64_in(0, 1_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::SimRng;

/// Deterministic value generator handed to each property case.
///
/// All draws come from a [`SimRng`] stream derived from the property
/// name and case index, so a reported failure replays bit-exactly.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// A generator for an explicit seed (used to replay failures).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SimRng::from_seed(seed),
        }
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.below(hi - lo)
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// A uniform `u16` in `[lo, hi)`.
    pub fn u16_in(&mut self, lo: u16, hi: u16) -> u16 {
        self.u64_in(lo as u64, hi as u64) as u16
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform_f64(lo, hi)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A vector with a length drawn from `[min_len, max_len)` whose
    /// elements come from `element(self)`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = if min_len + 1 >= max_len {
            min_len
        } else {
            self.usize_in(min_len, max_len)
        };
        (0..len).map(|_| element(self)).collect()
    }

    /// A vector of uniform `u64`s in `[lo, hi)`.
    pub fn vec_u64(&mut self, min_len: usize, max_len: usize, lo: u64, hi: u64) -> Vec<u64> {
        self.vec_of(min_len, max_len, |g| g.u64_in(lo, hi))
    }

    /// Direct access to the underlying RNG for custom draws.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

/// Seed for `name`'s case number `case` (FNV-1a over the name, mixed
/// with the case index).
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `cases` generated cases of the property `body`, panicking with
/// the failing case's seed on the first failure.
///
/// Honours `AFA_CHECK_CASES=<n>` to globally override the case count
/// (e.g. for a deeper nightly run) and `AFA_CHECK_SEED=<n>` to replay a
/// single reported seed.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut Gen)) {
    if let Some(seed) = std::env::var("AFA_CHECK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        body(&mut Gen::from_seed(seed));
        return;
    }
    let cases = std::env::var("AFA_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases)
        .max(1);
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut gen = Gen::from_seed(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut gen)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with AFA_CHECK_SEED={seed}): {msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_respect_ranges() {
        let mut g = Gen::from_seed(7);
        for _ in 0..1_000 {
            let v = g.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        let v = g.vec_u64(3, 9, 0, 5);
        assert!((3..9).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 5));
    }

    #[test]
    fn case_seeds_are_distinct_per_name_and_case() {
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }

    #[test]
    fn run_cases_executes_every_case() {
        let mut n = 0;
        run_cases("counter", 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn failure_reports_the_case_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_cases("always_fails", 4, |g| {
                let v = g.u64_in(0, 10);
                assert!(v > 100, "v was {v}");
            });
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("AFA_CHECK_SEED="), "{msg}");
    }
}
