//! Deterministic, splittable random-number streams.
//!
//! Experiments must be exactly reproducible from a single master seed,
//! and adding or removing a component must not perturb the random draws
//! of unrelated components. We therefore derive one independent stream
//! per component from `(master_seed, stream_id)` using splitmix64
//! mixing, and generate within each stream with xoshiro256\*\*.
//!
//! The generators are implemented here (rather than pulling in the
//! `rand` crate for the hot path) so the exact bit streams are pinned by
//! this workspace and cannot drift with external crate versions.
//!
//! # Example
//!
//! ```
//! use afa_sim::SimRng;
//!
//! let mut a = SimRng::from_seed_and_stream(42, 0);
//! let mut b = SimRng::from_seed_and_stream(42, 0);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! let mut c = SimRng::from_seed_and_stream(42, 1);
//! assert_ne!(a.next_u64(), c.next_u64());
//! ```

/// One step of the splitmix64 sequence; also used as a seed mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* random-number generator with helpers
/// for the distributions used by the simulation models.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a raw 64-bit seed.
    ///
    /// Seeds that would degenerate to the all-zero state are remapped.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent stream from `(master_seed, stream_id)`.
    ///
    /// Streams with distinct ids are statistically independent, so each
    /// simulated component (each SSD, each CPU, the IRQ balancer, …) can
    /// own its stream without cross-contamination.
    pub fn from_seed_and_stream(master_seed: u64, stream_id: u64) -> Self {
        let mut sm = master_seed ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407);
        // One extra scramble so that stream 0 differs from from_seed.
        let mixed = splitmix64(&mut sm) ^ stream_id.rotate_left(17);
        Self::from_seed(mixed)
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire-style rejection to avoid modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// Used for Poisson arrival processes (e.g. background daemon
    /// wake-ups).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Samples a standard normal via Box–Muller, scaled to
    /// `mean + std_dev * z`.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Samples a normal distribution truncated below at `min`.
    pub fn normal_min(&mut self, mean: f64, std_dev: f64, min: f64) -> f64 {
        self.normal(mean, std_dev).max(min)
    }

    /// Samples a (Type I) Pareto distribution with the given scale
    /// (minimum value) and shape.
    ///
    /// Heavy-tailed service times — such as the lengths of
    /// non-preemptible kernel sections — are drawn from this.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is not positive.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(shape > 0.0, "pareto shape must be positive");
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        scale / u.powf(1.0 / shape)
    }

    /// Samples a log-normal distribution parameterized by the mean and
    /// standard deviation of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Forks an independent child generator, advancing this one.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.next_u64();
        SimRng::from_seed(seed)
    }

    /// Randomly shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut streams: Vec<u64> = (0..16)
            .map(|id| SimRng::from_seed_and_stream(99, id).next_u64())
            .collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 16, "stream outputs collided");
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..10_000 {
            let x = rng.below(10);
            assert!(x < 10);
            let y = rng.range_inclusive(5, 7);
            assert!((5..=7).contains(&y));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SimRng::from_seed(11);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.below(8) as usize] += 1;
        }
        let expect = n / 8;
        for &c in &counts {
            assert!(
                (c as i64 - expect as i64).abs() < expect as i64 / 10,
                "bucket count {c} deviates from {expect}"
            );
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::from_seed(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(30.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::from_seed(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::from_seed(17);
        for _ in 0..10_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn normal_min_truncates() {
        let mut rng = SimRng::from_seed(23);
        for _ in 0..10_000 {
            assert!(rng.normal_min(0.0, 5.0, 1.0) >= 1.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::from_seed(29);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::from_seed(31);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]).copied(), Some(42));
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut parent = SimRng::from_seed(37);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(41);
        for _ in 0..1000 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }
}
