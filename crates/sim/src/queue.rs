//! The timestamped event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: ordered by time, then by insertion sequence so that
/// events scheduled for the same instant pop in FIFO order. Stable
/// ordering is what makes whole-system runs bit-reproducible.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of `(SimTime, E)` pairs with stable FIFO
/// ordering among equal timestamps.
///
/// # Example
///
/// ```
/// use afa_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), 'b');
/// q.push(SimTime::from_nanos(10), 'c');
/// q.push(SimTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` at the absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(7), "x");
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(40), "d");
        assert_eq!(q.pop(), Some((t(10), "a")));
        q.push(t(20), "b");
        q.push(t(30), "c");
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), Some((t(40), "d")));
    }
}
