//! The timestamped event queue at the heart of the simulator.
//!
//! Implemented as a **hierarchical timing wheel** (calendar-queue
//! family): 11 levels of 64 nanosecond-resolution buckets, where level
//! `k` sorts events by bits `[6k, 6k+6)` of their absolute timestamp.
//! A push lands in the bucket of the *highest* bit in which the event's
//! time differs from the wheel's current origin — O(1). A pop drains
//! the earliest level-0 bucket; when level 0 is exhausted, the first
//! bucket of the lowest occupied level is *cascaded* (redistributed)
//! into the levels below it. Every event descends at most once per
//! level, so push and pop are amortized O(1) — versus the O(log n)
//! comparator work of a binary heap — and per-level occupancy bitmaps
//! make "find the next bucket" a single `trailing_zeros`.
//!
//! # Ordering contract
//!
//! Identical to the binary-heap implementation this replaced (kept
//! below as a `#[cfg(test)]` reference): events pop in ascending time
//! order, and events scheduled for the same instant pop in FIFO
//! (insertion) order. The FIFO guarantee is structural rather than
//! enforced by sequence numbers: same-time events always map to the
//! same bucket, pushes append, and cascades preserve bucket order, so
//! insertion order survives all the way to level 0 — this is what
//! keeps whole-system runs bit-reproducible. Differential tests (unit
//! and property) drive both implementations with interleaved
//! push/pop sequences and require identical output.
//!
//! Timestamps may go backwards relative to the wheel origin (the
//! generic API allows pushing a time earlier than the last pop); such
//! events overflow into a small sequence-numbered binary heap and
//! still pop in exact `(time, insertion)` order. The simulation driver
//! never produces them — [`crate::Scheduler`] clamps to `now` — so the
//! hot path pays only an empty-heap check.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Merge key of a cross-partition event: `(source LP, destination LP,
/// per-channel send sequence)`. Together with the timestamp this is a
/// total order over cross events that depends only on the logical
/// processes involved — never on how LPs are grouped into shards or on
/// thread interleaving — which is what lets the sharded engine promise
/// byte-identical results for every partition plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MergeKey {
    /// Source logical process.
    pub src: u16,
    /// Destination logical process.
    pub dst: u16,
    /// Per-`(src, dst)` channel send counter.
    pub seq: u64,
}

/// An event type that can carry a [`MergeKey`]. Events returning
/// `Some` sort *before* plain (`None`) events at the same instant and
/// among themselves by key; plain events keep wheel FIFO order. Only
/// [`EventQueue::push_keyed`] consults this — the plain
/// [`EventQueue::push`] path never calls it.
pub trait KeyedEvent {
    /// The merge key, or `None` for an event ordered by FIFO alone.
    fn merge_key(&self) -> Option<MergeKey>;
}

/// Bits of the timestamp consumed per wheel level.
const LEVEL_BITS: u32 = 6;
/// Buckets per level; `u64` occupancy bitmaps require exactly 64.
const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Levels needed so every `u64` timestamp has a home: ⌈64 / 6⌉.
const LEVELS: usize = (64 / LEVEL_BITS as usize) + 1;

/// Wheel level for an event at `time` given the wheel origin `cur`:
/// the level containing the most significant differing bit. `| 1`
/// pins `time == cur` to level 0 without a branch.
#[inline]
fn level_of(time: u64, cur: u64) -> usize {
    debug_assert!(time >= cur);
    ((63 - ((time ^ cur) | 1).leading_zeros()) / LEVEL_BITS) as usize
}

/// An event pushed with a timestamp earlier than the wheel origin
/// (impossible through the simulation driver, legal through the raw
/// API): ordered by time, then insertion sequence, exactly like the
/// old heap.
struct PastEntry<E> {
    time: u64,
    /// `Some` for keyed (cross) events, `None` for plain pushes.
    key: Option<MergeKey>,
    seq: u64,
    event: E,
}

impl<E> PastEntry<E> {
    /// Ascending-order rank: time, then keyed-before-plain, then key
    /// (keyed) or insertion seq (plain) — the same order the wheel's
    /// buckets realize structurally.
    fn rank(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| match (&self.key, &other.key) {
                (Some(a), Some(b)) => a.cmp(b),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => self.seq.cmp(&other.seq),
            })
    }
}

impl<E> PartialEq for PastEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.rank(other) == Ordering::Equal
    }
}

impl<E> Eq for PastEntry<E> {}

impl<E> PartialOrd for PastEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for PastEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        other.rank(self)
    }
}

/// A min-priority queue of `(SimTime, E)` pairs with stable FIFO
/// ordering among equal timestamps, built on a hierarchical timing
/// wheel (amortized O(1) push/pop).
///
/// # Example
///
/// ```
/// use afa_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), 'b');
/// q.push(SimTime::from_nanos(10), 'c');
/// q.push(SimTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    /// `LEVELS × SLOTS` buckets, flattened; bucket `level*SLOTS + slot`
    /// holds events whose timestamp chunk at `level` equals `slot`.
    wheel: Vec<Vec<(u64, E)>>,
    /// Per-level bitmap of non-empty buckets.
    occupied: [u64; LEVELS],
    /// Wheel origin: all wheel-resident events have `time >= cur`.
    cur: u64,
    /// The drained current level-0 bucket; every entry is at
    /// `ready_time`, popped front-first to preserve FIFO order.
    ready: VecDeque<E>,
    ready_time: u64,
    /// Overflow for `time < cur` pushes (see module docs).
    past: BinaryHeap<PastEntry<E>>,
    past_seq: u64,
    /// Reusable cascade buffer; bucket allocations rotate through it
    /// so steady-state operation does not allocate.
    scratch: Vec<(u64, E)>,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            cur: 0,
            ready: VecDeque::new(),
            ready_time: 0,
            past: BinaryHeap::new(),
            past_seq: 0,
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty queue pre-sized for roughly `capacity` pending
    /// events: the drain and cascade buffers are pre-allocated (bucket
    /// storage itself grows on demand and is reused thereafter).
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            ready: VecDeque::with_capacity(capacity.min(1 << 20)),
            scratch: Vec::with_capacity(capacity.min(1 << 20)),
            ..Self::new()
        }
    }

    /// Places `(t, event)` in its wheel bucket. Requires `t >= cur`.
    #[inline]
    fn insert(&mut self, t: u64, event: E) {
        let level = level_of(t, self.cur);
        let slot = ((t >> (level as u32 * LEVEL_BITS)) & SLOT_MASK) as usize;
        self.wheel[level * SLOTS + slot].push((t, event));
        self.occupied[level] |= 1 << slot;
    }

    /// Schedules `event` at the absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let t = time.as_nanos();
        if self.len == 0 {
            // Empty queue: re-anchor the wheel so `t` is the origin.
            // Keeps single-outstanding-event churn entirely in level 0
            // and lets arbitrary (even "past") times start fresh.
            self.cur = t;
        }
        if t < self.cur {
            let seq = self.past_seq;
            self.past_seq += 1;
            self.past.push(PastEntry {
                time: t,
                key: None,
                seq,
                event,
            });
        } else {
            self.insert(t, event);
        }
        self.len += 1;
    }

    /// Schedules a keyed event at the absolute instant `time`, placed
    /// so that at every instant all keyed events pop in [`MergeKey`]
    /// order *before* any plain events sharing the timestamp.
    ///
    /// The position is found by a backward scan of the target bucket:
    /// same-instant keyed entries are maintained key-sorted as a
    /// subsequence of the bucket, an invariant cascades preserve
    /// (same-instant events always share buckets at every level and
    /// cascades keep relative order). Same-instant groups are tiny in
    /// practice — a handful of cross arrivals — so the scan is short;
    /// the plain [`EventQueue::push`] path is untouched and pays
    /// nothing for this.
    ///
    /// The caller must not push a keyed event at or before an instant
    /// it has already drained past (the sharded engine's lookahead
    /// discipline guarantees arrivals are strictly in each receiver's
    /// future); a keyed event landing in the past-overflow heap is
    /// still ordered correctly against everything pending.
    pub fn push_keyed(&mut self, time: SimTime, event: E)
    where
        E: KeyedEvent,
    {
        let key = event.merge_key().expect("push_keyed requires a merge key");
        let t = time.as_nanos();
        if self.len == 0 {
            self.cur = t;
        }
        if t < self.cur {
            let seq = self.past_seq;
            self.past_seq += 1;
            self.past.push(PastEntry {
                time: t,
                key: Some(key),
                seq,
                event,
            });
            self.len += 1;
            return;
        }
        let level = level_of(t, self.cur);
        let slot = ((t >> (level as u32 * LEVEL_BITS)) & SLOT_MASK) as usize;
        let bucket = &mut self.wheel[level * SLOTS + slot];
        self.occupied[level] |= 1 << slot;
        // Scan backward for the last same-instant keyed entry with a
        // key below ours (insert right after it); failing that, before
        // the earliest same-instant entry; failing that, append.
        let mut before: Option<usize> = None;
        let mut pos = bucket.len();
        for i in (0..bucket.len()).rev() {
            let (bt, ref e) = bucket[i];
            if bt != t {
                continue;
            }
            match e.merge_key() {
                Some(k) if k <= key => {
                    pos = i + 1;
                    before = None;
                    break;
                }
                _ => before = Some(i),
            }
        }
        if let Some(i) = before {
            pos = i;
        }
        bucket.insert(pos, (t, event));
        self.len += 1;
    }

    /// Cascades buckets until level 0 is occupied. Requires at least
    /// one wheel-resident event.
    fn settle_wheel(&mut self) {
        while self.occupied[0] == 0 {
            // The first bucket of the lowest occupied level holds the
            // globally earliest events: higher levels differ from the
            // origin in more significant timestamp bits.
            let level = (1..LEVELS)
                .find(|&k| self.occupied[k] != 0)
                .expect("settle_wheel called with an empty wheel");
            let slot = self.occupied[level].trailing_zeros() as u64;
            let shift = level as u32 * LEVEL_BITS;
            // Advance the origin to the start of the bucket's span;
            // everything below `shift` zeroes out.
            let upper = u64::MAX.checked_shl(shift + LEVEL_BITS).unwrap_or(0);
            self.cur = (self.cur & upper) | (slot << shift);
            self.occupied[level] &= !(1 << slot);
            // Swap the bucket against the reusable scratch buffer and
            // redistribute; order-preserving, so FIFO ties survive.
            let mut items = std::mem::replace(
                &mut self.wheel[level * SLOTS + slot as usize],
                std::mem::take(&mut self.scratch),
            );
            for (t, e) in items.drain(..) {
                debug_assert!(level_of(t, self.cur) < level, "cascade must descend");
                self.insert(t, e);
            }
            self.scratch = items;
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // Overflow events are strictly earlier than the origin, and
        // ready events sit exactly at it, so the precedence is fixed.
        if let Some(entry) = self.past.pop() {
            return Some((SimTime::from_nanos(entry.time), entry.event));
        }
        if let Some(event) = self.ready.pop_front() {
            return Some((SimTime::from_nanos(self.ready_time), event));
        }
        self.settle_wheel();
        let slot = self.occupied[0].trailing_zeros() as u64;
        let t = (self.cur & !SLOT_MASK) | slot;
        debug_assert!(t >= self.cur);
        self.cur = t;
        self.ready_time = t;
        self.occupied[0] &= !(1 << slot);
        // A level-0 bucket spans exactly one nanosecond, so every
        // entry shares the timestamp; drain preserves FIFO order and
        // keeps the bucket's allocation for its next occupant.
        let bucket = &mut self.wheel[slot as usize];
        self.ready.extend(bucket.drain(..).map(|(bt, e)| {
            debug_assert_eq!(bt, t);
            e
        }));
        let event = self.ready.pop_front().expect("occupied level-0 bucket");
        Some((SimTime::from_nanos(t), event))
    }

    /// Returns the timestamp of the earliest pending event.
    ///
    /// Non-mutating, so when the head of the queue is buried in a
    /// not-yet-cascaded bucket this scans that bucket (O(bucket));
    /// hot loops inside the crate use [`EventQueue::next_time`], which
    /// settles the wheel and is amortized O(1).
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(p) = self.past.peek() {
            return Some(SimTime::from_nanos(p.time));
        }
        if !self.ready.is_empty() {
            return Some(SimTime::from_nanos(self.ready_time));
        }
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            let slot = self.occupied[level].trailing_zeros() as u64;
            if level == 0 {
                return Some(SimTime::from_nanos((self.cur & !SLOT_MASK) | slot));
            }
            let t = self.wheel[level * SLOTS + slot as usize]
                .iter()
                .map(|&(t, _)| t)
                .min()
                .expect("bucket marked occupied");
            return Some(SimTime::from_nanos(t));
        }
        unreachable!("non-zero len with no events stored")
    }

    /// Returns the timestamp of the earliest pending event, settling
    /// the wheel so the subsequent [`EventQueue::pop`] is O(1). This is
    /// the form the simulation driver's deadline loop uses.
    pub fn next_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(p) = self.past.peek() {
            return Some(SimTime::from_nanos(p.time));
        }
        if !self.ready.is_empty() {
            return Some(SimTime::from_nanos(self.ready_time));
        }
        self.settle_wheel();
        let slot = self.occupied[0].trailing_zeros() as u64;
        Some(SimTime::from_nanos((self.cur & !SLOT_MASK) | slot))
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.occupied = [0; LEVELS];
        self.ready.clear();
        self.past.clear();
        self.scratch.clear();
        self.cur = 0;
        self.ready_time = 0;
        self.len = 0;
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("next_time", &self.peek_time())
            .finish()
    }
}

/// The binary-heap implementation the timing wheel replaced, retained
/// verbatim as the ordering oracle for differential tests.
#[cfg(test)]
pub(crate) mod heap_reference {
    use super::{Ordering, SimTime};
    use std::collections::BinaryHeap;

    struct Entry<E> {
        time: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }

    impl<E> Eq for Entry<E> {}

    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// `(time, insertion-seq)` min-queue on `std::collections::BinaryHeap`.
    #[derive(Default)]
    pub struct HeapEventQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> HeapEventQueue<E> {
        pub fn new() -> Self {
            HeapEventQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }

        pub fn push(&mut self, time: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, event });
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.time, e.event))
        }

        pub fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::heap_reference::HeapEventQueue;
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), 3);
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(7), "x");
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(t(1), ());
        q.push(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), "a");
        q.push(t(40), "d");
        assert_eq!(q.pop(), Some((t(10), "a")));
        q.push(t(20), "b");
        q.push(t(30), "c");
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), Some((t(40), "d")));
    }

    #[test]
    fn far_future_times_cascade_correctly() {
        let mut q = EventQueue::new();
        // One event per wheel level, far beyond level 0's 64 ns span.
        let times: Vec<u64> = (0..16).map(|i| 1u64 << (i * 4)).collect();
        for (i, &n) in times.iter().enumerate() {
            q.push(t(n), i);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        for &n in &sorted {
            let (pt, _) = q.pop().expect("event");
            assert_eq!(pt, t(n));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn huge_timestamps_have_a_home() {
        let mut q = EventQueue::new();
        q.push(t(u64::MAX), "max");
        q.push(t(0), "zero");
        q.push(t(u64::MAX - 1), "penultimate");
        assert_eq!(q.pop(), Some((t(0), "zero")));
        assert_eq!(q.pop(), Some((t(u64::MAX - 1), "penultimate")));
        assert_eq!(q.pop(), Some((t(u64::MAX), "max")));
    }

    #[test]
    fn past_time_pushes_still_order_correctly() {
        let mut q = EventQueue::new();
        q.push(t(1_000), "late");
        assert_eq!(q.pop(), Some((t(1_000), "late")));
        // The origin is now 1000; push events before it.
        q.push(t(2_000), "d");
        q.push(t(500), "b");
        q.push(t(100), "a");
        q.push(t(500), "c"); // same past time: FIFO after "b"
        assert_eq!(q.pop(), Some((t(100), "a")));
        assert_eq!(q.pop(), Some((t(500), "b")));
        assert_eq!(q.pop(), Some((t(500), "c")));
        assert_eq!(q.pop(), Some((t(2_000), "d")));
    }

    #[test]
    fn next_time_matches_peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        let mut x = 9u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            q.push(t((x >> 32) % 1_000_000), i);
        }
        while !q.is_empty() {
            let peeked = q.peek_time();
            assert_eq!(q.next_time(), peeked);
            let (popped, _) = q.pop().expect("non-empty");
            assert_eq!(Some(popped), peeked);
        }
    }

    /// Keyed-path test event: `Some(key)` sorts before plain `None`.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    struct KE(Option<(u16, u16, u64)>, u32);

    impl KeyedEvent for KE {
        fn merge_key(&self) -> Option<MergeKey> {
            self.0.map(|(src, dst, seq)| MergeKey { src, dst, seq })
        }
    }

    fn push_ke(q: &mut EventQueue<KE>, time: u64, e: KE) {
        match e.0 {
            Some(_) => q.push_keyed(t(time), e),
            None => q.push(t(time), e),
        }
    }

    #[test]
    fn keyed_events_sort_by_key_before_plain() {
        let mut q = EventQueue::new();
        // Out-of-key-order pushes at one instant, interleaved with
        // plain events and a different instant.
        push_ke(&mut q, 50, KE(None, 0));
        push_ke(&mut q, 50, KE(Some((2, 0, 0)), 1));
        push_ke(&mut q, 40, KE(Some((9, 9, 9)), 2));
        push_ke(&mut q, 50, KE(Some((1, 1, 1)), 3));
        push_ke(&mut q, 50, KE(Some((1, 1, 0)), 4));
        push_ke(&mut q, 50, KE(None, 5));
        push_ke(&mut q, 50, KE(Some((2, 0, 5)), 6));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e.1)).collect();
        // 40 first; then the t=50 keyed events by (src, dst, seq);
        // then the plain events in FIFO order.
        assert_eq!(order, vec![2, 4, 3, 1, 6, 0, 5]);
    }

    #[test]
    fn keyed_order_survives_cascades() {
        let mut q = EventQueue::new();
        q.push(t(1), KE(None, 99));
        // Same far-future instant, pushed in reverse key order, so the
        // group must cascade down several levels intact.
        let far = 5_000_000;
        for seq in (0..10u64).rev() {
            q.push_keyed(t(far), KE(Some((0, 0, seq)), seq as u32));
        }
        push_ke(&mut q, far, KE(None, 50));
        assert_eq!(q.pop(), Some((t(1), KE(None, 99))));
        for seq in 0..10u32 {
            assert_eq!(q.pop(), Some((t(far), KE(Some((0, 0, seq as u64)), seq))));
        }
        assert_eq!(q.pop(), Some((t(far), KE(None, 50))));
        assert!(q.is_empty());
    }

    #[test]
    fn keyed_past_pushes_order_against_plain() {
        let mut q = EventQueue::new();
        q.push(t(1_000), KE(None, 0));
        assert!(q.pop().is_some()); // origin now 1000
        push_ke(&mut q, 500, KE(None, 1));
        push_ke(&mut q, 500, KE(Some((3, 0, 0)), 2));
        push_ke(&mut q, 500, KE(Some((1, 0, 7)), 3));
        push_ke(&mut q, 400, KE(None, 4));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e.1)).collect();
        assert_eq!(order, vec![4, 3, 2, 1]);
    }

    /// The differential ordering test the timing wheel's correctness
    /// rests on: long random interleavings of pushes and pops must
    /// agree, value-for-value, with the retained binary heap.
    #[test]
    fn differential_against_heap_reference() {
        // Simple xorshift* so the test is self-contained.
        let mut state = 0x853C_49E6_748F_EA9Bu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20u64 {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            let mut clock = trial * 1_000; // varied starting origin
            let mut id = 0u64;
            for _ in 0..4_000 {
                let r = rng();
                if r % 100 < 60 || wheel.is_empty() {
                    // Mixed horizons: mostly near-future, occasionally
                    // far-future (exercises high levels) or same-tick.
                    let gap = match r % 10 {
                        0 => 0,
                        1..=6 => (r >> 8) % 50_000,
                        7 | 8 => (r >> 8) % 5_000_000,
                        _ => (r >> 8) % 10_000_000_000,
                    };
                    wheel.push(t(clock + gap), id);
                    heap.push(t(clock + gap), id);
                    id += 1;
                } else {
                    assert_eq!(wheel.peek_time(), heap.peek_time(), "trial {trial}");
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "trial {trial}");
                    if let Some((pt, _)) = a {
                        // Keep pushes causal, like the driver does.
                        clock = clock.max(pt.as_nanos());
                    }
                }
                assert_eq!(wheel.len(), heap.len());
            }
            // Drain both completely.
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "drain, trial {trial}");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
