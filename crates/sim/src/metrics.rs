//! Process-wide DES throughput counters.
//!
//! Every [`Simulation`](crate::Simulation) adds its processed-event
//! count here when a `run_to_completion` / `run_until` drive finishes
//! (batched, so the per-event hot path pays nothing). Harnesses
//! snapshot [`events_processed_total`] around a workload to derive an
//! events/sec figure — the single number that decides how close the
//! reproduction can get to the paper's full 120 s × 64-SSD runs.
//!
//! The counter is cumulative across the whole process and shared by
//! concurrent simulations (the experiment pool runs many at once), so
//! deltas are only meaningful around code the caller knows ran in
//! isolation; keep derived rates out of byte-stable artifacts.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);
static CLAMPED_PAST: AtomicU64 = AtomicU64::new(0);

/// Adds `n` processed events to the process-wide total.
pub fn add_events(n: u64) {
    if n > 0 {
        EVENTS_PROCESSED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Total simulation events processed by this process so far.
pub fn events_processed_total() -> u64 {
    EVENTS_PROCESSED.load(Ordering::Relaxed)
}

/// Adds `n` past-time schedules that were clamped to the clock (see
/// [`Simulation::clamped_past_schedules`](crate::Simulation::clamped_past_schedules)).
pub fn add_clamped_past(n: u64) {
    if n > 0 {
        CLAMPED_PAST.fetch_add(n, Ordering::Relaxed);
    }
}

/// Total past-time schedules clamped by this process so far. A healthy
/// model never schedules into the past, so harnesses snapshot this
/// around a run and fail loudly on a non-zero delta.
pub fn clamped_past_total() -> u64 {
    CLAMPED_PAST.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_accumulate() {
        let before = events_processed_total();
        add_events(0);
        assert!(events_processed_total() >= before);
        add_events(17);
        assert!(events_processed_total() >= before + 17);
    }

    #[test]
    fn clamped_adds_accumulate() {
        let before = clamped_past_total();
        add_clamped_past(0);
        assert!(clamped_past_total() >= before);
        add_clamped_past(3);
        assert!(clamped_past_total() >= before + 3);
    }
}
