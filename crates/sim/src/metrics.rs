//! Process-wide DES throughput counters.
//!
//! Every [`Simulation`](crate::Simulation) adds its processed-event
//! count here when a `run_to_completion` / `run_until` drive finishes
//! (batched, so the per-event hot path pays nothing). Harnesses
//! snapshot [`events_processed_total`] around a workload to derive an
//! events/sec figure — the single number that decides how close the
//! reproduction can get to the paper's full 120 s × 64-SSD runs.
//!
//! The counter is cumulative across the whole process and shared by
//! concurrent simulations (the experiment pool runs many at once), so
//! deltas are only meaningful around code the caller knows ran in
//! isolation; keep derived rates out of byte-stable artifacts.
//!
//! The frontend serving layer flushes its shed/hedge counters here the
//! same way ([`add_frontend`] / [`frontend_totals`]): per-run integers
//! accumulated locally, one atomic add when the drive finishes. Unlike
//! the throughput counters these are simulation-deterministic, so
//! harnesses may serialize their deltas.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);
static CLAMPED_PAST: AtomicU64 = AtomicU64::new(0);
static REQUESTS_ADMITTED: AtomicU64 = AtomicU64::new(0);
static REQUESTS_SHED: AtomicU64 = AtomicU64::new(0);
static HEDGES_FIRED: AtomicU64 = AtomicU64::new(0);
static HEDGES_WON: AtomicU64 = AtomicU64::new(0);
static SLAB_PEAK_LIVE: AtomicU64 = AtomicU64::new(0);
static SKETCH_MERGES: AtomicU64 = AtomicU64::new(0);
static COMPLETION_INTERRUPTS: AtomicU64 = AtomicU64::new(0);
static COMPLETION_POLLS: AtomicU64 = AtomicU64::new(0);
static COMPLETION_HYBRID_SLEEPS: AtomicU64 = AtomicU64::new(0);
static FLEET_ARRAYS_FAILED: AtomicU64 = AtomicU64::new(0);
static FLEET_FAILOVERS: AtomicU64 = AtomicU64::new(0);
static FLEET_RETRIES: AtomicU64 = AtomicU64::new(0);
static FLEET_REREPLICATION_IOS: AtomicU64 = AtomicU64::new(0);
static FUSED_CHAINS: AtomicU64 = AtomicU64::new(0);
static DEFUSED_CHAINS: AtomicU64 = AtomicU64::new(0);
static ELIDED_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` processed events to the process-wide total.
pub fn add_events(n: u64) {
    if n > 0 {
        EVENTS_PROCESSED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Total simulation events processed by this process so far.
pub fn events_processed_total() -> u64 {
    EVENTS_PROCESSED.load(Ordering::Relaxed)
}

/// Adds `n` past-time schedules that were clamped to the clock (see
/// [`Simulation::clamped_past_schedules`](crate::Simulation::clamped_past_schedules)).
pub fn add_clamped_past(n: u64) {
    if n > 0 {
        CLAMPED_PAST.fetch_add(n, Ordering::Relaxed);
    }
}

/// Total past-time schedules clamped by this process so far. A healthy
/// model never schedules into the past, so harnesses snapshot this
/// around a run and fail loudly on a non-zero delta.
pub fn clamped_past_total() -> u64 {
    CLAMPED_PAST.load(Ordering::Relaxed)
}

/// Process-wide frontend serving-layer counters (a snapshot of the
/// cumulative totals; deltas around a run give per-run figures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendCounters {
    /// Requests that passed admission into a tenant queue.
    pub requests_admitted: u64,
    /// Requests dropped by the token bucket or queue overflow.
    pub requests_shed: u64,
    /// Hedged duplicate sub-I/Os issued for stragglers.
    pub hedges_fired: u64,
    /// Hedges whose duplicate finished before the original.
    pub hedges_won: u64,
    /// Request-book slab occupancy high-water marks, summed across
    /// flushes — the cumulative total is not meaningful on its own,
    /// but the delta around a single run is that run's peak.
    pub slab_peak_live: u64,
    /// Cross-tenant quantile-sketch rollup merges performed.
    pub sketch_merges: u64,
}

impl FrontendCounters {
    /// Component-wise difference (`self - earlier`), for deltas around
    /// a run.
    pub fn since(&self, earlier: &FrontendCounters) -> FrontendCounters {
        FrontendCounters {
            requests_admitted: self.requests_admitted - earlier.requests_admitted,
            requests_shed: self.requests_shed - earlier.requests_shed,
            hedges_fired: self.hedges_fired - earlier.hedges_fired,
            hedges_won: self.hedges_won - earlier.hedges_won,
            slab_peak_live: self.slab_peak_live - earlier.slab_peak_live,
            sketch_merges: self.sketch_merges - earlier.sketch_merges,
        }
    }

    /// Whether any counter moved.
    pub fn any(&self) -> bool {
        self.requests_admitted
            | self.requests_shed
            | self.hedges_fired
            | self.hedges_won
            | self.slab_peak_live
            | self.sketch_merges
            != 0
    }
}

/// Adds a frontend run's counters to the process-wide totals. Like
/// [`add_events`], this is a batched flush: the serving-layer world
/// accumulates plain integers on the hot path and flushes once when
/// its drive finishes.
pub fn add_frontend(delta: FrontendCounters) {
    if delta.requests_admitted > 0 {
        REQUESTS_ADMITTED.fetch_add(delta.requests_admitted, Ordering::Relaxed);
    }
    if delta.requests_shed > 0 {
        REQUESTS_SHED.fetch_add(delta.requests_shed, Ordering::Relaxed);
    }
    if delta.hedges_fired > 0 {
        HEDGES_FIRED.fetch_add(delta.hedges_fired, Ordering::Relaxed);
    }
    if delta.hedges_won > 0 {
        HEDGES_WON.fetch_add(delta.hedges_won, Ordering::Relaxed);
    }
    if delta.slab_peak_live > 0 {
        SLAB_PEAK_LIVE.fetch_add(delta.slab_peak_live, Ordering::Relaxed);
    }
    if delta.sketch_merges > 0 {
        SKETCH_MERGES.fetch_add(delta.sketch_merges, Ordering::Relaxed);
    }
}

/// Process-wide completion-model counters: how each finished I/O was
/// reaped. Simulation-deterministic, flushed once per run like
/// [`FrontendCounters`], so harnesses may serialize their deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompletionCounters {
    /// Completions reaped after an MSI-X interrupt + wake-up.
    pub interrupts: u64,
    /// Completions reaped by a busy-poll spin (classic or the spin
    /// half of a hybrid poll).
    pub polls: u64,
    /// Hybrid-poll oversleeps: reaps whose completion landed during
    /// the timed sleep, so the residual sleep (not the device) set the
    /// observed latency.
    pub hybrid_sleeps: u64,
}

impl CompletionCounters {
    /// Component-wise difference (`self - earlier`), for deltas around
    /// a run.
    pub fn since(&self, earlier: &CompletionCounters) -> CompletionCounters {
        CompletionCounters {
            interrupts: self.interrupts - earlier.interrupts,
            polls: self.polls - earlier.polls,
            hybrid_sleeps: self.hybrid_sleeps - earlier.hybrid_sleeps,
        }
    }

    /// Whether any counter moved.
    pub fn any(&self) -> bool {
        self.interrupts | self.polls | self.hybrid_sleeps != 0
    }

    /// Component-wise sum, for stitching per-LP tallies into a run
    /// total.
    pub fn absorb(&mut self, other: &CompletionCounters) {
        self.interrupts += other.interrupts;
        self.polls += other.polls;
        self.hybrid_sleeps += other.hybrid_sleeps;
    }

    /// Whether any *non-interrupt* completion model ran. Artifacts key
    /// on this rather than [`CompletionCounters::any`]: every
    /// pre-existing golden reaps via MSI-X, so a key that appeared on
    /// plain interrupt counts would rewrite all of them.
    pub fn any_polled(&self) -> bool {
        self.polls | self.hybrid_sleeps != 0
    }
}

/// Adds a run's completion-model counters to the process-wide totals
/// (batched flush, like [`add_frontend`]).
pub fn add_completion(delta: CompletionCounters) {
    if delta.interrupts > 0 {
        COMPLETION_INTERRUPTS.fetch_add(delta.interrupts, Ordering::Relaxed);
    }
    if delta.polls > 0 {
        COMPLETION_POLLS.fetch_add(delta.polls, Ordering::Relaxed);
    }
    if delta.hybrid_sleeps > 0 {
        COMPLETION_HYBRID_SLEEPS.fetch_add(delta.hybrid_sleeps, Ordering::Relaxed);
    }
}

/// Snapshot of the cumulative completion-model counters.
pub fn completion_totals() -> CompletionCounters {
    CompletionCounters {
        interrupts: COMPLETION_INTERRUPTS.load(Ordering::Relaxed),
        polls: COMPLETION_POLLS.load(Ordering::Relaxed),
        hybrid_sleeps: COMPLETION_HYBRID_SLEEPS.load(Ordering::Relaxed),
    }
}

/// Process-wide fleet-layer counters: replicated multi-array serving
/// with fault injection. Simulation-deterministic, flushed once per
/// run like [`FrontendCounters`], so harnesses may serialize their
/// deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetCounters {
    /// Arrays killed by the fault-injection plan.
    pub arrays_failed: u64,
    /// Requests re-routed to a surviving replica (dispatch-time dead
    /// primary plus mid-flight failovers).
    pub failovers: u64,
    /// Sub-I/O attempts re-issued through the retry path after an
    /// array died under them.
    pub retries: u64,
    /// Background re-replication I/Os issued to restore the
    /// replication factor after a kill.
    pub rereplication_ios: u64,
}

impl FleetCounters {
    /// Component-wise difference (`self - earlier`), for deltas around
    /// a run.
    pub fn since(&self, earlier: &FleetCounters) -> FleetCounters {
        FleetCounters {
            arrays_failed: self.arrays_failed - earlier.arrays_failed,
            failovers: self.failovers - earlier.failovers,
            retries: self.retries - earlier.retries,
            rereplication_ios: self.rereplication_ios - earlier.rereplication_ios,
        }
    }

    /// Whether any counter moved.
    pub fn any(&self) -> bool {
        self.arrays_failed | self.failovers | self.retries | self.rereplication_ios != 0
    }

    /// Component-wise sum, for stitching per-cell tallies into a run
    /// total.
    pub fn absorb(&mut self, other: &FleetCounters) {
        self.arrays_failed += other.arrays_failed;
        self.failovers += other.failovers;
        self.retries += other.retries;
        self.rereplication_ios += other.rereplication_ios;
    }
}

/// Adds a run's fleet-layer counters to the process-wide totals
/// (batched flush, like [`add_frontend`]).
pub fn add_fleet(delta: FleetCounters) {
    if delta.arrays_failed > 0 {
        FLEET_ARRAYS_FAILED.fetch_add(delta.arrays_failed, Ordering::Relaxed);
    }
    if delta.failovers > 0 {
        FLEET_FAILOVERS.fetch_add(delta.failovers, Ordering::Relaxed);
    }
    if delta.retries > 0 {
        FLEET_RETRIES.fetch_add(delta.retries, Ordering::Relaxed);
    }
    if delta.rereplication_ios > 0 {
        FLEET_REREPLICATION_IOS.fetch_add(delta.rereplication_ios, Ordering::Relaxed);
    }
}

/// Snapshot of the cumulative fleet-layer counters.
pub fn fleet_totals() -> FleetCounters {
    FleetCounters {
        arrays_failed: FLEET_ARRAYS_FAILED.load(Ordering::Relaxed),
        failovers: FLEET_FAILOVERS.load(Ordering::Relaxed),
        retries: FLEET_RETRIES.load(Ordering::Relaxed),
        rereplication_ios: FLEET_REREPLICATION_IOS.load(Ordering::Relaxed),
    }
}

/// Process-wide macro-event fusion counters: how many I/O stage
/// chains the fusion fast path collapsed into a single settlement
/// event, and how many had to be de-fused back into per-stage events
/// after a shared resource was claimed under them. Wall-clock
/// dependent only in the sense that they depend on the host's plan
/// resolution (a multi-shard plan never fuses); for a pinned plan they
/// are simulation-deterministic. Flushed once per run like
/// [`FrontendCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionCounters {
    /// Stage chains fused into one settlement macro-event at submit.
    pub fused_chains: u64,
    /// Fused chains torn back into per-stage events after another I/O
    /// claimed a shared fabric leg inside their precomputed window.
    pub defused_chains: u64,
    /// Per-stage events the settled macro-events replaced (4 per
    /// interrupt chain, 3 per polled chain) — the gap between logical
    /// and popped event counts a harness must add back.
    pub elided_events: u64,
}

impl FusionCounters {
    /// Component-wise difference (`self - earlier`), for deltas around
    /// a run.
    pub fn since(&self, earlier: &FusionCounters) -> FusionCounters {
        FusionCounters {
            fused_chains: self.fused_chains - earlier.fused_chains,
            defused_chains: self.defused_chains - earlier.defused_chains,
            elided_events: self.elided_events - earlier.elided_events,
        }
    }

    /// Whether any counter moved.
    pub fn any(&self) -> bool {
        self.fused_chains | self.defused_chains | self.elided_events != 0
    }
}

/// Adds a run's fusion counters to the process-wide totals (batched
/// flush, like [`add_frontend`]).
pub fn add_fusion(delta: FusionCounters) {
    if delta.fused_chains > 0 {
        FUSED_CHAINS.fetch_add(delta.fused_chains, Ordering::Relaxed);
    }
    if delta.defused_chains > 0 {
        DEFUSED_CHAINS.fetch_add(delta.defused_chains, Ordering::Relaxed);
    }
    if delta.elided_events > 0 {
        ELIDED_EVENTS.fetch_add(delta.elided_events, Ordering::Relaxed);
    }
}

/// Snapshot of the cumulative fusion counters.
pub fn fusion_totals() -> FusionCounters {
    FusionCounters {
        fused_chains: FUSED_CHAINS.load(Ordering::Relaxed),
        defused_chains: DEFUSED_CHAINS.load(Ordering::Relaxed),
        elided_events: ELIDED_EVENTS.load(Ordering::Relaxed),
    }
}

/// Snapshot of the cumulative frontend counters.
pub fn frontend_totals() -> FrontendCounters {
    FrontendCounters {
        requests_admitted: REQUESTS_ADMITTED.load(Ordering::Relaxed),
        requests_shed: REQUESTS_SHED.load(Ordering::Relaxed),
        hedges_fired: HEDGES_FIRED.load(Ordering::Relaxed),
        hedges_won: HEDGES_WON.load(Ordering::Relaxed),
        slab_peak_live: SLAB_PEAK_LIVE.load(Ordering::Relaxed),
        sketch_merges: SKETCH_MERGES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_accumulate() {
        let before = events_processed_total();
        add_events(0);
        assert!(events_processed_total() >= before);
        add_events(17);
        assert!(events_processed_total() >= before + 17);
    }

    #[test]
    fn frontend_counters_accumulate_and_delta() {
        let before = frontend_totals();
        add_frontend(FrontendCounters::default()); // all-zero: no-op
        add_frontend(FrontendCounters {
            requests_admitted: 10,
            requests_shed: 2,
            hedges_fired: 3,
            hedges_won: 1,
            slab_peak_live: 7,
            sketch_merges: 4,
        });
        let delta = frontend_totals().since(&before);
        assert!(delta.any());
        assert!(delta.requests_admitted >= 10);
        assert!(delta.requests_shed >= 2);
        assert!(delta.hedges_fired >= 3);
        assert!(delta.hedges_won >= 1);
        assert!(delta.slab_peak_live >= 7);
        assert!(delta.sketch_merges >= 4);
        assert!(!FrontendCounters::default().any());
    }

    #[test]
    fn completion_counters_accumulate_and_delta() {
        let before = completion_totals();
        add_completion(CompletionCounters::default()); // all-zero: no-op
        add_completion(CompletionCounters {
            interrupts: 5,
            polls: 3,
            hybrid_sleeps: 2,
        });
        let delta = completion_totals().since(&before);
        assert!(delta.any());
        assert!(delta.any_polled());
        assert!(delta.interrupts >= 5);
        assert!(delta.polls >= 3);
        assert!(delta.hybrid_sleeps >= 2);
        assert!(!CompletionCounters::default().any());
        let irq_only = CompletionCounters {
            interrupts: 9,
            polls: 0,
            hybrid_sleeps: 0,
        };
        assert!(irq_only.any() && !irq_only.any_polled());
    }

    #[test]
    fn fleet_counters_accumulate_and_delta() {
        let before = fleet_totals();
        add_fleet(FleetCounters::default()); // all-zero: no-op
        add_fleet(FleetCounters {
            arrays_failed: 1,
            failovers: 4,
            retries: 6,
            rereplication_ios: 12,
        });
        let delta = fleet_totals().since(&before);
        assert!(delta.any());
        assert!(delta.arrays_failed >= 1);
        assert!(delta.failovers >= 4);
        assert!(delta.retries >= 6);
        assert!(delta.rereplication_ios >= 12);
        assert!(!FleetCounters::default().any());
        let mut sum = FleetCounters::default();
        sum.absorb(&delta);
        assert_eq!(sum, delta);
    }

    #[test]
    fn fusion_counters_accumulate_and_delta() {
        let before = fusion_totals();
        add_fusion(FusionCounters::default()); // all-zero: no-op
        add_fusion(FusionCounters {
            fused_chains: 8,
            defused_chains: 2,
            elided_events: 32,
        });
        let delta = fusion_totals().since(&before);
        assert!(delta.any());
        assert!(delta.fused_chains >= 8);
        assert!(delta.defused_chains >= 2);
        assert!(delta.elided_events >= 32);
        assert!(!FusionCounters::default().any());
    }

    #[test]
    fn clamped_adds_accumulate() {
        let before = clamped_past_total();
        add_clamped_past(0);
        assert!(clamped_past_total() >= before);
        add_clamped_past(3);
        assert!(clamped_past_total() >= before + 3);
    }
}
