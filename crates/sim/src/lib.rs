//! Discrete-event simulation (DES) substrate for the AFA reproduction.
//!
//! This crate provides the building blocks shared by every simulated
//! subsystem in the workspace:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution simulated
//!   clock with ergonomic constructors ([`SimDuration::micros`], …),
//! * [`EventQueue`] — a hierarchical timing wheel of timestamped
//!   events with *stable* FIFO ordering among events scheduled for the
//!   same instant (amortized O(1) push/pop),
//! * [`rng`] — deterministic, splittable random-number streams
//!   (splitmix64 seeding + xoshiro256\*\* generation) so that every
//!   experiment is exactly reproducible from a single master seed,
//! * [`Simulation`] — a generic driver that pops events and dispatches
//!   them to a user-provided [`World`],
//! * [`trace`] — lightweight cause-attribution hooks used to root-cause
//!   tail-latency samples (the simulated analogue of the paper's LTTng
//!   analysis),
//! * [`check`] — a stdlib-only property-testing harness (deterministic
//!   generators + case driver) used by every crate's property suite.
//!
//! # Example
//!
//! ```
//! use afa_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::micros(5), "second");
//! queue.push(SimTime::ZERO + SimDuration::micros(1), "first");
//! let (t, event) = queue.pop().expect("event");
//! assert_eq!(event, "first");
//! assert_eq!(t.as_nanos(), 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod driver;
pub mod metrics;
mod queue;
pub mod rng;
pub mod shard;
mod time;
pub mod trace;

pub use driver::{Scheduler, Simulation, StepOutcome, World};
pub use queue::{EventQueue, KeyedEvent, MergeKey};
pub use rng::SimRng;
pub use shard::{PartitionPlan, ShardCtx, ShardWorld, ShardedSim};
pub use time::{SimDuration, SimTime};
