//! Simulated clock types.
//!
//! All simulated time in the workspace is expressed in nanoseconds using
//! [`SimTime`] (an absolute instant) and [`SimDuration`] (a span). Both
//! are thin newtypes over `u64`, so arithmetic is cheap and `Copy`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use afa_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::millis(2);
/// assert_eq!(t.as_micros_f64(), 2_000.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use afa_sim::SimDuration;
///
/// let d = SimDuration::micros(25) + SimDuration::nanos(500);
/// assert_eq!(d.as_nanos(), 25_500);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated clock.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the instant as nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as (fractional) microseconds since the origin.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as (fractional) seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the span since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `n` nanoseconds.
    pub const fn nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Creates a span of `n` microseconds.
    pub const fn micros(n: u64) -> Self {
        SimDuration(n * 1_000)
    }

    /// Creates a span of `n` milliseconds.
    pub const fn millis(n: u64) -> Self {
        SimDuration(n * 1_000_000)
    }

    /// Creates a span of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us.max(0.0) * 1_000.0).round() as u64)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1_000_000_000.0).round() as u64)
    }

    /// Returns the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span as (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Subtracts `other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> SimTime {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::micros(10);
        let u = t + SimDuration::micros(5);
        assert_eq!(u - t, SimDuration::micros(5));
        assert_eq!(u - SimDuration::micros(15), SimTime::ZERO);
        assert_eq!(SimDuration::micros(4) * 3, SimDuration::micros(12));
        assert_eq!(SimDuration::micros(12) / 4, SimDuration::micros(3));
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early).as_nanos(), 20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::nanos(5).saturating_sub(SimDuration::nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_micros_f64(25.5).as_nanos(), 25_500);
        assert_eq!(SimDuration::from_micros_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        let t = SimTime::from_nanos(1_500);
        assert!((t.as_micros_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(SimTime::ZERO < SimTime::MAX);
        let a = SimDuration::micros(3);
        let b = SimDuration::micros(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(SimDuration::micros(25).to_string(), "25.000us");
        assert_eq!(SimTime::from_nanos(1_234).to_string(), "1.234us");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::micros).sum();
        assert_eq!(total, SimDuration::micros(10));
    }
}
